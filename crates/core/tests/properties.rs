//! Property-based tests for MegIS's core invariants: sorted-stream
//! intersection, KSS/ternary-tree/flat-sketch lookup equivalence, bucketing
//! invariance, and FTL placement balance.

use proptest::prelude::*;

use megis::config::MegisConfig;
use megis::ftl::MegisFtl;
use megis::kss::KssTables;
use megis_genomics::database::SortedKmerDatabase;
use megis_genomics::kmer::Kmer;
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::sketch::{SketchConfig, SketchDatabase};
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::ternary::TernarySketchTree;

fn kmer_strategy(k: usize) -> impl Strategy<Value = Kmer> {
    proptest::collection::vec(proptest::sample::select(vec![b'A', b'C', b'G', b'T']), k..=k)
        .prop_map(|ascii| Kmer::from_ascii(&ascii).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn intersection_equals_set_intersection(
        seed in 0u64..500,
        queries in proptest::collection::vec(kmer_strategy(21), 0..200),
    ) {
        let refs = ReferenceCollection::synthetic(3, 300, seed);
        let db = SortedKmerDatabase::build(&refs, 21);
        let mut sorted = queries.clone();
        sorted.sort();
        sorted.dedup();
        let via_stream = db.intersect_sorted(&sorted);
        let via_lookup: Vec<Kmer> = sorted
            .iter()
            .copied()
            .filter(|q| db.lookup(*q).is_some())
            .collect();
        prop_assert_eq!(via_stream, via_lookup);
    }

    #[test]
    fn database_partition_preserves_intersections(
        seed in 0u64..200,
        parts in 1usize..7,
        queries in proptest::collection::vec(kmer_strategy(21), 0..100),
    ) {
        let refs = ReferenceCollection::synthetic(4, 250, seed);
        let db = SortedKmerDatabase::build(&refs, 21);
        let mut sorted = queries;
        sorted.sort();
        sorted.dedup();
        let whole = db.intersect_sorted(&sorted);
        let mut merged: Vec<Kmer> = db
            .partition(parts)
            .iter()
            .flat_map(|shard| shard.intersect_sorted(&sorted))
            .collect();
        merged.sort();
        merged.dedup();
        prop_assert_eq!(merged, whole);
    }

    #[test]
    fn kss_tree_and_flat_lookups_agree(seed in 0u64..200, query in kmer_strategy(31)) {
        let refs = ReferenceCollection::synthetic(4, 400, seed);
        let sketches = SketchDatabase::build(&refs, SketchConfig::small());
        let kss = KssTables::build(&sketches);
        let tree = TernarySketchTree::build(&sketches);
        let flat = sketches.lookup_with_prefixes(query);
        prop_assert_eq!(kss.lookup(query), flat.clone());
        prop_assert_eq!(tree.lookup_with_prefixes(query), flat);
    }

    #[test]
    fn bucket_count_never_changes_step1_output(
        seed in 0u64..200,
        buckets_a in 1usize..32,
        buckets_b in 1usize..32,
    ) {
        use megis_genomics::sample::{CommunityConfig, Diversity};
        use megis_tools::kmc::ExclusionPolicy;
        let community = CommunityConfig::preset(Diversity::Low)
            .with_reads(60)
            .with_database_species(8)
            .build(seed);
        let config = MegisConfig::small();
        let a = megis::step1::run(
            community.sample().reads(),
            &config.with_bucket_count(buckets_a),
            ExclusionPolicy::default(),
        );
        let b = megis::step1::run(
            community.sample().reads(),
            &config.with_bucket_count(buckets_b),
            ExclusionPolicy::default(),
        );
        prop_assert_eq!(a.sorted_kmers(), b.sorted_kmers());
        prop_assert!(a.ranges_are_ordered());
        prop_assert!(b.ranges_are_ordered());
    }

    #[test]
    fn ftl_placement_is_always_balanced(size_gb in 1u64..2000) {
        let mut ftl = MegisFtl::new(SsdConfig::ssd_c().geometry);
        let placement = ftl
            .place_database("db", ByteSize::from_gb(size_gb as f64))
            .unwrap()
            .clone();
        prop_assert!(placement.is_balanced());
        prop_assert!(placement.total_blocks() > 0);
        // Metadata stays tiny regardless of database size.
        prop_assert!(ftl.total_metadata_bytes().as_bytes() < 4_000_000);
    }
}
