//! Property-style tests for MegIS's core invariants: sorted-stream
//! intersection, KSS/ternary-tree/flat-sketch lookup equivalence, bucketing
//! invariance, and FTL placement balance.
//!
//! Each test checks its invariant over many randomized inputs drawn from a
//! seeded generator, so runs are deterministic while still covering a wide
//! slice of the input space (the offline equivalent of the original
//! proptest-based suite).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use megis::config::MegisConfig;
use megis::ftl::MegisFtl;
use megis::kss::KssTables;
use megis_genomics::database::SortedKmerDatabase;
use megis_genomics::kmer::Kmer;
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::sketch::{SketchConfig, SketchDatabase};
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::ternary::TernarySketchTree;

fn random_kmer(rng: &mut StdRng, k: usize) -> Kmer {
    let ascii: Vec<u8> = (0..k).map(|_| b"ACGT"[rng.gen_range(0..4usize)]).collect();
    Kmer::from_ascii(&ascii).unwrap()
}

fn random_kmers(rng: &mut StdRng, max_n: usize, k: usize) -> Vec<Kmer> {
    let n = rng.gen_range(0..max_n);
    (0..n).map(|_| random_kmer(rng, k)).collect()
}

#[test]
fn intersection_equals_set_intersection() {
    let mut rng = StdRng::seed_from_u64(201);
    for case in 0..24u64 {
        let refs = ReferenceCollection::synthetic(3, 300, case);
        let db = SortedKmerDatabase::build(&refs, 21);
        let mut sorted = random_kmers(&mut rng, 200, 21);
        // Mix in genuine database k-mers so the intersection is non-trivial.
        sorted.extend(db.kmers().step_by(7));
        sorted.sort();
        sorted.dedup();
        let via_stream = db.intersect_sorted(&sorted);
        let via_lookup: Vec<Kmer> = sorted
            .iter()
            .copied()
            .filter(|q| db.lookup(*q).is_some())
            .collect();
        assert_eq!(via_stream, via_lookup);
    }
}

#[test]
fn galloping_intersection_equals_two_pointer_reference() {
    // Seeded property sweep: the galloping merge must be byte-identical to
    // the retained two-pointer oracle on every input shape — random
    // hit/miss mixtures, duplicate queries, empty inputs, disjoint sets,
    // full subsets, and the skewed sparse regime galloping is built for.
    let mut rng = StdRng::seed_from_u64(206);
    for case in 0..24u64 {
        let refs = ReferenceCollection::synthetic(3, 300, case);
        let db = SortedKmerDatabase::build(&refs, 21);
        let mut queries = random_kmers(&mut rng, 200, 21);
        let stride = rng.gen_range(2..40usize);
        queries.extend(db.kmers().step_by(stride));
        // Duplicates: repeat a random prefix so equal runs hit the merge.
        let dups: Vec<Kmer> = queries.iter().take(rng.gen_range(0..30)).copied().collect();
        queries.extend(dups);
        queries.sort();
        assert_eq!(
            db.intersect_sorted(&queries),
            db.intersect_sorted_two_pointer(&queries),
            "case {case}"
        );
        // The intersection of duplicate queries stays deduplicated.
        assert!(db
            .intersect_sorted(&queries)
            .windows(2)
            .all(|w| w[0] < w[1]));

        // Empty queries and empty database.
        assert!(db.intersect_sorted(&[]).is_empty());
        assert!(SortedKmerDatabase::default()
            .intersect_sorted(&queries)
            .is_empty());

        // Disjoint: queries from an unrelated collection only.
        let foreign = ReferenceCollection::synthetic(2, 250, case + 10_000);
        let foreign_db = SortedKmerDatabase::build(&foreign, 21);
        let misses: Vec<Kmer> = foreign_db.kmers().collect();
        assert_eq!(
            db.intersect_sorted(&misses),
            db.intersect_sorted_two_pointer(&misses),
            "disjoint case {case}"
        );

        // Full subset: every database k-mer queried intersects to itself.
        let all: Vec<Kmer> = db.kmers().collect();
        assert_eq!(db.intersect_sorted(&all), all);

        // Skewed sparse subset (|DB| >> |Q|), the galloping regime.
        let sparse: Vec<Kmer> = all.iter().step_by(64).copied().collect();
        assert_eq!(
            db.intersect_sorted(&sparse),
            db.intersect_sorted_two_pointer(&sparse),
            "sparse case {case}"
        );
    }
}

#[test]
fn database_partition_preserves_intersections() {
    let mut rng = StdRng::seed_from_u64(202);
    for case in 0..16u64 {
        let refs = ReferenceCollection::synthetic(4, 250, case);
        let db = SortedKmerDatabase::build(&refs, 21);
        let parts = rng.gen_range(1..7usize);
        let mut sorted = random_kmers(&mut rng, 100, 21);
        sorted.extend(db.kmers().step_by(5));
        sorted.sort();
        sorted.dedup();
        let whole = db.intersect_sorted(&sorted);
        let shards = db.partition(parts);
        for shard in &shards {
            assert!(
                shard.shares_storage_with(&db),
                "{parts}-way partition must be zero-copy views"
            );
        }
        let mut merged: Vec<Kmer> = shards
            .iter()
            .flat_map(|shard| shard.intersect_sorted(&sorted))
            .collect();
        merged.sort();
        merged.dedup();
        assert_eq!(merged, whole, "{parts}-way partition changed the result");
    }
}

#[test]
fn kss_tree_and_flat_lookups_agree() {
    let mut rng = StdRng::seed_from_u64(203);
    for case in 0..12u64 {
        let refs = ReferenceCollection::synthetic(4, 400, case);
        let sketches = SketchDatabase::build(&refs, SketchConfig::small());
        let kss = KssTables::build(&sketches);
        let tree = TernarySketchTree::build(&sketches);
        for _ in 0..8 {
            let query = random_kmer(&mut rng, 31);
            let flat = sketches.lookup_with_prefixes(query);
            assert_eq!(kss.lookup(query), flat.clone());
            assert_eq!(tree.lookup_with_prefixes(query), flat);
        }
    }
}

#[test]
fn bucket_count_never_changes_step1_output() {
    use megis_genomics::sample::{CommunityConfig, Diversity};
    use megis_tools::kmc::ExclusionPolicy;
    let mut rng = StdRng::seed_from_u64(204);
    for case in 0..12u64 {
        let community = CommunityConfig::preset(Diversity::Low)
            .with_reads(60)
            .with_database_species(8)
            .build(case);
        let config = MegisConfig::small();
        let buckets_a = rng.gen_range(1..32usize);
        let buckets_b = rng.gen_range(1..32usize);
        let a = megis::step1::run(
            community.sample().reads(),
            &config.with_bucket_count(buckets_a),
            ExclusionPolicy::default(),
        );
        let b = megis::step1::run(
            community.sample().reads(),
            &config.with_bucket_count(buckets_b),
            ExclusionPolicy::default(),
        );
        assert_eq!(a.sorted_kmers(), b.sorted_kmers());
        assert!(a.ranges_are_ordered());
        assert!(b.ranges_are_ordered());
    }
}

#[test]
fn ftl_placement_is_always_balanced() {
    let mut rng = StdRng::seed_from_u64(205);
    let mut sizes = vec![1u64, 2, 13, 64, 512, 1024, 1999];
    sizes.extend((0..8).map(|_| rng.gen_range(1..2000u64)));
    for size_gb in sizes {
        let mut ftl = MegisFtl::new(SsdConfig::ssd_c().geometry);
        let placement = ftl
            .place_database("db", ByteSize::from_gb(size_gb as f64))
            .unwrap()
            .clone();
        assert!(placement.is_balanced(), "unbalanced at {size_gb} GB");
        assert!(placement.total_blocks() > 0);
        // Metadata stays tiny regardless of database size.
        assert!(ftl.total_metadata_bytes().as_bytes() < 4_000_000);
    }
}
