//! MegIS: in-storage processing for end-to-end metagenomic analysis.
//!
//! This crate is the core of the reproduction of *MegIS: High-Performance,
//! Energy-Efficient, and Low-Cost Metagenomic Analysis with In-Storage
//! Processing* (ISCA 2024). MegIS is a cooperative in-storage-processing (ISP)
//! system: it partitions the accuracy-optimized metagenomic analysis pipeline
//! between the host and lightweight accelerators inside the SSD controller so
//! that the terabyte-scale, low-reuse database is streamed and filtered where
//! it lives, and only small results cross the host interface.
//!
//! The three steps of the pipeline (§4 of the paper):
//!
//! 1. **Step 1 — query preparation (host)** ([`step1`]): k-mer extraction from
//!    the sample, partitioning into lexicographic buckets, per-bucket sorting,
//!    and frequency-based exclusion. Bucketing lets Step 1 overlap with Step 2.
//! 2. **Step 2 — finding candidate species (in-SSD)** ([`step2`]): streaming
//!    intersection of the sorted query k-mers with the sorted k-mer database
//!    read from all flash channels, followed by taxID retrieval through
//!    *K-mer Sketch Streaming* ([`kss`]), MegIS's pointer-chase-free sketch
//!    representation.
//! 3. **Step 3 — abundance estimation support (in-SSD + accelerator/host)**
//!    ([`step3`]): in-SSD generation of a unified reference index over the
//!    candidate species, handed to a read mapper.
//!
//! Supporting pieces: the specialized block-level [`ftl`] (MegIS FTL) and its
//! channel-balanced data placement, the in-storage accelerator area/power
//! model ([`accel`], Table 2), the NVMe command extensions ([`commands`]),
//! the end-to-end performance model with all of the paper's configurations
//! ([`pipeline`], [`variants`]), and the system-level energy model
//! ([`energy`]).
//!
//! # Quick start
//!
//! ```
//! use megis::MegisAnalyzer;
//! use megis::config::MegisConfig;
//! use megis_genomics::sample::{CommunityConfig, Diversity};
//!
//! // Build a small synthetic community and analyze it functionally.
//! let community = CommunityConfig::preset(Diversity::Low)
//!     .with_reads(200)
//!     .with_database_species(16)
//!     .build(7);
//! let analyzer = MegisAnalyzer::build(community.references(), MegisConfig::small());
//! let result = analyzer.analyze(community.sample());
//! assert!(!result.presence.is_empty());
//! ```
//!
//! For the paper-scale performance results, see [`pipeline::MegisTimingModel`]
//! and the `megis-bench` crate, which regenerates every figure and table of
//! the paper's evaluation.
//!
//! # Batch analysis
//!
//! Analyzing one sample at a time leaves the system idle in alternation: the
//! SSDs wait while the host prepares queries, and the host waits while the
//! SSDs stream the database. For cohorts of samples sharing one database,
//! the paper's multi-sample use case (§4.7, Fig. 21) overlaps host-side
//! Step 1 of the next sample with the in-SSD Steps 2–3 of the current one,
//! and Fig. 15 partitions the sorted k-mer database disjointly across
//! several SSDs for near-linear in-SSD speedup.
//!
//! The `megis-sched` crate turns both ideas into a running engine: a
//! `BatchEngine` accepts many samples (FIFO or priority admission), executes
//! Step 1 on a pool of host worker threads, shards intersection finding
//! across per-SSD workers, and completes Steps 2–3 through the step-level
//! entry points on [`MegisAnalyzer`] ([`MegisAnalyzer::run_step1`],
//! [`MegisAnalyzer::step2_from_intersection`],
//! [`MegisAnalyzer::run_step3`]). Results are byte-identical to calling
//! [`MegisAnalyzer::analyze`] per sample — at any worker or shard count —
//! while the engine reports per-job latency percentiles, batch throughput,
//! per-shard utilization, and a modeled-time account cross-checked against
//! [`pipeline::MegisTimingModel::multi_sample_breakdown`].

// The whole workspace is safe Rust ([workspace.lints] forbids it too);
// this attribute keeps the guarantee visible at the crate root.
#![forbid(unsafe_code)]
pub mod accel;
pub mod analyzer;
pub mod commands;
pub mod config;
pub mod energy;
pub mod ftl;
pub mod kss;
pub mod pipeline;
pub mod step1;
pub mod step2;
pub mod step3;
pub mod variants;

pub use analyzer::{MegisAnalyzer, MegisOutput};
pub use config::MegisConfig;
pub use kss::KssTables;
pub use pipeline::MegisTimingModel;
pub use variants::MegisVariant;
