//! Step 1 — preparing the input queries on the host (§4.2).
//!
//! MegIS extracts k-mers from the sample, partitions them into buckets that
//! each cover a lexicographic range, sorts each bucket, and (optionally)
//! excludes k-mers by frequency. Bucketing is what enables the cooperative
//! pipeline: as soon as bucket *i* is sorted it can be transferred to the SSD
//! and intersected (Step 2) while bucket *i + 1* is still being sorted —
//! because the database is also sorted, each bucket only needs the database
//! range it covers.

use megis_genomics::kmer::Kmer;
use megis_genomics::read::ReadSet;
use megis_ssd::timing::ByteSize;
use megis_tools::kmc::{ExclusionPolicy, KmerCounts};

use crate::config::MegisConfig;

/// One lexicographic k-mer bucket produced by Step 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bucket {
    /// Sorted, deduplicated k-mers in this bucket's range.
    kmers: Vec<Kmer>,
}

impl Bucket {
    /// The sorted k-mers of the bucket.
    pub fn kmers(&self) -> &[Kmer] {
        &self.kmers
    }

    /// Number of k-mers in the bucket.
    pub fn len(&self) -> usize {
        self.kmers.len()
    }

    /// Returns `true` if the bucket is empty.
    pub fn is_empty(&self) -> bool {
        self.kmers.is_empty()
    }

    /// First (smallest) k-mer of the bucket, if any.
    pub fn first(&self) -> Option<Kmer> {
        self.kmers.first().copied()
    }

    /// Last (largest) k-mer of the bucket, if any.
    pub fn last(&self) -> Option<Kmer> {
        self.kmers.last().copied()
    }

    /// Size of the bucket in the 2-bit transfer encoding.
    pub fn encoded_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.kmers.iter().map(|k| k.encoded_bytes() as u64).sum())
    }
}

/// Output of Step 1.
#[derive(Debug, Clone, Default)]
pub struct Step1Output {
    /// The buckets, in lexicographic order.
    pub buckets: Vec<Bucket>,
    /// Number of k-mer occurrences extracted from the sample (before
    /// deduplication/exclusion).
    pub extracted_occurrences: u64,
    /// Number of distinct k-mers that survived exclusion.
    pub selected_kmers: u64,
}

impl Step1Output {
    /// All selected k-mers across buckets, in sorted order.
    pub fn sorted_kmers(&self) -> Vec<Kmer> {
        self.buckets
            .iter()
            .flat_map(|b| b.kmers().iter().copied())
            .collect()
    }

    /// Returns `true` if bucket ranges are disjoint and globally sorted.
    pub fn ranges_are_ordered(&self) -> bool {
        let non_empty: Vec<&Bucket> = self.buckets.iter().filter(|b| !b.is_empty()).collect();
        non_empty
            .windows(2)
            .all(|w| w[0].last().unwrap() < w[1].first().unwrap())
    }
}

/// Runs Step 1 on a sample read set.
///
/// Extraction and sorting reuse the same KMC-style counting as the S-Qry
/// baseline, so MegIS's query k-mer set is identical to the baseline's — the
/// bucketing only changes *when* each range becomes available, not *what* is
/// produced.
pub fn run(reads: &ReadSet, config: &MegisConfig, exclusion: ExclusionPolicy) -> Step1Output {
    let counts = KmerCounts::count(reads, config.k());
    let extracted_occurrences = counts.total_occurrences();
    let selected = counts.apply_exclusion(exclusion);
    let selected_kmers = selected.len() as u64;

    // Partition the (already sorted) selected k-mers into `bucket_count`
    // lexicographic ranges with near-equal population — the same effect as
    // the paper's preliminary-bucket balancing (§4.2.1). The remainder is
    // spread one-per-bucket from the front, so non-empty bucket sizes differ
    // by at most one (asserted by `bucket_sizes_are_balanced`); a plain
    // ceiling-sized chunking would instead leave the last bucket arbitrarily
    // short.
    let bucket_count = config.bucket_count.max(1);
    let base = selected.len() / bucket_count;
    let extra = selected.len() % bucket_count;
    let mut buckets: Vec<Bucket> = Vec::with_capacity(bucket_count);
    let mut start = 0usize;
    for i in 0..bucket_count {
        let size = base + usize::from(i < extra);
        buckets.push(Bucket {
            kmers: selected[start..start + size].to_vec(),
        });
        start += size;
    }
    Step1Output {
        buckets,
        extracted_occurrences,
        selected_kmers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::sample::{CommunityConfig, Diversity};

    fn sample() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Low)
            .with_reads(150)
            .with_database_species(8)
            .build(3)
    }

    #[test]
    fn buckets_cover_all_selected_kmers_in_order() {
        let c = sample();
        let cfg = MegisConfig::small();
        let out = run(c.sample().reads(), &cfg, ExclusionPolicy::default());
        assert_eq!(out.buckets.len(), cfg.bucket_count);
        assert!(out.ranges_are_ordered());
        let all = out.sorted_kmers();
        assert_eq!(all.len() as u64, out.selected_kmers);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn extraction_counts_occurrences() {
        let c = sample();
        let out = run(
            c.sample().reads(),
            &MegisConfig::small(),
            ExclusionPolicy::default(),
        );
        assert!(out.extracted_occurrences >= out.selected_kmers);
        assert!(out.extracted_occurrences > 0);
    }

    #[test]
    fn exclusion_reduces_selected_kmers() {
        let c = sample();
        let cfg = MegisConfig::small();
        let all = run(c.sample().reads(), &cfg, ExclusionPolicy::default());
        let filtered = run(
            c.sample().reads(),
            &cfg,
            ExclusionPolicy {
                min_count: 2,
                max_count: None,
            },
        );
        assert!(filtered.selected_kmers < all.selected_kmers);
    }

    #[test]
    fn bucket_sizes_are_balanced() {
        let c = sample();
        let cfg = MegisConfig::small();
        let out = run(c.sample().reads(), &cfg, ExclusionPolicy::default());
        let sizes: Vec<usize> = out.buckets.iter().map(Bucket::len).collect();
        let max = *sizes.iter().max().unwrap();
        let min_nonzero = sizes.iter().filter(|s| **s > 0).min().copied().unwrap_or(0);
        // Balanced split: the remainder is spread one-per-bucket, so
        // non-empty bucket sizes differ by at most one. (The old assertion,
        // `max - min_nonzero <= max`, held for every possible split.)
        assert!(max <= min_nonzero + 1, "bucket sizes: {sizes:?}");
        assert_eq!(
            max,
            (out.selected_kmers as usize).div_ceil(cfg.bucket_count)
        );
        // The buckets cover every selected k-mer exactly once.
        assert_eq!(sizes.iter().sum::<usize>() as u64, out.selected_kmers);
        assert!(max <= out.selected_kmers as usize / (cfg.bucket_count / 2).max(1) + 1);
    }

    #[test]
    fn bucket_encoded_bytes_counts_payload() {
        let c = sample();
        let out = run(
            c.sample().reads(),
            &MegisConfig::small(),
            ExclusionPolicy::default(),
        );
        let bytes: u64 = out
            .buckets
            .iter()
            .map(|b| b.encoded_bytes().as_bytes())
            .sum();
        assert!(bytes >= out.selected_kmers * 6);
    }
}
