//! System-level energy model (§6.5).
//!
//! The paper computes each tool's energy as the sum, over system components,
//! of active/idle power × the time spent in each state. The components are
//! the host processor, host DRAM, any attached accelerators (PIM, sorting,
//! mapping), the SSD (flash array + controller), the SSD-internal DRAM, and
//! MegIS's ISP logic. [`EnergyModel::report`] evaluates that sum for any
//! timing [`Breakdown`] produced by the baselines or the MegIS pipeline.

use megis_host::system::SystemConfig;
use megis_ssd::energy::{Energy, SsdPowerModel};
use megis_tools::timing::Breakdown;

use crate::accel::AcceleratorModel;

/// Per-component energy of one analysis run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Host CPU energy (active + idle).
    pub host_cpu: Energy,
    /// Host DRAM energy.
    pub host_dram: Energy,
    /// SSD energy (flash array + controller + internal DRAM), all devices.
    pub ssd: Energy,
    /// Attached accelerator energy (PIM / sorting / mapping accelerators).
    pub accelerators: Energy,
    /// MegIS in-storage accelerator energy (zero for the baselines).
    pub isp_logic: Energy,
}

impl EnergyReport {
    /// Total energy of the run.
    pub fn total(&self) -> Energy {
        self.host_cpu + self.host_dram + self.ssd + self.accelerators + self.isp_logic
    }
}

/// Energy model parameterized by the system configuration.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    /// SSD power states.
    pub ssd_power: SsdPowerModel,
    /// Power of the accelerator that is busy during `accelerator_busy`
    /// phases (PIM matcher, sorting accelerator, or mapping accelerator).
    pub attached_accelerator_w: f64,
    /// Whether the run uses MegIS's ISP logic (adds its power during SSD-busy
    /// time).
    pub uses_isp_accelerator: bool,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            ssd_power: SsdPowerModel::default(),
            attached_accelerator_w: 40.0,
            uses_isp_accelerator: false,
        }
    }
}

impl EnergyModel {
    /// An energy model for a baseline (no ISP logic).
    pub fn baseline() -> EnergyModel {
        EnergyModel::default()
    }

    /// An energy model for a MegIS configuration (ISP logic active while the
    /// SSD streams data).
    pub fn megis() -> EnergyModel {
        EnergyModel {
            uses_isp_accelerator: true,
            ..EnergyModel::default()
        }
    }

    /// Evaluates the energy of one run described by `breakdown` on `system`.
    pub fn report(&self, breakdown: &Breakdown, system: &SystemConfig) -> EnergyReport {
        let total = breakdown.total();
        let host_active = breakdown.host_busy.min(total);
        let host_idle = total.saturating_sub(host_active);
        let host_cpu = Energy::from_power(system.cpu.active_power_w, host_active)
            + Energy::from_power(system.cpu.idle_power_w, host_idle);
        let host_dram = Energy::from_power(system.memory.power_w(), total);

        let ssd_active = breakdown.ssd_busy.min(total);
        let ssd_idle = total.saturating_sub(ssd_active);
        let per_ssd = self.ssd_power.read_energy(ssd_active) + self.ssd_power.idle_energy(ssd_idle);
        let ssd: Energy = (0..system.ssd_count()).map(|_| per_ssd).sum();

        let accelerators = Energy::from_power(
            self.attached_accelerator_w,
            breakdown.accelerator_busy.min(total),
        );

        let isp_logic = if self.uses_isp_accelerator {
            let per_device: Energy = system
                .ssds
                .iter()
                .map(|cfg| {
                    let acc = AcceleratorModel::new(cfg.geometry.channels);
                    Energy::from_power(acc.total_power_w(), ssd_active)
                })
                .sum();
            per_device
        } else {
            Energy::ZERO
        };

        EnergyReport {
            host_cpu,
            host_dram,
            ssd,
            accelerators,
            isp_logic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::sample::Diversity;
    use megis_ssd::config::SsdConfig;
    use megis_tools::kraken::KrakenTimingModel;
    use megis_tools::metalign::MetalignTimingModel;
    use megis_tools::workload::WorkloadSpec;

    #[test]
    fn baseline_energy_is_hundreds_of_kilojoules() {
        // §3.1: processing a 100 M-read sample on a commodity server costs
        // on the order of several hundred kJ.
        let system = SystemConfig::reference(SsdConfig::ssd_c());
        let w = WorkloadSpec::cami(Diversity::Low);
        let b = MetalignTimingModel::a_opt().presence_breakdown(&system, &w);
        let report = EnergyModel::baseline().report(&b, &system);
        let kj = report.total().as_joules() / 1000.0;
        assert!(kj > 200.0 && kj < 1500.0, "got {kj} kJ");
    }

    #[test]
    fn isp_logic_energy_is_negligible_compared_to_host() {
        let system = SystemConfig::reference(SsdConfig::ssd_c());
        let w = WorkloadSpec::cami(Diversity::Low);
        let b = KrakenTimingModel.presence_breakdown(&system, &w);
        let report = EnergyModel::megis().report(&b, &system);
        assert!(report.isp_logic.as_joules() < 0.001 * report.host_cpu.as_joules());
    }

    #[test]
    fn components_sum_to_total() {
        let system = SystemConfig::reference(SsdConfig::ssd_p());
        let w = WorkloadSpec::cami(Diversity::Medium);
        let b = KrakenTimingModel.presence_breakdown(&system, &w);
        let r = EnergyModel::baseline().report(&b, &system);
        let manual = r.host_cpu + r.host_dram + r.ssd + r.accelerators + r.isp_logic;
        assert!((manual.as_joules() - r.total().as_joules()).abs() < 1e-9);
    }

    #[test]
    fn idle_host_still_draws_power() {
        // A breakdown with zero host-busy time must still charge idle power.
        let system = SystemConfig::reference(SsdConfig::ssd_c());
        let mut b = Breakdown::new("idle");
        b.push_phase("wait", megis_ssd::timing::SimDuration::from_secs(100.0));
        let r = EnergyModel::baseline().report(&b, &system);
        assert!(r.host_cpu.as_joules() >= 100.0 * system.cpu.idle_power_w * 0.99);
    }
}
