//! In-storage accelerator area and power model (Table 2 of the paper).
//!
//! MegIS adds, per flash channel, one 120-bit Intersect unit, a pair of
//! 120-bit k-mer registers, and a 64-bit Index Generator, plus one Control
//! Unit per SSD. The units run at 300 MHz — more than enough, since the
//! pipeline is bottlenecked by NAND read throughput. The paper synthesizes
//! them at 65 nm and scales the area to 32 nm to compare against the three
//! 28 nm ARM Cortex-R4 cores of a SATA SSD controller: the total overhead is
//! 1.7% of the cores' area, and the accelerators are ~26.9× more
//! power-efficient than running the same ISP tasks on the cores.

/// One logic unit of the MegIS accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicUnit {
    /// 120-bit sorted-stream intersection comparator (one per channel).
    Intersect,
    /// Two 120-bit k-mer staging registers (one pair per channel).
    KmerRegisters,
    /// 64-bit Index Generator for prefix-table walking (one per channel).
    IndexGenerator,
    /// FSM control unit (one per SSD).
    ControlUnit,
}

impl LogicUnit {
    /// All units, in Table 2 order.
    pub const ALL: [LogicUnit; 4] = [
        LogicUnit::Intersect,
        LogicUnit::KmerRegisters,
        LogicUnit::IndexGenerator,
        LogicUnit::ControlUnit,
    ];

    /// Table 2 name.
    pub fn name(self) -> &'static str {
        match self {
            LogicUnit::Intersect => "Intersect (120-bit)",
            LogicUnit::KmerRegisters => "k-mer Registers (2x120-bit)",
            LogicUnit::IndexGenerator => "Index Generator (64-bit)",
            LogicUnit::ControlUnit => "Control Unit",
        }
    }

    /// Area of one instance at 65 nm, in mm² (Table 2).
    pub fn area_mm2_65nm(self) -> f64 {
        match self {
            LogicUnit::Intersect => 0.001361,
            LogicUnit::KmerRegisters => 0.002821,
            LogicUnit::IndexGenerator => 0.000272,
            LogicUnit::ControlUnit => 0.000188,
        }
    }

    /// Power of one instance at 65 nm and 300 MHz, in mW (Table 2).
    pub fn power_mw(self) -> f64 {
        match self {
            LogicUnit::Intersect => 0.284,
            LogicUnit::KmerRegisters => 0.645,
            LogicUnit::IndexGenerator => 0.025,
            LogicUnit::ControlUnit => 0.026,
        }
    }

    /// Number of instances in an SSD with `channels` channels.
    pub fn instances(self, channels: u32) -> u32 {
        match self {
            LogicUnit::ControlUnit => 1,
            _ => channels,
        }
    }
}

/// The assembled MegIS accelerator for one SSD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorModel {
    /// Number of flash channels (and therefore per-channel unit instances).
    pub channels: u32,
    /// Operating frequency in Hz (300 MHz in the paper).
    pub frequency_hz: f64,
}

impl AcceleratorModel {
    /// Area scaling factor from 65 nm to 32 nm (derived from the paper's
    /// 0.04 mm² → 0.011 mm² figures, following Stillmaker & Baas scaling).
    pub const AREA_SCALE_65_TO_32NM: f64 = 0.307;
    /// Area of one 28 nm ARM Cortex-R4 core in mm² (such that the 8-channel
    /// accelerator at 32 nm is 1.7% of three cores, as the paper reports).
    pub const CORTEX_R4_AREA_MM2: f64 = 0.2157;

    /// Creates the accelerator model for an SSD with `channels` channels.
    pub fn new(channels: u32) -> AcceleratorModel {
        AcceleratorModel {
            channels,
            frequency_hz: 300e6,
        }
    }

    /// Total area at 65 nm in mm².
    pub fn total_area_mm2_65nm(&self) -> f64 {
        LogicUnit::ALL
            .iter()
            .map(|u| u.area_mm2_65nm() * u.instances(self.channels) as f64)
            .sum()
    }

    /// Total area scaled to 32 nm in mm².
    pub fn total_area_mm2_32nm(&self) -> f64 {
        self.total_area_mm2_65nm() * Self::AREA_SCALE_65_TO_32NM
    }

    /// Total power in mW (65 nm, 300 MHz).
    pub fn total_power_mw(&self) -> f64 {
        LogicUnit::ALL
            .iter()
            .map(|u| u.power_mw() * u.instances(self.channels) as f64)
            .sum()
    }

    /// Total power in watts.
    pub fn total_power_w(&self) -> f64 {
        self.total_power_mw() / 1000.0
    }

    /// Area overhead relative to `cores` Cortex-R4 cores in the SSD
    /// controller (the paper reports 1.7% versus three cores).
    pub fn area_overhead_vs_cores(&self, cores: u32) -> f64 {
        self.total_area_mm2_32nm() / (Self::CORTEX_R4_AREA_MM2 * cores as f64)
    }

    /// Sustained k-mer comparison throughput of the per-channel Intersect
    /// units, in 120-bit compares per second (one compare per cycle per
    /// channel). Used to show the accelerators are never the bottleneck:
    /// this far exceeds the k-mer arrival rate from flash.
    pub fn compare_throughput(&self) -> f64 {
        self.frequency_hz * self.channels as f64
    }

    /// Power-efficiency advantage over running the same ISP tasks on the
    /// SSD controller cores: cores_power / accelerator_power for the same
    /// sustained throughput. With three Cortex-R4 cores at ~0.2 W total
    /// executing the ISP tasks, the paper reports a 26.85× advantage.
    pub fn power_efficiency_vs_cores(&self, cores_power_w: f64) -> f64 {
        cores_power_w / self.total_power_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_for_8_channels() {
        let acc = AcceleratorModel::new(8);
        // Table 2: total 0.04 mm² and 7.658 mW for an 8-channel SSD.
        assert!((acc.total_area_mm2_65nm() - 0.04).abs() < 0.005);
        assert!((acc.total_power_mw() - 7.658).abs() < 0.05);
    }

    #[test]
    fn area_at_32nm_matches_paper() {
        let acc = AcceleratorModel::new(8);
        assert!((acc.total_area_mm2_32nm() - 0.011).abs() < 0.001);
    }

    #[test]
    fn overhead_vs_three_cortex_r4_cores_is_1_7_percent() {
        let acc = AcceleratorModel::new(8);
        let overhead = acc.area_overhead_vs_cores(3);
        assert!((overhead - 0.017).abs() < 0.002, "got {overhead}");
    }

    #[test]
    fn power_efficiency_vs_cores_matches_paper() {
        let acc = AcceleratorModel::new(8);
        // Three R4-class cores running the ISP tasks draw ~0.206 W.
        let advantage = acc.power_efficiency_vs_cores(0.2056);
        assert!((advantage - 26.85).abs() < 1.0, "got {advantage}");
    }

    #[test]
    fn per_channel_units_scale_with_channels() {
        let eight = AcceleratorModel::new(8);
        let sixteen = AcceleratorModel::new(16);
        assert!(sixteen.total_area_mm2_65nm() > 1.9 * eight.total_area_mm2_65nm());
        assert!(sixteen.total_power_mw() < 2.0 * eight.total_power_mw());
        assert_eq!(LogicUnit::ControlUnit.instances(16), 1);
        assert_eq!(LogicUnit::Intersect.instances(16), 16);
    }

    #[test]
    fn compare_throughput_exceeds_flash_kmer_rate() {
        // 8 channels × 1.2 GB/s ÷ 19 bytes/entry ≈ 0.5 G entries/s from
        // flash; the Intersect units sustain 2.4 G compares/s.
        let acc = AcceleratorModel::new(8);
        let flash_entry_rate = 8.0 * 1.2e9 / 19.0;
        assert!(acc.compare_throughput() > 2.0 * flash_entry_rate);
    }
}
