//! Step 2 — finding candidate species inside the SSD (§4.3).
//!
//! For every query bucket arriving from the host, the per-channel Intersect
//! units compare the sorted query k-mers against the sorted database k-mers
//! streaming out of the flash channels, recording the intersection in the
//! internal DRAM (§4.3.1). The intersecting k-mers are then matched against
//! the K-mer Sketch Streaming tables to retrieve their taxIDs (§4.3.2), and
//! the taxIDs of the candidate species are sent to the host.
//!
//! This module is the functional implementation; its results are identical to
//! the S-Qry baseline's by construction (same database, same sketch content,
//! same presence-calling thresholds). The performance model for this step
//! lives in [`crate::pipeline`].

use std::collections::HashMap;

use megis_genomics::database::SortedKmerDatabase;
use megis_genomics::kmer::Kmer;
use megis_genomics::profile::PresenceResult;
use megis_genomics::sketch::SketchDatabase;
use megis_genomics::taxonomy::TaxId;

use crate::config::MegisConfig;
use crate::kss::KssTables;
use crate::step1::Step1Output;

/// Output of Step 2.
#[derive(Debug, Clone, Default)]
pub struct Step2Output {
    /// The intersecting k-mers, in sorted order.
    pub intersecting_kmers: Vec<Kmer>,
    /// Per-taxon sketch-match support counts.
    pub support: HashMap<TaxId, u32>,
    /// The candidate species reported present.
    pub presence: PresenceResult,
}

impl Step2Output {
    /// Number of intersecting k-mers.
    pub fn intersection_size(&self) -> usize {
        self.intersecting_kmers.len()
    }
}

/// Runs Step 2 over the buckets produced by Step 1.
///
/// Buckets are processed in order; because both the queries and the database
/// are sorted, each bucket's intersection is independent and the final result
/// equals a single global intersection.
pub fn run(
    step1: &Step1Output,
    database: &SortedKmerDatabase,
    kss: &KssTables,
    sketches: &SketchDatabase,
    config: &MegisConfig,
) -> Step2Output {
    let mut intersecting = Vec::new();
    for bucket in &step1.buckets {
        if bucket.is_empty() {
            continue;
        }
        // Intersection finding on this bucket's lexicographic range.
        intersecting.extend(database.intersect_sorted(bucket.kmers()));
    }
    from_intersection(intersecting, kss, sketches, config)
}

/// Completes Step 2 from a precomputed (sorted, deduplicated) intersection:
/// taxID retrieval through the KSS tables followed by presence calling.
///
/// This is the entry point used when intersection finding ran out-of-band —
/// e.g. per database shard across several SSDs, as the batch scheduler in
/// `megis-sched` does. Because retrieval support counts are additive over
/// disjoint sorted query subsets, the result is identical to [`run`] on the
/// unsharded database.
///
/// # Panics
///
/// Panics (in debug builds) if `intersecting_kmers` is not strictly sorted.
pub fn from_intersection(
    intersecting_kmers: Vec<Kmer>,
    kss: &KssTables,
    sketches: &SketchDatabase,
    config: &MegisConfig,
) -> Step2Output {
    debug_assert!(intersecting_kmers.windows(2).all(|w| w[0] < w[1]));
    let support: HashMap<TaxId, u32> = kss.stream_retrieve(&intersecting_kmers);
    let presence =
        sketches.presence_from_support(&support, config.min_containment, config.min_support);
    Step2Output {
        intersecting_kmers,
        support,
        presence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::reference::ReferenceCollection;
    use megis_genomics::sample::{CommunityConfig, Diversity};
    use megis_tools::kmc::ExclusionPolicy;

    struct Fixture {
        community: megis_genomics::sample::Community,
        database: SortedKmerDatabase,
        sketches: SketchDatabase,
        kss: KssTables,
        config: MegisConfig,
    }

    fn fixture() -> Fixture {
        let community = CommunityConfig::preset(Diversity::Medium)
            .with_reads(200)
            .with_database_species(16)
            .build(29);
        let config = MegisConfig::small();
        let database = SortedKmerDatabase::build(community.references(), config.k());
        let sketches = SketchDatabase::build(community.references(), config.sketch);
        let kss = KssTables::build(&sketches);
        Fixture {
            community,
            database,
            sketches,
            kss,
            config,
        }
    }

    #[test]
    fn step2_finds_true_species() {
        let f = fixture();
        let step1 = crate::step1::run(
            f.community.sample().reads(),
            &f.config,
            ExclusionPolicy::default(),
        );
        let out = run(&step1, &f.database, &f.kss, &f.sketches, &f.config);
        assert!(!out.intersecting_kmers.is_empty());
        for t in f.community.truth_presence().taxa() {
            assert!(out.presence.contains(*t), "true species {t} not recovered");
        }
    }

    #[test]
    fn bucketed_intersection_equals_global_intersection() {
        let f = fixture();
        let step1 = crate::step1::run(
            f.community.sample().reads(),
            &f.config,
            ExclusionPolicy::default(),
        );
        let out = run(&step1, &f.database, &f.kss, &f.sketches, &f.config);
        let global = f.database.intersect_sorted(&step1.sorted_kmers());
        assert_eq!(out.intersecting_kmers, global);
    }

    #[test]
    fn bucket_count_does_not_change_results() {
        let f = fixture();
        let reads = f.community.sample().reads();
        let few = crate::step1::run(
            reads,
            &f.config.with_bucket_count(2),
            ExclusionPolicy::default(),
        );
        let many = crate::step1::run(
            reads,
            &f.config.with_bucket_count(64),
            ExclusionPolicy::default(),
        );
        let out_few = run(&few, &f.database, &f.kss, &f.sketches, &f.config);
        let out_many = run(&many, &f.database, &f.kss, &f.sketches, &f.config);
        assert_eq!(out_few.presence, out_many.presence);
        assert_eq!(out_few.support, out_many.support);
    }

    #[test]
    fn foreign_sample_finds_nothing() {
        let f = fixture();
        // A sample from organisms that are not in the database at all.
        let foreign_refs = ReferenceCollection::synthetic(4, 1500, 909_090);
        let foreign = CommunityConfig::preset(Diversity::Low)
            .with_reads(100)
            .with_database_species(4)
            .build(909_090);
        // Reuse the foreign community's reads against the fixture database.
        let step1 = crate::step1::run(
            foreign.sample().reads(),
            &f.config,
            ExclusionPolicy::default(),
        );
        let out = run(&step1, &f.database, &f.kss, &f.sketches, &f.config);
        // The foreign genomes share no backbone with the fixture references,
        // so no species should be confidently reported.
        assert!(
            out.presence.is_empty(),
            "unexpected species: {:?}",
            out.presence
        );
        let _ = foreign_refs;
    }
}
