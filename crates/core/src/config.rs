//! MegIS configuration.

use megis_genomics::sketch::SketchConfig;
use megis_ssd::timing::ByteSize;

/// Configuration of the MegIS pipeline (both the functional analyzer and the
/// performance model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MegisConfig {
    /// Number of lexicographic k-mer buckets Step 1 partitions the query
    /// k-mers into (default 512, §4.2.1). Bucketing enables overlapping
    /// host-side sorting with in-SSD intersection.
    pub bucket_count: usize,
    /// Sketch construction parameters (k_max is also the database k).
    pub sketch: SketchConfig,
    /// Batch size used when moving query k-mers from the host into the SSD's
    /// internal DRAM (two batches are double-buffered; 1 MiB each for the
    /// 8-channel configuration of §4.3.1).
    pub dram_batch: ByteSize,
    /// Minimum containment index for a species to be reported present
    /// (identical to the A-Opt baseline so accuracy matches).
    pub min_containment: f64,
    /// Minimum sketch-match support for a species to be reported present.
    pub min_support: u32,
    /// Seed length used for read mapping in abundance estimation.
    pub mapping_k: usize,
}

impl Default for MegisConfig {
    fn default() -> Self {
        MegisConfig {
            bucket_count: 512,
            sketch: SketchConfig::default(),
            dram_batch: ByteSize::from_mib(1),
            min_containment: 0.4,
            min_support: 3,
            mapping_k: 15,
        }
    }
}

impl MegisConfig {
    /// A small configuration for unit tests and examples on synthetic data
    /// (short genomes, few buckets, small sketch k-mers).
    pub fn small() -> MegisConfig {
        MegisConfig {
            bucket_count: 8,
            sketch: SketchConfig::small(),
            ..MegisConfig::default()
        }
    }

    /// Returns a copy with a different bucket count.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is zero.
    pub fn with_bucket_count(mut self, bucket_count: usize) -> MegisConfig {
        assert!(bucket_count > 0, "bucket count must be positive");
        self.bucket_count = bucket_count;
        self
    }

    /// The database/query k-mer size (the sketch's k_max).
    pub fn k(&self) -> usize {
        self.sketch.k_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let cfg = MegisConfig::default();
        assert_eq!(cfg.bucket_count, 512);
        assert_eq!(cfg.dram_batch.as_bytes(), 1024 * 1024);
    }

    #[test]
    fn small_config_is_test_friendly() {
        let cfg = MegisConfig::small();
        assert!(cfg.bucket_count <= 16);
        assert!(cfg.k() <= 31);
    }

    #[test]
    fn presence_thresholds_match_metalign_defaults() {
        // Accuracy parity with the A-Opt baseline requires identical
        // presence-calling parameters.
        let cfg = MegisConfig::default();
        assert_eq!(cfg.min_support, 3);
        assert!((cfg.min_containment - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_buckets_rejected() {
        MegisConfig::default().with_bucket_count(0);
    }
}
