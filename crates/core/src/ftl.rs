//! MegIS FTL: block-level mapping and channel-balanced data placement (§4.5).
//!
//! During ISP, MegIS does not need the regular page-level L2P mapping: its
//! databases are written once, sequentially, and always read sequentially.
//! MegIS FTL therefore flushes the regular L2P metadata and keeps only
//!
//! * the start LPA→PPA mapping and the database size,
//! * the sequence of physical blocks holding the database on each channel, and
//! * per-block read counts for read-disturbance management,
//!
//! which together fit in a few megabytes even for terabyte-scale databases —
//! freeing almost all of the internal DRAM's capacity and bandwidth for the
//! ISP dataflow. Databases are striped evenly across channels with all active
//! blocks at the same page offset, so a sequential read proceeds round-robin
//! across channels at full internal bandwidth.

use std::collections::HashMap;

use megis_ssd::geometry::{Geometry, PhysicalBlockAddr};
use megis_ssd::timing::ByteSize;

/// Placement record of one sequentially stored database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabasePlacement {
    /// Name of the stored object.
    pub name: String,
    /// Start logical page address.
    pub start_lpa: u64,
    /// Database size in bytes.
    pub size: ByteSize,
    /// Physical blocks holding the database, per channel, in read order.
    pub blocks_per_channel: Vec<Vec<PhysicalBlockAddr>>,
}

impl DatabasePlacement {
    /// Total number of physical blocks used.
    pub fn total_blocks(&self) -> usize {
        self.blocks_per_channel.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no channel holds more than one block more than any
    /// other (the even striping MegIS requires to use the full internal
    /// bandwidth).
    pub fn is_balanced(&self) -> bool {
        let counts: Vec<usize> = self.blocks_per_channel.iter().map(Vec::len).collect();
        match (counts.iter().max(), counts.iter().min()) {
            (Some(max), Some(min)) => max - min <= 1,
            _ => true,
        }
    }
}

/// Errors returned by MegIS FTL operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MegisFtlError {
    /// Not enough free blocks remain to place the database.
    InsufficientSpace {
        /// Blocks requested by the failed placement.
        requested: u64,
        /// Blocks still available.
        available: u64,
    },
    /// A database with this name is already placed.
    DuplicateName(String),
}

impl std::fmt::Display for MegisFtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MegisFtlError::InsufficientSpace {
                requested,
                available,
            } => write!(
                f,
                "placement needs {requested} blocks but only {available} are free"
            ),
            MegisFtlError::DuplicateName(n) => write!(f, "database '{n}' is already placed"),
        }
    }
}

impl std::error::Error for MegisFtlError {}

/// The MegIS flash translation layer.
#[derive(Debug, Clone)]
pub struct MegisFtl {
    geometry: Geometry,
    placements: HashMap<String, DatabasePlacement>,
    /// Next free block index per channel.
    next_block_per_channel: Vec<u64>,
    /// Per-block read counts since the last erase (read-disturb accounting,
    /// the only non-L2P metadata MegIS FTL must keep during ISP).
    read_counts: HashMap<PhysicalBlockAddr, u64>,
    next_lpa: u64,
}

impl MegisFtl {
    /// Creates an empty MegIS FTL for the given geometry.
    pub fn new(geometry: Geometry) -> MegisFtl {
        MegisFtl {
            geometry,
            placements: HashMap::new(),
            next_block_per_channel: vec![0; geometry.channels as usize],
            read_counts: HashMap::new(),
            next_lpa: 0,
        }
    }

    /// The geometry this FTL manages.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    fn blocks_per_channel_capacity(&self) -> u64 {
        self.geometry.dies_per_channel as u64
            * self.geometry.planes_per_die as u64
            * self.geometry.blocks_per_plane as u64
    }

    fn block_addr(&self, channel: u32, seq: u64) -> PhysicalBlockAddr {
        let dies = self.geometry.dies_per_channel as u64;
        let planes = self.geometry.planes_per_die as u64;
        PhysicalBlockAddr {
            channel,
            die: (seq % dies) as u32,
            plane: ((seq / dies) % planes) as u32,
            block: (seq / (dies * planes)) as u32,
        }
    }

    /// Places a database of `size` bytes sequentially and evenly across all
    /// channels, with every active block at the same offset (Fig. 10).
    ///
    /// # Errors
    ///
    /// Fails if the name is already used or the device lacks free blocks.
    pub fn place_database(
        &mut self,
        name: &str,
        size: ByteSize,
    ) -> Result<&DatabasePlacement, MegisFtlError> {
        if self.placements.contains_key(name) {
            return Err(MegisFtlError::DuplicateName(name.to_string()));
        }
        let channels = self.geometry.channels as u64;
        let blocks_needed = self.geometry.blocks_for(size).max(1);
        // Round up to a multiple of the channel count so striping stays even.
        let blocks_per_channel = blocks_needed.div_ceil(channels);
        let available_per_channel: Vec<u64> = self
            .next_block_per_channel
            .iter()
            .map(|used| self.blocks_per_channel_capacity() - used)
            .collect();
        let available: u64 = available_per_channel.iter().sum();
        if available_per_channel
            .iter()
            .any(|a| *a < blocks_per_channel)
        {
            return Err(MegisFtlError::InsufficientSpace {
                requested: blocks_per_channel * channels,
                available,
            });
        }

        let mut per_channel = Vec::with_capacity(channels as usize);
        for ch in 0..channels as u32 {
            let start = self.next_block_per_channel[ch as usize];
            let blocks: Vec<PhysicalBlockAddr> = (start..start + blocks_per_channel)
                .map(|seq| self.block_addr(ch, seq))
                .collect();
            self.next_block_per_channel[ch as usize] += blocks_per_channel;
            per_channel.push(blocks);
        }
        let placement = DatabasePlacement {
            name: name.to_string(),
            start_lpa: self.next_lpa,
            size,
            blocks_per_channel: per_channel,
        };
        self.next_lpa += self.geometry.pages_for(size);
        self.placements.insert(name.to_string(), placement);
        Ok(&self.placements[name])
    }

    /// Looks up a placed database.
    pub fn placement(&self, name: &str) -> Option<&DatabasePlacement> {
        self.placements.get(name)
    }

    /// Records one full sequential read of a database (for read-disturb
    /// accounting).
    ///
    /// # Panics
    ///
    /// Panics if the database is not placed.
    pub fn record_sequential_read(&mut self, name: &str) {
        let placement = self.placements.get(name).expect("database must be placed");
        for blocks in &placement.blocks_per_channel {
            for b in blocks {
                *self.read_counts.entry(*b).or_insert(0) += 1;
            }
        }
    }

    /// Read count of a block since the last erase.
    pub fn block_read_count(&self, block: PhysicalBlockAddr) -> u64 {
        self.read_counts.get(&block).copied().unwrap_or(0)
    }

    /// The sequence of blocks a full sequential read visits: round-robin
    /// across channels, one block per channel per round.
    pub fn sequential_read_order(&self, name: &str) -> Vec<PhysicalBlockAddr> {
        let Some(placement) = self.placements.get(name) else {
            return Vec::new();
        };
        let rounds = placement
            .blocks_per_channel
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0);
        let mut order = Vec::with_capacity(placement.total_blocks());
        for round in 0..rounds {
            for blocks in &placement.blocks_per_channel {
                if let Some(b) = blocks.get(round) {
                    order.push(*b);
                }
            }
        }
        order
    }

    /// Size of MegIS FTL's L2P metadata: 4 bytes per used block (the block
    /// sequence) plus the start mapping and database sizes (§4.5 — about
    /// 1.3 MB for a 4 TB database with 12 MB blocks).
    pub fn l2p_metadata_bytes(&self) -> ByteSize {
        let block_entries: u64 = self
            .placements
            .values()
            .map(|p| p.total_blocks() as u64)
            .sum();
        ByteSize::from_bytes(block_entries * 4 + self.placements.len() as u64 * 16)
    }

    /// Size of the read-disturb counters (4 bytes per used block).
    pub fn read_counter_bytes(&self) -> ByteSize {
        let block_entries: u64 = self
            .placements
            .values()
            .map(|p| p.total_blocks() as u64)
            .sum();
        ByteSize::from_bytes(block_entries * 4)
    }

    /// Total MegIS FTL metadata resident in internal DRAM during ISP.
    pub fn total_metadata_bytes(&self) -> ByteSize {
        self.l2p_metadata_bytes() + self.read_counter_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_ssd::config::SsdConfig;

    fn ftl() -> MegisFtl {
        MegisFtl::new(SsdConfig::ssd_c().geometry)
    }

    #[test]
    fn placement_is_balanced_across_channels() {
        let mut f = ftl();
        let p = f
            .place_database("kmer-db", ByteSize::from_gb(701.0))
            .unwrap();
        assert!(p.is_balanced());
        assert_eq!(p.blocks_per_channel.len(), 8);
        assert!(
            p.total_blocks() as u64 >= ByteSize::from_gb(701.0).as_bytes() / (12 * 1024 * 1024)
        );
    }

    #[test]
    fn metadata_is_megabytes_for_terabyte_databases() {
        let mut f = ftl();
        // A 4 TB database with ~12 MB blocks needs ~350 K block entries →
        // ~1.3 MB of L2P metadata, ≤ 2.6 MB total (§4.5).
        f.place_database("db", ByteSize::from_tb(4.0)).unwrap();
        let l2p = f.l2p_metadata_bytes();
        let total = f.total_metadata_bytes();
        assert!(
            l2p.as_bytes() > 1_000_000 && l2p.as_bytes() < 1_700_000,
            "{l2p}"
        );
        assert!(total.as_bytes() < 2_800_000, "{total}");
    }

    #[test]
    fn megis_ftl_metadata_is_far_smaller_than_page_level() {
        let cfg = SsdConfig::ssd_c();
        let mut f = MegisFtl::new(cfg.geometry);
        f.place_database("db", ByteSize::from_tb(4.0)).unwrap();
        let page_level = cfg.page_level_l2p_bytes().as_bytes();
        assert!(f.total_metadata_bytes().as_bytes() * 100 < page_level);
    }

    #[test]
    fn sequential_read_order_alternates_channels() {
        let mut f = ftl();
        f.place_database("db", ByteSize::from_gb(1.0)).unwrap();
        let order = f.sequential_read_order("db");
        assert!(!order.is_empty());
        // The first `channels` reads must hit distinct channels.
        let channels: std::collections::HashSet<u32> =
            order.iter().take(8).map(|b| b.channel).collect();
        assert_eq!(channels.len(), 8);
    }

    #[test]
    fn read_disturb_counters_accumulate() {
        let mut f = ftl();
        f.place_database("db", ByteSize::from_gb(1.0)).unwrap();
        f.record_sequential_read("db");
        f.record_sequential_read("db");
        let order = f.sequential_read_order("db");
        assert_eq!(f.block_read_count(order[0]), 2);
    }

    #[test]
    fn duplicate_names_and_overflow_are_rejected() {
        let mut f = ftl();
        f.place_database("db", ByteSize::from_gb(1.0)).unwrap();
        assert!(matches!(
            f.place_database("db", ByteSize::from_gb(1.0)),
            Err(MegisFtlError::DuplicateName(_))
        ));
        let err = f.place_database("huge", ByteSize::from_tb(100.0));
        assert!(matches!(err, Err(MegisFtlError::InsufficientSpace { .. })));
    }

    #[test]
    fn multiple_databases_get_disjoint_blocks() {
        let mut f = ftl();
        f.place_database("a", ByteSize::from_gb(10.0)).unwrap();
        f.place_database("b", ByteSize::from_gb(10.0)).unwrap();
        let a: std::collections::HashSet<_> = f.sequential_read_order("a").into_iter().collect();
        let b: std::collections::HashSet<_> = f.sequential_read_order("b").into_iter().collect();
        assert!(a.is_disjoint(&b));
    }
}
