//! MegIS's NVMe command extensions and the device-side mode state machine
//! (§4.6).
//!
//! MegIS adds three commands to the storage interface:
//!
//! * `MegIS_Init` — enters metagenomic-acceleration mode and communicates the
//!   host DRAM region available to MegIS,
//! * `MegIS_Step` — marks the start/end of each host-side step (k-mer
//!   extraction, sorting) so the device can coordinate data/control flow;
//!   sending the same step twice toggles start → end,
//! * `MegIS_Write` — a write that also updates MegIS FTL's coarse mapping
//!   metadata (used when metagenomic data, e.g. spilled k-mer buckets, is
//!   written to the SSD).
//!
//! After the analysis completes (`finish`), the device returns to operating
//! as a baseline SSD.

use megis_ssd::timing::ByteSize;

/// Host-side steps whose boundaries are communicated with `MegIS_Step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostStep {
    /// Step 1a: k-mer extraction and bucketing.
    KmerExtraction,
    /// Step 1b: per-bucket sorting and exclusion.
    Sorting,
}

/// A MegIS storage-interface command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MegisCommand {
    /// Enter acceleration mode; `host_buffer` is the host DRAM available to
    /// MegIS's operations.
    Init {
        /// Size of the host DRAM region handed to MegIS.
        host_buffer: ByteSize,
    },
    /// Toggle the start/end boundary of a host-side step.
    Step(HostStep),
    /// Write metagenomic data (updates MegIS FTL metadata too).
    Write {
        /// Number of flash pages written.
        pages: u64,
    },
}

/// Errors returned by the device-mode state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandError {
    /// A command other than `MegIS_Init` arrived while in baseline mode.
    NotInAccelerationMode,
    /// `MegIS_Init` arrived while already in acceleration mode.
    AlreadyInitialized,
    /// `MegIS_Write` arrived while a write-free phase was active (after
    /// k-mer extraction has ended, MegIS performs no flash writes, §4.5).
    WriteAfterExtraction,
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::NotInAccelerationMode => {
                write!(f, "device is in baseline mode; send MegIS_Init first")
            }
            CommandError::AlreadyInitialized => write!(f, "device is already in acceleration mode"),
            CommandError::WriteAfterExtraction => {
                write!(f, "MegIS performs no flash writes after k-mer extraction")
            }
        }
    }
}

impl std::error::Error for CommandError {}

/// Device-side acceleration-mode state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceMode {
    /// Operating as a regular SSD.
    Baseline,
    /// Acceleration mode, before or during k-mer extraction (writes allowed).
    AcceleratingWritable,
    /// Acceleration mode after k-mer extraction ended: the regular L2P has
    /// been flushed, MegIS FTL metadata is loaded, and no flash writes occur.
    AcceleratingReadOnly,
}

/// The device-side command handler / mode state machine.
#[derive(Debug, Clone)]
pub struct MegisDevice {
    mode: DeviceMode,
    host_buffer: ByteSize,
    active_steps: Vec<HostStep>,
    pages_written: u64,
}

impl Default for MegisDevice {
    fn default() -> Self {
        MegisDevice::new()
    }
}

impl MegisDevice {
    /// Creates a device in baseline mode.
    pub fn new() -> MegisDevice {
        MegisDevice {
            mode: DeviceMode::Baseline,
            host_buffer: ByteSize::ZERO,
            active_steps: Vec::new(),
            pages_written: 0,
        }
    }

    /// The current device mode.
    pub fn mode(&self) -> DeviceMode {
        self.mode
    }

    /// The host DRAM region communicated by `MegIS_Init`.
    pub fn host_buffer(&self) -> ByteSize {
        self.host_buffer
    }

    /// Host-side steps currently marked as running.
    pub fn active_steps(&self) -> &[HostStep] {
        &self.active_steps
    }

    /// Flash pages written through `MegIS_Write` in this acceleration session.
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// Handles one command.
    ///
    /// # Errors
    ///
    /// Returns a [`CommandError`] when the command is not valid in the current
    /// mode.
    pub fn handle(&mut self, command: MegisCommand) -> Result<(), CommandError> {
        match command {
            MegisCommand::Init { host_buffer } => {
                if self.mode != DeviceMode::Baseline {
                    return Err(CommandError::AlreadyInitialized);
                }
                self.mode = DeviceMode::AcceleratingWritable;
                self.host_buffer = host_buffer;
                Ok(())
            }
            MegisCommand::Step(step) => {
                if self.mode == DeviceMode::Baseline {
                    return Err(CommandError::NotInAccelerationMode);
                }
                if let Some(pos) = self.active_steps.iter().position(|s| *s == step) {
                    // End of the step.
                    self.active_steps.remove(pos);
                    if step == HostStep::KmerExtraction {
                        // After extraction, MegIS flushes the regular L2P and
                        // requires no further flash writes.
                        self.mode = DeviceMode::AcceleratingReadOnly;
                    }
                } else {
                    self.active_steps.push(step);
                }
                Ok(())
            }
            MegisCommand::Write { pages } => match self.mode {
                DeviceMode::Baseline => Err(CommandError::NotInAccelerationMode),
                DeviceMode::AcceleratingReadOnly => Err(CommandError::WriteAfterExtraction),
                DeviceMode::AcceleratingWritable => {
                    self.pages_written += pages;
                    Ok(())
                }
            },
        }
    }

    /// Ends the acceleration session and returns the device to baseline mode.
    pub fn finish(&mut self) {
        self.mode = DeviceMode::Baseline;
        self.active_steps.clear();
        self.host_buffer = ByteSize::ZERO;
        self.pages_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_enters_acceleration_mode() {
        let mut dev = MegisDevice::new();
        assert_eq!(dev.mode(), DeviceMode::Baseline);
        dev.handle(MegisCommand::Init {
            host_buffer: ByteSize::from_gb(64.0),
        })
        .unwrap();
        assert_eq!(dev.mode(), DeviceMode::AcceleratingWritable);
        assert_eq!(dev.host_buffer().as_gb(), 64.0);
    }

    #[test]
    fn double_init_is_rejected() {
        let mut dev = MegisDevice::new();
        dev.handle(MegisCommand::Init {
            host_buffer: ByteSize::from_gb(1.0),
        })
        .unwrap();
        assert_eq!(
            dev.handle(MegisCommand::Init {
                host_buffer: ByteSize::from_gb(1.0)
            }),
            Err(CommandError::AlreadyInitialized)
        );
    }

    #[test]
    fn commands_require_acceleration_mode() {
        let mut dev = MegisDevice::new();
        assert_eq!(
            dev.handle(MegisCommand::Step(HostStep::Sorting)),
            Err(CommandError::NotInAccelerationMode)
        );
        assert_eq!(
            dev.handle(MegisCommand::Write { pages: 1 }),
            Err(CommandError::NotInAccelerationMode)
        );
    }

    #[test]
    fn step_toggles_start_and_end() {
        let mut dev = MegisDevice::new();
        dev.handle(MegisCommand::Init {
            host_buffer: ByteSize::from_gb(1.0),
        })
        .unwrap();
        dev.handle(MegisCommand::Step(HostStep::KmerExtraction))
            .unwrap();
        assert_eq!(dev.active_steps(), &[HostStep::KmerExtraction]);
        // Writes (spilled buckets) are allowed during extraction.
        dev.handle(MegisCommand::Write { pages: 128 }).unwrap();
        assert_eq!(dev.pages_written(), 128);
        // Ending extraction flushes the regular L2P: no more writes.
        dev.handle(MegisCommand::Step(HostStep::KmerExtraction))
            .unwrap();
        assert!(dev.active_steps().is_empty());
        assert_eq!(dev.mode(), DeviceMode::AcceleratingReadOnly);
        assert_eq!(
            dev.handle(MegisCommand::Write { pages: 1 }),
            Err(CommandError::WriteAfterExtraction)
        );
        // Sorting boundaries still toggle normally.
        dev.handle(MegisCommand::Step(HostStep::Sorting)).unwrap();
        dev.handle(MegisCommand::Step(HostStep::Sorting)).unwrap();
    }

    #[test]
    fn finish_returns_to_baseline() {
        let mut dev = MegisDevice::new();
        dev.handle(MegisCommand::Init {
            host_buffer: ByteSize::from_gb(1.0),
        })
        .unwrap();
        dev.finish();
        assert_eq!(dev.mode(), DeviceMode::Baseline);
        assert_eq!(dev.pages_written(), 0);
    }
}
