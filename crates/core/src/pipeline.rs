//! End-to-end MegIS performance model (§4, evaluated in §6).
//!
//! [`MegisTimingModel`] computes the wall-clock breakdown of a MegIS analysis
//! on a paper-scale workload, for any of the design variants of Fig. 12
//! (MS / MS-NOL / MS-CC / Ext-MS), any system configuration (SSD-C / SSD-P,
//! DRAM capacity, SSD count, channel count, optional sorting accelerator),
//! plus abundance estimation (Fig. 20, including the MS-NIdx ablation) and
//! the multi-sample use case (Fig. 21).
//!
//! The model composes the substrate models of `megis-ssd` and `megis-host`:
//!
//! * Step 1 runs on the host (k-mer extraction, bucketed sorting, exclusion);
//!   its bucketing both enables overlap with Step 2 and avoids page-swap
//!   thrashing when the extracted k-mers exceed host DRAM.
//! * Step 2 streams the sorted database from flash at the SSD's *internal*
//!   bandwidth (or the external bandwidth for Ext-MS), overlapped with the
//!   query-batch transfers into internal DRAM; the per-channel Intersect
//!   units (or the controller cores for MS-CC) must keep up with the stream.
//! * TaxID retrieval streams the KSS tables the same way.
//! * Step 3 merges the candidate reference indexes inside the SSD and hands
//!   the unified index to the mapping accelerator.

use megis_host::system::SystemConfig;
use megis_ssd::timing::SimDuration;
use megis_tools::timing::Breakdown;
use megis_tools::workload::WorkloadSpec;

use crate::accel::AcceleratorModel;
use crate::variants::MegisVariant;

/// Whether Step 3's unified index is generated inside the SSD or in software
/// on the host (the MS-NIdx ablation of Fig. 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexGeneration {
    /// In-SSD sequential merge (full MegIS).
    InStorage,
    /// Software index construction on the host (MS-NIdx).
    HostSoftware,
}

/// The MegIS performance model.
#[derive(Debug, Clone, Copy)]
pub struct MegisTimingModel {
    /// Which design variant to model.
    pub variant: MegisVariant,
    /// How Step 3 generates the unified index.
    pub index_generation: IndexGeneration,
}

impl Default for MegisTimingModel {
    fn default() -> Self {
        MegisTimingModel::new(MegisVariant::Full)
    }
}

impl MegisTimingModel {
    /// Creates a model for the given variant (in-SSD index generation).
    pub fn new(variant: MegisVariant) -> MegisTimingModel {
        MegisTimingModel {
            variant,
            index_generation: IndexGeneration::InStorage,
        }
    }

    /// The full MegIS design (MS).
    pub fn full() -> MegisTimingModel {
        MegisTimingModel::new(MegisVariant::Full)
    }

    /// The MS-NIdx ablation: full MegIS for Steps 1–2, software index
    /// generation in Step 3.
    pub fn without_in_storage_index() -> MegisTimingModel {
        MegisTimingModel {
            variant: MegisVariant::Full,
            index_generation: IndexGeneration::HostSoftware,
        }
    }

    fn label(&self, workload: &WorkloadSpec) -> String {
        let idx = match self.index_generation {
            IndexGeneration::InStorage => "",
            IndexGeneration::HostSoftware => "-NIdx",
        };
        format!("{}{idx} ({})", self.variant.label(), workload.label)
    }

    // ----- step components ---------------------------------------------------

    /// Host-side k-mer extraction time (including 2-bit format conversion).
    fn extraction_time(&self, system: &SystemConfig, workload: &WorkloadSpec) -> SimDuration {
        system.cpu.kmer_extraction_time(workload.total_bases())
            + system.cpu.format_convert_time(workload.total_bases())
    }

    /// Host-side sorting + exclusion time, including any bucket spill penalty
    /// when the extracted k-mers exceed host DRAM.
    fn sorting_time(&self, system: &SystemConfig, workload: &WorkloadSpec) -> SimDuration {
        let mut sort = match system.sorting_accelerator {
            Some(acc) => acc.sort_time(workload.extracted_kmers, 2 * workload.metalign_k / 8),
            None => system.cpu.sort_time(workload.extracted_kmers),
        };
        // Buckets that do not fit in host DRAM are pinned on the SSD: they are
        // written once during extraction and consumed from there, instead of
        // thrashing back and forth (§4.2.1).
        let overflow = system.memory.overflow(workload.extracted_kmer_bytes);
        if overflow.as_bytes() > 0 {
            let ssd = system.primary_ssd();
            sort += overflow.time_at(ssd.external_write_bandwidth());
        }
        sort
    }

    /// Transfer time of the selected (sorted, excluded) query k-mers into the
    /// SSDs' internal DRAM.
    fn query_transfer_time(&self, system: &SystemConfig, workload: &WorkloadSpec) -> SimDuration {
        let write_bw: f64 = system
            .ssds
            .iter()
            .map(|s| s.interface.sequential_write_bandwidth())
            .sum();
        workload.selected_kmer_bytes.time_at(write_bw)
    }

    /// Sustained ISP compute bandwidth limit in database bytes/s for the
    /// intersection and KSS streams, aggregated over all SSDs.
    fn isp_compute_bandwidth(&self, system: &SystemConfig, workload: &WorkloadSpec) -> f64 {
        let bytes_per_entry = (2 * workload.metalign_k / 8 + 4) as f64;
        system
            .ssds
            .iter()
            .map(|cfg| {
                let compares_per_sec = if self.variant.uses_controller_cores() {
                    cfg.cores.count as f64 * cfg.cores.compares_per_sec_per_core
                } else {
                    AcceleratorModel::new(cfg.geometry.channels).compare_throughput()
                };
                compares_per_sec * bytes_per_entry
            })
            .sum()
    }

    /// Database streaming bandwidth available to Step 2 (internal for ISP
    /// variants, external for Ext-MS).
    fn database_stream_bandwidth(&self, system: &SystemConfig) -> f64 {
        if self.variant.uses_isp() {
            system.aggregate_internal_read_bandwidth()
        } else {
            system.aggregate_external_read_bandwidth()
        }
    }

    /// Intersection-finding time: the database stream, the query-batch
    /// fetches, and the compare throughput all run concurrently; the slowest
    /// dictates the duration.
    fn intersection_time(&self, system: &SystemConfig, workload: &WorkloadSpec) -> SimDuration {
        let stream_bw = self.database_stream_bandwidth(system);
        let db_stream = workload.metalign_db.time_at(stream_bw);
        let compute = workload
            .metalign_db
            .time_at(self.isp_compute_bandwidth(system, workload));
        let query_fetch = self.query_transfer_time(system, workload);
        db_stream.max(compute).max(query_fetch)
    }

    /// TaxID-retrieval time: streaming the KSS tables against the (much
    /// smaller) intersecting k-mer set held in internal DRAM, then returning
    /// the taxIDs to the host.
    fn retrieval_time(&self, system: &SystemConfig, workload: &WorkloadSpec) -> SimDuration {
        let stream_bw = self.database_stream_bandwidth(system);
        let kss_stream = workload.kss_tables.time_at(stream_bw);
        let compute = workload
            .kss_tables
            .time_at(self.isp_compute_bandwidth(system, workload));
        let dram_traffic = workload
            .intersecting_kmer_bytes()
            .time_at(system.primary_ssd().dram.bandwidth);
        let result_transfer = workload
            .taxid_result_bytes()
            .time_at(system.aggregate_external_read_bandwidth());
        kss_stream.max(compute).max(dram_traffic) + result_transfer
    }

    // ----- presence/absence ---------------------------------------------------

    /// Timing breakdown of presence/absence identification (Fig. 12/13).
    pub fn presence_breakdown(&self, system: &SystemConfig, workload: &WorkloadSpec) -> Breakdown {
        let mut b = Breakdown::new(self.label(workload));
        let extraction = self.extraction_time(system, workload);
        let sorting = self.sorting_time(system, workload);
        let intersection = self.intersection_time(system, workload);
        let retrieval = self.retrieval_time(system, workload);
        let transfer = self.query_transfer_time(system, workload);

        b.push_phase("k-mer extraction", extraction);
        if self.variant.overlaps_steps() {
            // Bucketing lets per-bucket sorting and transfer proceed while the
            // SSD intersects previously delivered buckets: only the portion of
            // sorting that the in-SSD work cannot hide is exposed, plus the
            // pipeline-fill cost of the first bucket.
            let isp_total = intersection + retrieval;
            let fill = sorting / 512.0;
            let exposed_sorting = sorting.saturating_sub(isp_total) + fill;
            b.push_phase(
                "sorting + k-mer exclusion + transfer (exposed)",
                exposed_sorting,
            );
            b.push_phase("intersection finding", intersection);
            b.push_phase("taxid retrieval", retrieval);
        } else {
            b.push_phase("sorting + k-mer exclusion", sorting);
            b.push_phase("query transfer", transfer);
            b.push_phase("intersection finding", intersection);
            b.push_phase("taxid retrieval", retrieval);
        }

        b.external_io = workload.selected_kmer_bytes + workload.taxid_result_bytes();
        if self.variant.uses_isp() {
            b.internal_io = workload.metalign_db + workload.kss_tables;
        } else {
            b.external_io += workload.metalign_db + workload.kss_tables;
            b.internal_io = workload.metalign_db + workload.kss_tables;
        }
        b.host_busy = extraction + sorting;
        b.ssd_busy = intersection + retrieval;
        b
    }

    // ----- abundance estimation ----------------------------------------------

    /// Timing breakdown of the full pipeline including abundance estimation
    /// (Fig. 20).
    pub fn abundance_breakdown(&self, system: &SystemConfig, workload: &WorkloadSpec) -> Breakdown {
        let mut b = self.presence_breakdown(system, workload);

        let index_generation = match self.index_generation {
            IndexGeneration::InStorage => {
                // Sequentially merge the candidate indexes at internal
                // bandwidth, then ship the unified index to the host/mapper.
                let merge = workload
                    .candidate_reference_indexes
                    .time_at(system.aggregate_internal_read_bandwidth());
                let transfer = workload
                    .candidate_reference_indexes
                    .time_at(system.aggregate_external_read_bandwidth());
                merge + transfer
            }
            IndexGeneration::HostSoftware => {
                // Read the indexes out of the SSD and build the unified index
                // in software (several passes over the entries).
                let io = workload
                    .candidate_reference_indexes
                    .time_at(system.aggregate_external_read_bandwidth());
                let entries = workload.candidate_reference_indexes.as_bytes() / 12;
                io + system.cpu.stream_merge_time(entries * 4)
            }
        };
        let mapping = system.mapping_accelerator.mapping_time(workload.reads);
        b.push_phase("unified index generation", index_generation);
        b.push_phase("read mapping", mapping);
        b.external_io += workload.candidate_reference_indexes;
        b.internal_io += workload.candidate_reference_indexes;
        match self.index_generation {
            IndexGeneration::InStorage => b.ssd_busy += index_generation,
            IndexGeneration::HostSoftware => b.host_busy += index_generation,
        }
        b.accelerator_busy += mapping;
        b
    }

    // ----- multi-sample use case ----------------------------------------------

    /// Timing breakdown for analyzing `samples` read sets against the same
    /// database (§4.7, Fig. 21). K-mers extracted from as many samples as fit
    /// in host DRAM are buffered so the database is streamed once per group
    /// rather than once per sample.
    pub fn multi_sample_breakdown(
        &self,
        system: &SystemConfig,
        workload: &WorkloadSpec,
        samples: usize,
    ) -> Breakdown {
        assert!(samples > 0, "at least one sample is required");
        let mut b = Breakdown::new(format!(
            "{} x{} samples ({})",
            self.variant.label(),
            samples,
            workload.label
        ));

        // How many samples' extracted k-mers fit in host DRAM at once.
        let per_sample = workload.extracted_kmer_bytes.as_bytes().max(1);
        let usable = (system.memory.capacity.as_bytes() as f64 * 0.9) as u64;
        let samples_per_group = ((usable / per_sample).max(1) as usize).min(samples);
        let groups = samples.div_ceil(samples_per_group);

        let extraction = self.extraction_time(system, workload) * samples as f64;
        let sorting = self.sorting_time(system, workload) * samples as f64;
        let intersection = self.intersection_time(system, workload) * groups as f64;
        let retrieval = self.retrieval_time(system, workload) * samples as f64;

        b.push_phase("k-mer extraction (all samples)", extraction);
        if self.variant.overlaps_steps() {
            let isp_total = intersection + retrieval;
            let exposed = sorting.saturating_sub(isp_total) + sorting / 512.0;
            b.push_phase("sorting + transfer (exposed)", exposed);
        } else {
            b.push_phase("sorting + k-mer exclusion", sorting);
        }
        b.push_phase("intersection finding (per group)", intersection);
        b.push_phase("taxid retrieval (per sample)", retrieval);

        b.external_io = workload.selected_kmer_bytes * samples as u64;
        b.internal_io =
            (workload.metalign_db * groups as u64) + (workload.kss_tables * samples as u64);
        b.host_busy = extraction + sorting;
        b.ssd_busy = intersection + retrieval;
        b
    }
}

/// Multi-sample model for the *software* baselines of Fig. 21: each sample is
/// analyzed independently, so the total is `samples ×` the single-sample time.
pub fn baseline_multi_sample(single_sample: &Breakdown, samples: usize) -> Breakdown {
    assert!(samples > 0);
    let mut b = Breakdown::new(format!("{} x{} samples", single_sample.label, samples));
    for phase in &single_sample.phases {
        b.push_phase(phase.name.clone(), phase.duration * samples as f64);
    }
    b.external_io = single_sample.external_io * samples as u64;
    b.internal_io = single_sample.internal_io * samples as u64;
    b.host_busy = single_sample.host_busy * samples as f64;
    b.ssd_busy = single_sample.ssd_busy * samples as f64;
    b.accelerator_busy = single_sample.accelerator_busy * samples as f64;
    b
}

/// The software-only multi-sample optimization of §4.7 (labeled `MS-SW` /
/// `MS-Pipe` in Fig. 21): the same k-mer buffering across samples as MegIS,
/// but with intersection finding and taxID retrieval executed on the host
/// (i.e. the A-Opt+KSS flow batched over samples).
pub fn software_multi_sample(
    system: &SystemConfig,
    workload: &WorkloadSpec,
    samples: usize,
) -> Breakdown {
    assert!(samples > 0);
    let mut b = Breakdown::new(format!("MS-SW x{samples} samples ({})", workload.label));
    let cpu = &system.cpu;

    let per_sample = workload.extracted_kmer_bytes.as_bytes().max(1);
    let usable = (system.memory.capacity.as_bytes() as f64 * 0.9) as u64;
    let samples_per_group = ((usable / per_sample).max(1) as usize).min(samples);
    let groups = samples.div_ceil(samples_per_group);

    let extraction = (cpu.kmer_extraction_time(workload.total_bases())
        + cpu.format_convert_time(workload.total_bases()))
        * samples as f64;
    let sorting = match system.sorting_accelerator {
        Some(acc) => acc.sort_time(workload.extracted_kmers, 2 * workload.metalign_k / 8),
        None => cpu.sort_time(workload.extracted_kmers),
    } * samples as f64;

    let db_entries = workload.metalign_db.as_bytes() / 19;
    let db_io = workload
        .metalign_db
        .time_at(system.aggregate_external_read_bandwidth());
    let merge =
        cpu.stream_merge_time(db_entries + workload.selected_kmers * samples_per_group as u64);
    let intersection = db_io.max(merge) * groups as f64;

    let kss_io = workload
        .kss_tables
        .time_at(system.aggregate_external_read_bandwidth());
    let kss_entries = workload.kss_tables.as_bytes() / 16;
    let retrieval = kss_io.max(cpu.stream_merge_time(kss_entries + workload.intersecting_kmers))
        * samples as f64;

    b.push_phase("k-mer extraction (all samples)", extraction);
    b.push_phase("sorting + k-mer exclusion", sorting);
    b.push_phase("intersection finding (per group)", intersection);
    b.push_phase("taxid retrieval (per sample)", retrieval);
    b.external_io = workload.metalign_db * groups as u64 + workload.kss_tables * samples as u64;
    b.internal_io = b.external_io;
    b.host_busy = extraction + sorting + intersection + retrieval;
    b.ssd_busy = db_io * groups as f64;
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::sample::Diversity;
    use megis_host::accelerators::SortingAccelerator;
    use megis_ssd::config::SsdConfig;
    use megis_ssd::timing::ByteSize;
    use megis_tools::kraken::KrakenTimingModel;
    use megis_tools::metalign::MetalignTimingModel;

    fn reference(ssd: SsdConfig) -> SystemConfig {
        SystemConfig::reference(ssd)
    }

    #[test]
    fn ms_beats_both_baselines_on_both_ssds() {
        for ssd in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
            let system = reference(ssd);
            for d in Diversity::ALL {
                let w = WorkloadSpec::cami(d);
                let ms = MegisTimingModel::full().presence_breakdown(&system, &w);
                let p_opt = KrakenTimingModel.presence_breakdown(&system, &w);
                let a_opt = MetalignTimingModel::a_opt().presence_breakdown(&system, &w);
                let vs_p = ms.speedup_over(&p_opt);
                let vs_a = ms.speedup_over(&a_opt);
                assert!(
                    vs_p > 2.0 && vs_p < 10.0,
                    "{}: speedup vs P-Opt {vs_p}",
                    w.label
                );
                assert!(
                    vs_a > 5.0 && vs_a < 25.0,
                    "{}: speedup vs A-Opt {vs_a}",
                    w.label
                );
            }
        }
    }

    #[test]
    fn variant_ordering_matches_fig12() {
        // MS ≥ MS-CC, MS ≥ MS-NOL, and every ISP variant beats Ext-MS.
        for ssd in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
            let system = reference(ssd);
            let w = WorkloadSpec::cami(Diversity::Medium);
            let time = |v: MegisVariant| {
                MegisTimingModel::new(v)
                    .presence_breakdown(&system, &w)
                    .total()
            };
            let full = time(MegisVariant::Full);
            assert!(full <= time(MegisVariant::ControllerCores));
            assert!(full < time(MegisVariant::NoOverlap));
            assert!(time(MegisVariant::ControllerCores) < time(MegisVariant::OutsideSsd));
        }
    }

    #[test]
    fn controller_cores_hurt_more_with_more_internal_bandwidth() {
        // §6.1: the accelerator advantage over MS-CC grows with internal
        // bandwidth (43% on SSD-P vs 9% on SSD-C).
        let w = WorkloadSpec::cami(Diversity::Medium);
        let gap = |ssd: SsdConfig| {
            let system = reference(ssd);
            let full = MegisTimingModel::full()
                .presence_breakdown(&system, &w)
                .total();
            let cc = MegisTimingModel::new(MegisVariant::ControllerCores)
                .presence_breakdown(&system, &w)
                .total();
            cc / full
        };
        assert!(gap(SsdConfig::ssd_p()) > gap(SsdConfig::ssd_c()));
    }

    #[test]
    fn speedup_grows_with_diversity() {
        // §6.1: more diverse samples do more sketch lookups in the baseline,
        // which MegIS's KSS handles in a single pass.
        let system = reference(SsdConfig::ssd_c());
        let speedup = |d: Diversity| {
            let w = WorkloadSpec::cami(d);
            let ms = MegisTimingModel::full().presence_breakdown(&system, &w);
            let a = MetalignTimingModel::a_opt().presence_breakdown(&system, &w);
            ms.speedup_over(&a)
        };
        assert!(speedup(Diversity::High) > speedup(Diversity::Low));
    }

    #[test]
    fn small_dram_increases_advantage_over_p_opt() {
        // Fig. 16: with 32 GB of DRAM, P-Opt chunks its database and MegIS's
        // bucketing avoids page swaps, so the speedup grows substantially.
        let w = WorkloadSpec::cami(Diversity::Medium);
        let speedup_at = |gb: f64| {
            let system = reference(SsdConfig::ssd_c()).with_dram_capacity(ByteSize::from_gb(gb));
            let ms = MegisTimingModel::full().presence_breakdown(&system, &w);
            let p = KrakenTimingModel.presence_breakdown(&system, &w);
            ms.speedup_over(&p)
        };
        assert!(speedup_at(32.0) > 2.0 * speedup_at(1000.0));
    }

    #[test]
    fn more_ssds_keep_large_speedup() {
        // Fig. 15: MegIS keeps a large speedup as SSDs (and thus both
        // internal and external bandwidth) scale, eventually limited by
        // host-side sorting.
        let w = WorkloadSpec::cami(Diversity::Medium);
        for count in [1usize, 2, 4, 8] {
            let system = reference(SsdConfig::ssd_c()).with_ssd_count(count);
            let ms = MegisTimingModel::full().presence_breakdown(&system, &w);
            let p = KrakenTimingModel.presence_breakdown(&system, &w);
            assert!(ms.speedup_over(&p) > 3.0, "count {count}");
        }
    }

    #[test]
    fn more_channels_speed_up_isp_steps() {
        let w = WorkloadSpec::cami(Diversity::Medium);
        let total_at = |channels: u32| {
            let system = reference(SsdConfig::ssd_c()).with_ssd_channels(channels);
            MegisTimingModel::full()
                .presence_breakdown(&system, &w)
                .phase("intersection finding")
                .unwrap()
        };
        assert!(total_at(16) < total_at(8));
        assert!(total_at(8) < total_at(4));
    }

    #[test]
    fn abundance_in_storage_index_beats_software_index() {
        // Fig. 20: MS vs MS-NIdx.
        for ssd in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
            let system = reference(ssd);
            let w = WorkloadSpec::cami(Diversity::Medium);
            let ms = MegisTimingModel::full().abundance_breakdown(&system, &w);
            let nidx =
                MegisTimingModel::without_in_storage_index().abundance_breakdown(&system, &w);
            assert!(ms.total() < nidx.total());
        }
    }

    #[test]
    fn multi_sample_pipelining_beats_independent_runs() {
        // Fig. 21: buffering k-mers from several samples amortizes the
        // database stream.
        let system = reference(SsdConfig::ssd_c())
            .with_dram_capacity(ByteSize::from_gb(256.0))
            .with_sorting_accelerator(SortingAccelerator::default());
        let w = WorkloadSpec::cami(Diversity::Medium);
        let single = MegisTimingModel::full().presence_breakdown(&system, &w);
        let independent = baseline_multi_sample(&single, 16);
        let pipelined = MegisTimingModel::full().multi_sample_breakdown(&system, &w, 16);
        assert!(pipelined.total() < independent.total());
        let sw = software_multi_sample(&system, &w, 16);
        assert!(pipelined.total() < sw.total());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let system = reference(SsdConfig::ssd_c());
        let w = WorkloadSpec::cami(Diversity::Low);
        MegisTimingModel::full().multi_sample_breakdown(&system, &w, 0);
    }
}
