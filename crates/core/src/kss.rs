//! K-mer Sketch Streaming (KSS) — MegIS's taxID-retrieval data structure.
//!
//! Retrieving taxIDs for variable-sized k-mers with a ternary search tree
//! requires up to `k_max` pointer-chasing operations per lookup on a structure
//! that may not fit in the SSD's internal DRAM — a poor fit for in-storage
//! processing. KSS (§4.3.2, Fig. 7(c)) trades space for streamability:
//!
//! * for k = k_max, a lexicographically sorted table of sketch k-mers and
//!   their taxIDs (like the flat representation),
//! * for each smaller k, only the taxID lists are stored, *without* the k-mer
//!   itself: the prefixes of the sorted k_max-mers regenerate the smaller
//!   k-mers on the fly (MegIS's Index Generator emits a new entry whenever the
//!   prefix of consecutive k_max-mers changes).
//!
//! The result is larger than the ternary tree but strictly streaming: taxID
//! retrieval is a single sorted-merge pass over the intersecting k-mers and
//! the KSS tables, which is exactly what the per-channel Intersect units can
//! do at flash bandwidth.

use std::collections::HashMap;

use megis_genomics::kmer::Kmer;
use megis_genomics::sketch::SketchDatabase;
use megis_genomics::taxonomy::TaxId;
use megis_ssd::timing::ByteSize;

/// One KSS table for a single k size smaller than k_max: the prefix values
/// (implicit on storage — regenerated from the k_max table) and the taxID
/// lists that are *not* already attributed to a larger k-mer with the same
/// prefix.
#[derive(Debug, Clone, Default)]
struct PrefixTable {
    k: usize,
    /// Sorted by prefix k-mer. The k-mer column exists only in memory to keep
    /// the functional implementation simple; [`KssTables::size_bytes`] charges
    /// only the taxID payload for it, matching the on-storage format.
    entries: Vec<(Kmer, Vec<TaxId>)>,
}

/// The full KSS structure.
#[derive(Debug, Clone, Default)]
pub struct KssTables {
    k_max: usize,
    /// Sorted k_max-mer sketch table: (k-mer, taxa).
    kmax_table: Vec<(Kmer, Vec<TaxId>)>,
    /// One prefix table per smaller k, largest k first.
    prefix_tables: Vec<PrefixTable>,
}

impl KssTables {
    /// Builds the KSS tables from the logical sketch content.
    pub fn build(sketches: &SketchDatabase) -> KssTables {
        let Some(k_max) = sketches.k_max() else {
            return KssTables::default();
        };
        let kmax_table: Vec<(Kmer, Vec<TaxId>)> = sketches
            .table(k_max)
            .map(|t| t.to_vec())
            .unwrap_or_default();

        let mut prefix_tables = Vec::new();
        for k in sketches.k_sizes() {
            if k == k_max {
                continue;
            }
            let table = sketches.table(k).unwrap_or(&[]);
            // Store, for each smaller k-mer, only the taxa not already
            // attributed to a k_max-mer sharing that prefix.
            let mut entries = Vec::with_capacity(table.len());
            for (kmer, taxa) in table {
                let attributed = KssTables::taxa_of_kmax_with_prefix(&kmax_table, *kmer);
                let remaining: Vec<TaxId> = taxa
                    .iter()
                    .copied()
                    .filter(|t| !attributed.contains(t))
                    .collect();
                entries.push((*kmer, remaining));
            }
            prefix_tables.push(PrefixTable { k, entries });
        }
        KssTables {
            k_max,
            kmax_table,
            prefix_tables,
        }
    }

    fn taxa_of_kmax_with_prefix(kmax_table: &[(Kmer, Vec<TaxId>)], prefix: Kmer) -> Vec<TaxId> {
        // All k_max-mers whose length-k prefix equals `prefix` form a
        // contiguous run in the sorted table.
        let start = kmax_table.partition_point(|(k, _)| k.prefix(prefix.k()) < prefix);
        let mut taxa = Vec::new();
        for (k, t) in &kmax_table[start..] {
            if k.prefix(prefix.k()) != prefix {
                break;
            }
            taxa.extend_from_slice(t);
        }
        taxa.sort();
        taxa.dedup();
        taxa
    }

    /// The largest k size.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// Number of entries in the k_max table.
    pub fn kmax_entries(&self) -> usize {
        self.kmax_table.len()
    }

    /// Returns `true` if the structure holds no sketch k-mers.
    pub fn is_empty(&self) -> bool {
        self.kmax_table.is_empty()
    }

    /// On-storage size of the KSS tables: the k_max table stores explicit
    /// 2-bit k-mers plus 4-byte taxIDs; the smaller-k tables store only their
    /// taxID lists plus a 4-byte run-length/offset word per entry.
    pub fn size_bytes(&self) -> ByteSize {
        let kmax: u64 = self
            .kmax_table
            .iter()
            .map(|(k, taxa)| (k.encoded_bytes() + 4 * taxa.len()) as u64)
            .sum();
        let smaller: u64 = self
            .prefix_tables
            .iter()
            .map(|t| {
                t.entries
                    .iter()
                    .map(|(_, taxa)| 4 + 4 * taxa.len() as u64)
                    .sum::<u64>()
            })
            .sum();
        ByteSize::from_bytes(kmax + smaller)
    }

    /// Retrieves the taxa matched by one query k_max-mer: the exact k_max
    /// match plus prefix matches at every smaller k (deduplicated), exactly
    /// like the flat-table and ternary-tree lookups — which is what makes
    /// MegIS's accuracy identical to the A-Opt baseline's.
    pub fn lookup(&self, query: Kmer) -> Vec<TaxId> {
        let mut taxa = Vec::new();
        if let Ok(i) = self.kmax_table.binary_search_by(|(k, _)| k.cmp(&query)) {
            taxa.extend_from_slice(&self.kmax_table[i].1);
        }
        for table in &self.prefix_tables {
            if table.k > query.k() {
                continue;
            }
            let prefix = query.prefix(table.k);
            if let Ok(i) = table.entries.binary_search_by(|(k, _)| k.cmp(&prefix)) {
                // The stored entry holds only the taxa *not* attributed to a
                // k_max-mer sharing this prefix; the attributed ones are
                // recovered from the k_max table during the same streaming
                // pass (the Index Generator walks that contiguous run).
                // Together they reproduce exactly the taxa the baseline's
                // sketch lookup returns for this prefix.
                taxa.extend_from_slice(&table.entries[i].1);
                taxa.extend(KssTables::taxa_of_kmax_with_prefix(
                    &self.kmax_table,
                    prefix,
                ));
            }
        }
        taxa.sort();
        taxa.dedup();
        taxa
    }

    /// Streaming taxID retrieval over a *sorted* list of intersecting query
    /// k-mers: one merge pass per table, mirroring the in-SSD dataflow
    /// (consecutive queries sharing a prefix reuse the previous entry instead
    /// of a new lookup — the Index Generator optimization). Returns per-taxon
    /// support counts.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `sorted_queries` is not sorted.
    pub fn stream_retrieve(&self, sorted_queries: &[Kmer]) -> HashMap<TaxId, u32> {
        debug_assert!(sorted_queries.windows(2).all(|w| w[0] <= w[1]));
        let mut support: HashMap<TaxId, u32> = HashMap::new();
        let mut previous: Option<(Kmer, Vec<TaxId>)> = None;
        for query in sorted_queries {
            let taxa = match &previous {
                Some((prev, taxa)) if prev == query => taxa.clone(),
                _ => {
                    let taxa = self.lookup(*query);
                    previous = Some((*query, taxa.clone()));
                    taxa
                }
            };
            for t in taxa {
                *support.entry(t).or_insert(0) += 1;
            }
        }
        support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::reference::ReferenceCollection;
    use megis_genomics::sketch::SketchConfig;

    fn sketches() -> SketchDatabase {
        let refs = ReferenceCollection::synthetic(6, 700, 21);
        SketchDatabase::build(&refs, SketchConfig::small())
    }

    #[test]
    fn kss_lookup_matches_flat_table_lookup() {
        let db = sketches();
        let kss = KssTables::build(&db);
        assert!(!kss.is_empty());
        let kmax = db.k_max().unwrap();
        for (kmer, _) in db.table(kmax).unwrap().iter().take(60) {
            assert_eq!(
                kss.lookup(*kmer),
                db.lookup_with_prefixes(*kmer),
                "KSS and flat lookups disagree for {kmer}"
            );
        }
    }

    #[test]
    fn kss_matches_ternary_tree_support() {
        use megis_tools::ternary::TernarySketchTree;
        let db = sketches();
        let kss = KssTables::build(&db);
        let tree = TernarySketchTree::build(&db);
        let kmax = db.k_max().unwrap();
        let queries: Vec<Kmer> = db.table(kmax).unwrap().iter().map(|(k, _)| *k).collect();
        let kss_support = kss.stream_retrieve(&queries);
        let mut tree_support: HashMap<TaxId, u32> = HashMap::new();
        for q in &queries {
            for t in tree.lookup_with_prefixes(*q) {
                *tree_support.entry(t).or_insert(0) += 1;
            }
        }
        assert_eq!(kss_support, tree_support);
    }

    #[test]
    fn missing_query_yields_prefix_only_matches() {
        let db = sketches();
        let kss = KssTables::build(&db);
        let kmax = db.k_max().unwrap();
        let query = Kmer::from_ascii(&vec![b'A'; kmax]).unwrap();
        assert_eq!(kss.lookup(query), db.lookup_with_prefixes(query));
    }

    #[test]
    fn size_is_larger_than_kmax_payload_only() {
        let db = sketches();
        let kss = KssTables::build(&db);
        assert!(kss.size_bytes().as_bytes() > 0);
        // The k_max table dominates; smaller tables add only taxID payloads.
        assert!(kss.size_bytes().as_bytes() < db.flat_table_bytes() * 2);
    }

    #[test]
    fn stream_retrieve_counts_duplicates() {
        let db = sketches();
        let kss = KssTables::build(&db);
        let kmax = db.k_max().unwrap();
        let (kmer, taxa) = &db.table(kmax).unwrap()[0];
        let support = kss.stream_retrieve(&[*kmer, *kmer, *kmer]);
        for t in taxa {
            assert_eq!(support.get(t), Some(&3));
        }
    }

    #[test]
    fn empty_sketch_builds_empty_kss() {
        let kss = KssTables::build(&SketchDatabase::default());
        assert!(kss.is_empty());
        assert_eq!(kss.size_bytes(), ByteSize::ZERO);
        let q = Kmer::from_ascii(b"ACGTACGTACGTACGTACGTACGTACGTACG").unwrap();
        assert!(kss.lookup(q).is_empty());
    }
}
