//! The functional end-to-end MegIS analyzer.
//!
//! [`MegisAnalyzer`] wires Steps 1–3 together over in-memory synthetic data:
//! it owns the sorted k-mer database, the sketch content, the KSS tables, and
//! the per-species mapping indexes, and analyzes samples with exactly the same
//! results as the accuracy-optimized baseline (same databases, same
//! thresholds) — the property the paper's accuracy claim rests on. The
//! performance side (what runs where, and how long it takes on paper-scale
//! workloads) is modeled separately in [`crate::pipeline`].

use megis_genomics::database::{ReferenceIndex, SortedKmerDatabase};
use megis_genomics::profile::{AbundanceProfile, PresenceResult};
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::sample::Sample;
use megis_genomics::sketch::SketchDatabase;
use megis_tools::kmc::ExclusionPolicy;

use crate::config::MegisConfig;
use crate::kss::KssTables;
use crate::{step1, step2, step3};

/// Result of one end-to-end functional analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MegisOutput {
    /// Species reported present (Step 2).
    pub presence: PresenceResult,
    /// Mapping-based abundance estimate (Step 3).
    pub abundance: AbundanceProfile,
    /// Number of query k-mers that intersected the database.
    pub intersecting_kmers: u64,
    /// Number of distinct query k-mers sent to Step 2.
    pub selected_kmers: u64,
    /// Number of reads that mapped during abundance estimation.
    pub mapped_reads: u64,
}

/// The functional MegIS analyzer.
#[derive(Debug, Clone)]
pub struct MegisAnalyzer {
    config: MegisConfig,
    database: SortedKmerDatabase,
    sketches: SketchDatabase,
    kss: KssTables,
    reference_indexes: Vec<ReferenceIndex>,
    exclusion: ExclusionPolicy,
}

impl MegisAnalyzer {
    /// Builds all databases (sorted k-mer database, sketches, KSS tables, and
    /// per-species mapping indexes) from a reference collection.
    pub fn build(references: &ReferenceCollection, config: MegisConfig) -> MegisAnalyzer {
        let database = SortedKmerDatabase::build(references, config.k());
        let sketches = SketchDatabase::build(references, config.sketch);
        let kss = KssTables::build(&sketches);
        let reference_indexes = references
            .genomes()
            .iter()
            .map(|g| ReferenceIndex::build(g, config.mapping_k))
            .collect();
        MegisAnalyzer {
            config,
            database,
            sketches,
            kss,
            reference_indexes,
            exclusion: ExclusionPolicy::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MegisConfig {
        &self.config
    }

    /// The sorted k-mer database.
    pub fn database(&self) -> &SortedKmerDatabase {
        &self.database
    }

    /// The KSS tables.
    pub fn kss(&self) -> &KssTables {
        &self.kss
    }

    /// The logical sketch content.
    pub fn sketches(&self) -> &SketchDatabase {
        &self.sketches
    }

    /// The per-species read-mapping indexes (one per reference genome, in
    /// reference-collection order).
    pub fn reference_indexes(&self) -> &[ReferenceIndex] {
        &self.reference_indexes
    }

    /// The k-mer exclusion policy applied in Step 1.
    pub fn exclusion(&self) -> ExclusionPolicy {
        self.exclusion
    }

    /// Sets the k-mer exclusion policy applied in Step 1.
    pub fn set_exclusion(&mut self, exclusion: ExclusionPolicy) {
        self.exclusion = exclusion;
    }

    // ----- step-level entry points -------------------------------------------
    //
    // The batch scheduler (`megis-sched`) runs the pipeline steps out of band:
    // Step 1 of one sample on host worker threads while Steps 2–3 of another
    // sample execute on the (simulated) SSDs, with intersection finding
    // sharded across devices. These entry points expose each step with
    // exactly the semantics `analyze` composes, so any such schedule produces
    // byte-identical results.

    /// Runs Step 1 (host-side query preparation) for one sample.
    pub fn run_step1(&self, sample: &Sample) -> step1::Step1Output {
        step1::run(sample.reads(), &self.config, self.exclusion)
    }

    /// Runs Step 2 (in-SSD candidate finding) over a Step 1 output, against
    /// the analyzer's own (unsharded) database.
    pub fn run_step2(&self, step1: &step1::Step1Output) -> step2::Step2Output {
        step2::run(
            step1,
            &self.database,
            &self.kss,
            &self.sketches,
            &self.config,
        )
    }

    /// Completes Step 2 from an intersection computed out-of-band (e.g. the
    /// shard-order merge of per-SSD intersections).
    pub fn step2_from_intersection(
        &self,
        intersecting_kmers: Vec<megis_genomics::kmer::Kmer>,
    ) -> step2::Step2Output {
        step2::from_intersection(intersecting_kmers, &self.kss, &self.sketches, &self.config)
    }

    /// Positions (within [`MegisAnalyzer::reference_indexes`]) of the
    /// candidate species reported present, in index order — which is
    /// reference-collection order, i.e. ascending taxid. This is the shared
    /// definition of "the candidate list" for Step 3: the sequential path,
    /// the partitioned path, and the scheduler's per-device commands all
    /// derive from it, so they merge candidates in the same order.
    pub fn candidate_positions(&self, presence: &PresenceResult) -> Vec<usize> {
        self.reference_indexes
            .iter()
            .enumerate()
            .filter(|(_, idx)| presence.contains(idx.taxid()))
            .map(|(position, _)| position)
            .collect()
    }

    /// The candidate species' read-mapping indexes, *borrowed* from the
    /// analyzer's memoized per-species indexes. Index construction is
    /// one-time offline work (§4.4): the analyzer builds every species'
    /// index once in [`MegisAnalyzer::build`] and every sample's Step 3
    /// borrows the relevant subset — no per-sample rebuild, no per-sample
    /// copy (a regression test asserts the build count stays flat across
    /// analyses).
    pub fn candidate_indexes(&self, presence: &PresenceResult) -> Vec<&ReferenceIndex> {
        self.candidate_positions(presence)
            .into_iter()
            .map(|position| &self.reference_indexes[position])
            .collect()
    }

    /// Runs Step 3 (unified index generation + read mapping) for the
    /// candidate species reported present: the single-device case of
    /// [`MegisAnalyzer::run_step3_partitioned`], composed through the same
    /// partition → map → reduce path the sharded scheduler drives (the
    /// sequential [`step3::run`] is the oracle both are verified against).
    pub fn run_step3(&self, sample: &Sample, presence: &PresenceResult) -> step3::Step3Output {
        self.run_step3_partitioned(sample, presence, 1)
    }

    /// Runs Step 3 partitioned across `parts` devices: the candidate list
    /// splits into contiguous taxid ranges, each range merges into a
    /// partial unified index and maps all reads, and the reduce recombines
    /// — byte-identical to the sequential path for every `parts`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn run_step3_partitioned(
        &self,
        sample: &Sample,
        presence: &PresenceResult,
        parts: usize,
    ) -> step3::Step3Output {
        let candidates = self.candidate_indexes(presence);
        step3::run_partitioned(sample.reads(), &candidates, parts, self.config.mapping_k)
    }

    /// Assembles the end-to-end output from per-step results.
    pub fn assemble_output(
        step1: &step1::Step1Output,
        step2: &step2::Step2Output,
        step3: step3::Step3Output,
    ) -> MegisOutput {
        MegisOutput {
            presence: step2.presence.clone(),
            abundance: step3.abundance,
            intersecting_kmers: step2.intersection_size() as u64,
            selected_kmers: step1.selected_kmers,
            mapped_reads: step3.mapped_reads,
        }
    }

    /// Runs presence/absence identification only (Steps 1–2).
    pub fn identify_presence(&self, sample: &Sample) -> MegisOutput {
        let step1 = self.run_step1(sample);
        let step2 = self.run_step2(&step1);
        MegisOutput {
            presence: step2.presence.clone(),
            abundance: AbundanceProfile::new(),
            intersecting_kmers: step2.intersection_size() as u64,
            selected_kmers: step1.selected_kmers,
            mapped_reads: 0,
        }
    }

    /// Runs the full pipeline: presence identification followed by
    /// mapping-based abundance estimation (Steps 1–3).
    pub fn analyze(&self, sample: &Sample) -> MegisOutput {
        let step1 = self.run_step1(sample);
        let step2 = self.run_step2(&step1);
        let step3 = self.run_step3(sample, &step2.presence);
        MegisAnalyzer::assemble_output(&step1, &step2, step3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::metrics::{AbundanceError, ClassificationMetrics};
    use megis_genomics::sample::{CommunityConfig, Diversity};

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_reads(300)
            .with_database_species(16)
            .build(63)
    }

    #[test]
    fn presence_has_high_f1_against_truth() {
        let c = community();
        let analyzer = MegisAnalyzer::build(c.references(), MegisConfig::small());
        let out = analyzer.identify_presence(c.sample());
        let m = ClassificationMetrics::score(&out.presence, &c.truth_presence());
        assert!(m.recall() > 0.9, "recall {}", m.recall());
        assert!(m.f1() > 0.7, "f1 {}", m.f1());
        assert!(out.intersecting_kmers > 0);
        assert!(out.selected_kmers >= out.intersecting_kmers);
    }

    #[test]
    fn full_analysis_estimates_abundance() {
        let c = community();
        let analyzer = MegisAnalyzer::build(c.references(), MegisConfig::small());
        let out = analyzer.analyze(c.sample());
        assert!(!out.abundance.is_empty());
        assert!(out.mapped_reads > 0);
        let err = AbundanceError::score(&out.abundance, c.truth_profile());
        assert!(err.l1_norm < 0.8, "L1 error {}", err.l1_norm);
    }

    #[test]
    fn candidate_indexes_are_memoized_not_rebuilt_per_sample() {
        // Regression: index construction is one-time offline work (§4.4).
        // The analyzer builds one index per reference genome at
        // construction; analyzing samples afterwards must neither rebuild
        // nor clone them — the thread-local build counter stays flat across
        // repeated analyses and partitioned Step 3 runs.
        let c = community();
        let before = ReferenceIndex::builds_on_this_thread();
        let analyzer = MegisAnalyzer::build(c.references(), MegisConfig::small());
        let after_build = ReferenceIndex::builds_on_this_thread();
        assert_eq!(
            after_build - before,
            c.references().len() as u64,
            "build constructs one index per genome"
        );
        let out = analyzer.analyze(c.sample());
        assert!(out.mapped_reads > 0);
        for parts in [1usize, 2, 5] {
            let _ = analyzer.run_step3_partitioned(c.sample(), &out.presence, parts);
        }
        let _ = analyzer.analyze(c.sample());
        assert_eq!(
            ReferenceIndex::builds_on_this_thread(),
            after_build,
            "analyses must borrow the memoized indexes, never rebuild them"
        );
        // The borrowed candidate list is the presence-filtered subset, in
        // ascending-taxid (collection) order.
        let candidates = analyzer.candidate_indexes(&out.presence);
        assert_eq!(candidates.len(), out.presence.len());
        assert!(candidates.windows(2).all(|w| w[0].taxid() < w[1].taxid()));
    }

    #[test]
    fn partitioned_step3_matches_sequential_for_any_part_count() {
        let c = community();
        let analyzer = MegisAnalyzer::build(c.references(), MegisConfig::small());
        let step1 = analyzer.run_step1(c.sample());
        let step2 = analyzer.run_step2(&step1);
        let candidates = analyzer.candidate_indexes(&step2.presence);
        let owned: Vec<ReferenceIndex> = candidates.iter().map(|c| (*c).clone()).collect();
        let oracle = crate::step3::run(c.sample().reads(), &owned, analyzer.config().mapping_k);
        for parts in 1..=9usize {
            let sharded = analyzer.run_step3_partitioned(c.sample(), &step2.presence, parts);
            assert_eq!(sharded, oracle, "{parts} parts diverged");
        }
        assert_eq!(analyzer.run_step3(c.sample(), &step2.presence), oracle);
    }

    #[test]
    fn exclusion_policy_is_respected() {
        let c = community();
        let mut analyzer = MegisAnalyzer::build(c.references(), MegisConfig::small());
        let baseline = analyzer.identify_presence(c.sample());
        analyzer.set_exclusion(ExclusionPolicy {
            min_count: 2,
            max_count: None,
        });
        let filtered = analyzer.identify_presence(c.sample());
        assert!(filtered.selected_kmers < baseline.selected_kmers);
    }
}
