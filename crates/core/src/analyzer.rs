//! The functional end-to-end MegIS analyzer.
//!
//! [`MegisAnalyzer`] wires Steps 1–3 together over in-memory synthetic data:
//! it owns the sorted k-mer database, the sketch content, the KSS tables, and
//! the per-species mapping indexes, and analyzes samples with exactly the same
//! results as the accuracy-optimized baseline (same databases, same
//! thresholds) — the property the paper's accuracy claim rests on. The
//! performance side (what runs where, and how long it takes on paper-scale
//! workloads) is modeled separately in [`crate::pipeline`].

use megis_genomics::database::{ReferenceIndex, SortedKmerDatabase};
use megis_genomics::profile::{AbundanceProfile, PresenceResult};
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::sample::Sample;
use megis_genomics::sketch::SketchDatabase;
use megis_tools::kmc::ExclusionPolicy;

use crate::config::MegisConfig;
use crate::kss::KssTables;
use crate::{step1, step2, step3};

/// Result of one end-to-end functional analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MegisOutput {
    /// Species reported present (Step 2).
    pub presence: PresenceResult,
    /// Mapping-based abundance estimate (Step 3).
    pub abundance: AbundanceProfile,
    /// Number of query k-mers that intersected the database.
    pub intersecting_kmers: u64,
    /// Number of distinct query k-mers sent to Step 2.
    pub selected_kmers: u64,
    /// Number of reads that mapped during abundance estimation.
    pub mapped_reads: u64,
}

/// The functional MegIS analyzer.
#[derive(Debug, Clone)]
pub struct MegisAnalyzer {
    config: MegisConfig,
    database: SortedKmerDatabase,
    sketches: SketchDatabase,
    kss: KssTables,
    reference_indexes: Vec<ReferenceIndex>,
    exclusion: ExclusionPolicy,
}

impl MegisAnalyzer {
    /// Builds all databases (sorted k-mer database, sketches, KSS tables, and
    /// per-species mapping indexes) from a reference collection.
    pub fn build(references: &ReferenceCollection, config: MegisConfig) -> MegisAnalyzer {
        let database = SortedKmerDatabase::build(references, config.k());
        let sketches = SketchDatabase::build(references, config.sketch);
        let kss = KssTables::build(&sketches);
        let reference_indexes = references
            .genomes()
            .iter()
            .map(|g| ReferenceIndex::build(g, config.mapping_k))
            .collect();
        MegisAnalyzer {
            config,
            database,
            sketches,
            kss,
            reference_indexes,
            exclusion: ExclusionPolicy::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MegisConfig {
        &self.config
    }

    /// The sorted k-mer database.
    pub fn database(&self) -> &SortedKmerDatabase {
        &self.database
    }

    /// The KSS tables.
    pub fn kss(&self) -> &KssTables {
        &self.kss
    }

    /// The logical sketch content.
    pub fn sketches(&self) -> &SketchDatabase {
        &self.sketches
    }

    /// The per-species read-mapping indexes (one per reference genome, in
    /// reference-collection order).
    pub fn reference_indexes(&self) -> &[ReferenceIndex] {
        &self.reference_indexes
    }

    /// The k-mer exclusion policy applied in Step 1.
    pub fn exclusion(&self) -> ExclusionPolicy {
        self.exclusion
    }

    /// Sets the k-mer exclusion policy applied in Step 1.
    pub fn set_exclusion(&mut self, exclusion: ExclusionPolicy) {
        self.exclusion = exclusion;
    }

    // ----- step-level entry points -------------------------------------------
    //
    // The batch scheduler (`megis-sched`) runs the pipeline steps out of band:
    // Step 1 of one sample on host worker threads while Steps 2–3 of another
    // sample execute on the (simulated) SSDs, with intersection finding
    // sharded across devices. These entry points expose each step with
    // exactly the semantics `analyze` composes, so any such schedule produces
    // byte-identical results.

    /// Runs Step 1 (host-side query preparation) for one sample.
    pub fn run_step1(&self, sample: &Sample) -> step1::Step1Output {
        step1::run(sample.reads(), &self.config, self.exclusion)
    }

    /// Runs Step 2 (in-SSD candidate finding) over a Step 1 output, against
    /// the analyzer's own (unsharded) database.
    pub fn run_step2(&self, step1: &step1::Step1Output) -> step2::Step2Output {
        step2::run(
            step1,
            &self.database,
            &self.kss,
            &self.sketches,
            &self.config,
        )
    }

    /// Completes Step 2 from an intersection computed out-of-band (e.g. the
    /// shard-order merge of per-SSD intersections).
    pub fn step2_from_intersection(
        &self,
        intersecting_kmers: Vec<megis_genomics::kmer::Kmer>,
    ) -> step2::Step2Output {
        step2::from_intersection(intersecting_kmers, &self.kss, &self.sketches, &self.config)
    }

    /// Runs Step 3 (unified index generation + read mapping) for the
    /// candidate species reported present.
    pub fn run_step3(&self, sample: &Sample, presence: &PresenceResult) -> step3::Step3Output {
        let candidate_indexes: Vec<ReferenceIndex> = self
            .reference_indexes
            .iter()
            .filter(|idx| presence.contains(idx.taxid()))
            .cloned()
            .collect();
        step3::run(sample.reads(), &candidate_indexes, self.config.mapping_k)
    }

    /// Assembles the end-to-end output from per-step results.
    pub fn assemble_output(
        step1: &step1::Step1Output,
        step2: &step2::Step2Output,
        step3: step3::Step3Output,
    ) -> MegisOutput {
        MegisOutput {
            presence: step2.presence.clone(),
            abundance: step3.abundance,
            intersecting_kmers: step2.intersection_size() as u64,
            selected_kmers: step1.selected_kmers,
            mapped_reads: step3.mapped_reads,
        }
    }

    /// Runs presence/absence identification only (Steps 1–2).
    pub fn identify_presence(&self, sample: &Sample) -> MegisOutput {
        let step1 = self.run_step1(sample);
        let step2 = self.run_step2(&step1);
        MegisOutput {
            presence: step2.presence.clone(),
            abundance: AbundanceProfile::new(),
            intersecting_kmers: step2.intersection_size() as u64,
            selected_kmers: step1.selected_kmers,
            mapped_reads: 0,
        }
    }

    /// Runs the full pipeline: presence identification followed by
    /// mapping-based abundance estimation (Steps 1–3).
    pub fn analyze(&self, sample: &Sample) -> MegisOutput {
        let step1 = self.run_step1(sample);
        let step2 = self.run_step2(&step1);
        let step3 = self.run_step3(sample, &step2.presence);
        MegisAnalyzer::assemble_output(&step1, &step2, step3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::metrics::{AbundanceError, ClassificationMetrics};
    use megis_genomics::sample::{CommunityConfig, Diversity};

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_reads(300)
            .with_database_species(16)
            .build(63)
    }

    #[test]
    fn presence_has_high_f1_against_truth() {
        let c = community();
        let analyzer = MegisAnalyzer::build(c.references(), MegisConfig::small());
        let out = analyzer.identify_presence(c.sample());
        let m = ClassificationMetrics::score(&out.presence, &c.truth_presence());
        assert!(m.recall() > 0.9, "recall {}", m.recall());
        assert!(m.f1() > 0.7, "f1 {}", m.f1());
        assert!(out.intersecting_kmers > 0);
        assert!(out.selected_kmers >= out.intersecting_kmers);
    }

    #[test]
    fn full_analysis_estimates_abundance() {
        let c = community();
        let analyzer = MegisAnalyzer::build(c.references(), MegisConfig::small());
        let out = analyzer.analyze(c.sample());
        assert!(!out.abundance.is_empty());
        assert!(out.mapped_reads > 0);
        let err = AbundanceError::score(&out.abundance, c.truth_profile());
        assert!(err.l1_norm < 0.8, "L1 error {}", err.l1_norm);
    }

    #[test]
    fn exclusion_policy_is_respected() {
        let c = community();
        let mut analyzer = MegisAnalyzer::build(c.references(), MegisConfig::small());
        let baseline = analyzer.identify_presence(c.sample());
        analyzer.set_exclusion(ExclusionPolicy {
            min_count: 2,
            max_count: None,
        });
        let filtered = analyzer.identify_presence(c.sample());
        assert!(filtered.selected_kmers < baseline.selected_kmers);
    }
}
