//! Step 3 — abundance estimation support (§4.4).
//!
//! For applications that need relative abundances, MegIS prepares the data a
//! read mapper needs: a *unified* reference index over the candidate species
//! identified in Step 2, generated inside the SSD by sequentially merging the
//! candidate species' per-species indexes (Fig. 9). The unified index and the
//! reads are then handed to a mapping accelerator (or the host) and the
//! per-species read counts become the abundance profile. Lightweight
//! statistical estimators can instead run directly on Step 2's output.

use std::collections::HashMap;

use megis_genomics::database::{ReferenceIndex, UnifiedReferenceIndex};
use megis_genomics::profile::{AbundanceProfile, PresenceResult};
use megis_genomics::read::ReadSet;
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::taxonomy::TaxId;

/// Output of Step 3.
#[derive(Debug, Clone, Default)]
pub struct Step3Output {
    /// The unified index generated for the candidate species.
    pub unified_index: UnifiedReferenceIndex,
    /// Mapping-based abundance estimate.
    pub abundance: AbundanceProfile,
    /// Number of reads that mapped to some candidate species.
    pub mapped_reads: u64,
}

/// Builds per-species reference indexes for the given candidates.
///
/// Index construction for individual species is a one-time offline task
/// (§4.4); this helper exists so tests and examples can produce them from a
/// synthetic reference collection.
pub fn build_candidate_indexes(
    references: &ReferenceCollection,
    candidates: &PresenceResult,
    seed_k: usize,
) -> Vec<ReferenceIndex> {
    references
        .genomes()
        .iter()
        .filter(|g| candidates.contains(g.taxid()))
        .map(|g| ReferenceIndex::build(g, seed_k))
        .collect()
}

/// Generates the unified reference index over the candidate species
/// (the in-SSD merge of Fig. 9).
pub fn generate_unified_index(candidate_indexes: &[ReferenceIndex]) -> UnifiedReferenceIndex {
    UnifiedReferenceIndex::merge(candidate_indexes)
}

/// Runs Step 3: unified index generation followed by read mapping.
pub fn run(reads: &ReadSet, candidate_indexes: &[ReferenceIndex], mapping_k: usize) -> Step3Output {
    let unified_index = generate_unified_index(candidate_indexes);
    let mut counts: HashMap<TaxId, u64> = HashMap::new();
    let mut mapped_reads = 0;
    for read in reads.iter() {
        if let Some(taxid) = unified_index.map_read(read, mapping_k) {
            *counts.entry(taxid).or_insert(0) += 1;
            mapped_reads += 1;
        }
    }
    Step3Output {
        unified_index,
        abundance: AbundanceProfile::from_counts(counts),
        mapped_reads,
    }
}

/// Lightweight statistical abundance estimation directly from sketch-match
/// support counts (the alternative integration path of §4.4 for tools that do
/// not require read mapping).
pub fn statistical_abundance(support: &HashMap<TaxId, u32>) -> AbundanceProfile {
    AbundanceProfile::from_counts(support.iter().map(|(t, c)| (*t, *c as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::metrics::AbundanceError;
    use megis_genomics::sample::{CommunityConfig, Diversity};

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_reads(400)
            .with_species(4)
            .with_database_species(16)
            .build(55)
    }

    #[test]
    fn unified_index_covers_all_candidates() {
        let c = community();
        let truth = c.truth_presence();
        let indexes = build_candidate_indexes(c.references(), &truth, 15);
        assert_eq!(indexes.len(), truth.len());
        let unified = generate_unified_index(&indexes);
        assert_eq!(unified.offsets().len(), truth.len());
    }

    #[test]
    fn mapping_based_abundance_tracks_truth() {
        let c = community();
        let truth = c.truth_presence();
        let indexes = build_candidate_indexes(c.references(), &truth, 15);
        let out = run(c.sample().reads(), &indexes, 15);
        assert!(out.mapped_reads > (c.sample().len() as u64) / 2);
        let err = AbundanceError::score(&out.abundance, c.truth_profile());
        assert!(err.l1_norm < 0.6, "L1 error {}", err.l1_norm);
    }

    #[test]
    fn statistical_abundance_normalizes_support() {
        let mut support = HashMap::new();
        support.insert(TaxId(1), 30u32);
        support.insert(TaxId(2), 10u32);
        let profile = statistical_abundance(&support);
        assert!((profile.abundance(TaxId(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_candidates_give_empty_output() {
        let c = community();
        let out = run(c.sample().reads(), &[], 15);
        assert!(out.abundance.is_empty());
        assert_eq!(out.mapped_reads, 0);
    }
}
