//! Step 3 — abundance estimation support (§4.4), as cost-aware partition →
//! map → incremental reduce over the candidate species.
//!
//! For applications that need relative abundances, MegIS prepares the data a
//! read mapper needs: a *unified* reference index over the candidate species
//! identified in Step 2, generated inside the SSD by sequentially merging the
//! candidate species' per-species indexes (Fig. 9), then handed — together
//! with the reads — to a mapping accelerator. On a device array the same
//! stage shards: the candidate list is split into contiguous ranges of
//! near-equal *modeled work* ([`partition_candidates`], cutting the
//! ascending-taxid candidate order at the crossings of a per-candidate cost
//! prefix sum — [`candidate_cost`]: index stream bytes plus expected mapping
//! work — rather than at equal candidate counts, because candidate index
//! sizes are skewed and an equal-count split lets one oversized range gate
//! the whole array), each device merges its range into a
//! [`PartialUnifiedIndex`] and maps every read against it ([`run_partial`]),
//! and a reduce step recombines the partial indexes byte-identically,
//! resolves reads that hit candidates on several devices by the same
//! best-hit rule as [`UnifiedReferenceIndex::map_read`], and accumulates the
//! abundance profile. The reduce is *incremental* ([`IncrementalReduce`]):
//! partials fold in as they arrive — consecutive partial indexes through
//! [`PartialUnifiedIndex::absorb`], per-read best hits through a commutative
//! maximum — so a completer never barriers on the full partial set; the
//! batch-shaped [`reduce`] is the same fold driven in one call.
//!
//! The decomposition is *exact*, not approximate:
//!
//! * the folded unified index equals the one-pass merge
//!   ([`PartialUnifiedIndex::absorb`] is the pairwise form of
//!   [`UnifiedReferenceIndex::merge_partials`]; offsets and location orders
//!   are preserved because the ranges are contiguous and consecutive),
//! * a candidate lives on exactly one device, so per-device vote counts are
//!   global vote counts and the max-of-maxes under `(votes,
//!   smallest-taxid)` — an order-insensitive fold — is the global best hit,
//!   with the [`MIN_MAPPING_VOTES`] threshold applied to the winner when the
//!   reduce finishes,
//! * abundance counts group by a deterministic sort + run-length pass
//!   ([`AbundanceAccumulator`]).
//!
//! [`run`] is the sequential oracle (one merge, one mapper): the seeded
//! property suites assert that partition → [`run_partial`] → [`reduce`] at
//! any shard count reproduces it byte for byte, and that the cost-aware cuts
//! bound every part's modeled cost by `total/parts` plus one candidate.
//! Lightweight statistical estimators ([`statistical_abundance`]) can
//! instead run directly on Step 2's output.

use std::collections::HashMap;
use std::ops::Range;

use megis_genomics::database::{
    PartialUnifiedIndex, ReferenceIndex, UnifiedReferenceIndex, MIN_MAPPING_VOTES,
};
use megis_genomics::profile::{AbundanceAccumulator, AbundanceProfile, PresenceResult};
use megis_genomics::read::ReadSet;
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::taxonomy::TaxId;

/// Output of Step 3.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Step3Output {
    /// The unified index generated for the candidate species.
    pub unified_index: UnifiedReferenceIndex,
    /// Mapping-based abundance estimate.
    pub abundance: AbundanceProfile,
    /// Number of reads that mapped to some candidate species.
    pub mapped_reads: u64,
}

/// One contiguous range of the candidate list assigned to a device for
/// partitioned Step 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidatePart {
    /// The range of candidate positions (indices into the candidate list).
    pub range: Range<usize>,
    /// Concatenated-reference-space offset where the range begins: the sum
    /// of the genome lengths of every earlier candidate.
    pub base_offset: u64,
    /// Modeled work of the range: the sum of [`candidate_cost`] over its
    /// candidates. The scheduler uses it to make simulated device service
    /// time proportional to assigned work, and tests bound the spread
    /// across parts.
    pub cost: u64,
}

impl CandidatePart {
    /// Returns `true` if the part covers no candidates (a padding part for
    /// devices beyond the candidate count).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// One read's best-supported hit within one candidate partition, before the
/// mapping-vote threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialReadHit {
    /// Index of the read within the sample's read set.
    pub read: usize,
    /// The partition's best-supported candidate for the read.
    pub taxid: TaxId,
    /// Seed votes supporting it (equal to the *global* vote count, since a
    /// candidate lives in exactly one partition).
    pub votes: u32,
}

/// Per-device output of partitioned Step 3: the partial unified index over
/// the device's candidate range plus the best hit of every read that hit
/// the range at all.
#[derive(Debug, Clone, Default)]
pub struct Step3Partial {
    /// The partial unified index merged on this device.
    pub index: PartialUnifiedIndex,
    /// Per-read best hits against this device's candidates, in read order.
    pub hits: Vec<PartialReadHit>,
}

/// Modeled Step 3 work of one candidate: the bytes its per-species index
/// streams off the device ([`ReferenceIndex::encoded_bytes`] — the dominant
/// in-SSD term of Fig. 9's sequential merge) plus the expected mapping work
/// it adds (proportional to its genome length: seed hits, and therefore
/// vote-counting work, scale with the indexed bases). Clamped to at least 1
/// so even a degenerate empty index advances the partition cuts.
pub fn candidate_cost(index: &ReferenceIndex) -> u64 {
    (index.encoded_bytes() + index.genome_len() as u64).max(1)
}

/// Splits a candidate list into `parts` contiguous ranges of near-equal
/// *modeled work* — the deterministic device assignment of partitioned
/// Step 3. Cut `i` (for `i = 1..parts`) falls on the candidate boundary
/// whose [`candidate_cost`] prefix sum is nearest `i·total/parts`, so every
/// part's cost is at most `total/parts` plus one candidate's cost — unlike
/// an equal-count split, which lets a run of oversized candidate indexes
/// pile onto one device and gate the reduce. The candidate list must be in
/// the order the unified index is merged in (ascending taxid for candidates
/// filtered from a reference collection), so each part is a contiguous
/// taxid range; parts beyond what the work supports come back empty (a
/// single dominant candidate can leave empty parts mid-sequence too —
/// consecutive cuts land on the same boundary).
///
/// Each part carries the `base_offset` its partial index starts at, so the
/// parts compose: `base_offset` of part `i + 1` equals part `i`'s base plus
/// its candidates' total genome length, and the recombined index is
/// byte-identical to the one-pass merge.
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn partition_candidates(candidates: &[&ReferenceIndex], parts: usize) -> Vec<CandidatePart> {
    assert!(parts > 0, "parts must be positive");
    let mut prefix = Vec::with_capacity(candidates.len() + 1);
    prefix.push(0u64);
    for c in candidates {
        prefix.push(prefix.last().unwrap() + candidate_cost(c));
    }
    let total = *prefix.last().unwrap();
    // Cut points into the candidate list: cuts[0] = 0, cuts[parts] = len,
    // and cut k is the boundary nearest the k-th equal-work target. The
    // targets ascend, so nearest-boundary cuts are monotone and the ranges
    // tile the list exactly once (the clamp is a belt-and-braces guard).
    let mut cuts = Vec::with_capacity(parts + 1);
    cuts.push(0usize);
    for k in 1..parts {
        let target = (total as u128 * k as u128 / parts as u128) as u64;
        let mut cut = prefix.partition_point(|&p| p < target);
        if cut > 0 && cut < prefix.len() && target - prefix[cut - 1] < prefix[cut] - target {
            cut -= 1;
        }
        cuts.push(cut.clamp(*cuts.last().unwrap(), candidates.len()));
    }
    cuts.push(candidates.len());
    let mut out = Vec::with_capacity(parts);
    let mut base = 0u64;
    for w in cuts.windows(2) {
        let (start, end) = (w[0], w[1]);
        out.push(CandidatePart {
            range: start..end,
            base_offset: base,
            cost: prefix[end] - prefix[start],
        });
        base += candidates[start..end]
            .iter()
            .map(|c| c.genome_len() as u64)
            .sum::<u64>();
    }
    out
}

/// Builds per-species reference indexes for the given candidates.
///
/// Index construction for individual species is a one-time offline task
/// (§4.4); this helper exists so tests and examples can produce them from a
/// synthetic reference collection. The analyzer builds its indexes once at
/// construction and borrows them per sample (see
/// [`crate::MegisAnalyzer::candidate_indexes`]).
pub fn build_candidate_indexes(
    references: &ReferenceCollection,
    candidates: &PresenceResult,
    seed_k: usize,
) -> Vec<ReferenceIndex> {
    references
        .genomes()
        .iter()
        .filter(|g| candidates.contains(g.taxid()))
        .map(|g| ReferenceIndex::build(g, seed_k))
        .collect()
}

/// Generates the unified reference index over the candidate species
/// (the in-SSD merge of Fig. 9).
pub fn generate_unified_index(candidate_indexes: &[ReferenceIndex]) -> UnifiedReferenceIndex {
    UnifiedReferenceIndex::merge(candidate_indexes)
}

/// Runs one device's share of partitioned Step 3: merge the candidate range
/// (starting at `base_offset` in the concatenated reference space) into a
/// partial unified index, then map every read against it, recording each
/// read's best pre-threshold hit.
pub fn run_partial(
    reads: &ReadSet,
    candidates: &[&ReferenceIndex],
    base_offset: u64,
    mapping_k: usize,
) -> Step3Partial {
    let index = PartialUnifiedIndex::merge_range(candidates, base_offset);
    let mut hits = Vec::new();
    if !index.index().is_empty() {
        for (read_index, read) in reads.iter().enumerate() {
            if let Some(hit) = index.index().map_read_hit(read, mapping_k) {
                hits.push(PartialReadHit {
                    read: read_index,
                    taxid: hit.taxid,
                    votes: hit.votes,
                });
            }
        }
    }
    Step3Partial { index, hits }
}

/// Incremental Step 3 reduce: folds per-device partials in *as they
/// arrive*, in any arrival order, instead of barriering on the full set.
///
/// A completer reaping out-of-order device completions calls
/// [`IncrementalReduce::offer`] with each partial's *part position* (its
/// index in the [`partition_candidates`] output). Two folds run eagerly:
///
/// * **index fold** — partial indexes must recombine in part order, so the
///   reducer holds out-of-order arrivals and absorbs the contiguous ready
///   prefix through [`PartialUnifiedIndex::absorb`] (the pairwise form of
///   [`UnifiedReferenceIndex::merge_partials`], byte-identical by the
///   genomics parity suite);
/// * **hit fold** — per-read best hits reduce by a commutative maximum
///   under `(votes, smallest-taxid)`, so arrival order cannot matter.
///
/// Positions whose part was empty (never dispatched as a command) are
/// declared up front via the `expected` mask; the reducer skips over them.
/// [`IncrementalReduce::finish`] applies the [`MIN_MAPPING_VOTES`]
/// threshold to each read's winner and accumulates the abundance profile —
/// the only work left after the last partial arrives, which is what pulls
/// the traced `reduce_barrier` segment toward zero.
#[derive(Debug, Default)]
pub struct IncrementalReduce {
    expected: Vec<bool>,
    held: Vec<Option<Step3Partial>>,
    cursor: usize,
    folded: Option<PartialUnifiedIndex>,
    best: HashMap<usize, (u32, TaxId)>,
}

impl IncrementalReduce {
    /// Creates a reducer over `expected.len()` part positions; position `i`
    /// is awaited iff `expected[i]` (empty parts are never dispatched, so a
    /// completer marks them unexpected).
    pub fn new(expected: Vec<bool>) -> IncrementalReduce {
        let mut reducer = IncrementalReduce {
            held: vec![None; expected.len()],
            expected,
            cursor: 0,
            folded: None,
            best: HashMap::new(),
        };
        reducer.drain_ready();
        reducer
    }

    /// Offers the partial produced by part `position`. Hits fold
    /// immediately; the partial index folds as soon as every earlier
    /// expected position has arrived.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range, was not expected, or was
    /// already offered.
    pub fn offer(&mut self, position: usize, partial: Step3Partial) {
        assert!(
            self.expected.get(position).copied().unwrap_or(false),
            "position {position} was not expected"
        );
        for hit in &partial.hits {
            let candidate = (hit.votes, hit.taxid);
            match self.best.entry(hit.read) {
                std::collections::hash_map::Entry::Occupied(mut cur) => {
                    let (votes, taxid) = *cur.get();
                    if candidate.0 > votes || (candidate.0 == votes && candidate.1 < taxid) {
                        cur.insert(candidate);
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(candidate);
                }
            }
        }
        assert!(
            self.held[position].replace(partial).is_none(),
            "position {position} offered twice"
        );
        self.drain_ready();
    }

    /// Absorbs the contiguous ready prefix of held partial indexes.
    fn drain_ready(&mut self) {
        while self.cursor < self.expected.len() {
            if !self.expected[self.cursor] {
                self.cursor += 1;
                continue;
            }
            let Some(partial) = self.held[self.cursor].take() else {
                break;
            };
            match self.folded.as_mut() {
                Some(folded) => folded.absorb(partial.index),
                None => self.folded = Some(partial.index),
            }
            self.cursor += 1;
        }
    }

    /// `true` once every expected partial has arrived and folded.
    pub fn is_complete(&self) -> bool {
        self.cursor == self.expected.len()
    }

    /// Number of part positions whose index has folded in so far.
    pub fn folded_parts(&self) -> usize {
        self.cursor
    }

    /// Finishes the reduce: threshold each read's winner, accumulate the
    /// abundance profile, and hand out the recombined unified index.
    ///
    /// # Panics
    ///
    /// Panics if an expected partial has not been offered.
    pub fn finish(self) -> Step3Output {
        assert!(
            self.is_complete(),
            "finish called with partials outstanding"
        );
        let unified_index = self
            .folded
            .map(PartialUnifiedIndex::into_index)
            .unwrap_or_default();
        let mut counts = AbundanceAccumulator::new();
        let mut mapped_reads = 0u64;
        for (votes, taxid) in self.best.values() {
            if *votes >= MIN_MAPPING_VOTES {
                counts.record(*taxid);
                mapped_reads += 1;
            }
        }
        Step3Output {
            unified_index,
            abundance: counts.finish(),
            mapped_reads,
        }
    }
}

/// Recombines per-device partials (in candidate-range order) into the full
/// Step 3 output: merge the partial indexes byte-identically, resolve each
/// read's winner across devices by the same `(votes, smallest-taxid)`
/// best-hit rule as [`UnifiedReferenceIndex::map_read`], apply the
/// mapping-vote threshold to the winner, and accumulate the abundance
/// profile with a deterministic sort + run-length group.
///
/// This is the batch-shaped entry point: it drives the same
/// [`IncrementalReduce`] fold the streaming completer uses, so the two
/// paths cannot drift apart.
pub fn reduce(partials: Vec<Step3Partial>) -> Step3Output {
    let mut reducer = IncrementalReduce::new(vec![true; partials.len()]);
    for (position, partial) in partials.into_iter().enumerate() {
        reducer.offer(position, partial);
    }
    reducer.finish()
}

/// Runs partitioned Step 3 end to end: [`partition_candidates`] →
/// [`run_partial`] per part → [`reduce`]. With `parts == 1` this is the
/// composition the analyzer's sequential path uses; the output is
/// byte-identical to [`run`] for every `parts` (asserted by the seeded
/// property suite).
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn run_partitioned(
    reads: &ReadSet,
    candidates: &[&ReferenceIndex],
    parts: usize,
    mapping_k: usize,
) -> Step3Output {
    let partials = partition_candidates(candidates, parts)
        .into_iter()
        .map(|part| run_partial(reads, &candidates[part.range], part.base_offset, mapping_k))
        .collect();
    reduce(partials)
}

/// Runs Step 3 sequentially: one unified-index merge followed by one
/// mapping pass. This is the *oracle* the partitioned path is verified
/// against — it never goes through partition/reduce, so a regression in
/// either shows up as a divergence.
pub fn run(reads: &ReadSet, candidate_indexes: &[ReferenceIndex], mapping_k: usize) -> Step3Output {
    let unified_index = generate_unified_index(candidate_indexes);
    let mut counts = AbundanceAccumulator::new();
    let mut mapped_reads = 0;
    for read in reads.iter() {
        if let Some(taxid) = unified_index.map_read(read, mapping_k) {
            counts.record(taxid);
            mapped_reads += 1;
        }
    }
    Step3Output {
        unified_index,
        abundance: counts.finish(),
        mapped_reads,
    }
}

/// Lightweight statistical abundance estimation directly from sketch-match
/// support counts (the alternative integration path of §4.4 for tools that do
/// not require read mapping).
pub fn statistical_abundance(support: &HashMap<TaxId, u32>) -> AbundanceProfile {
    AbundanceProfile::from_counts(support.iter().map(|(t, c)| (*t, *c as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::metrics::AbundanceError;
    use megis_genomics::sample::{CommunityConfig, Diversity};

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_reads(400)
            .with_species(4)
            .with_database_species(16)
            .build(55)
    }

    #[test]
    fn unified_index_covers_all_candidates() {
        let c = community();
        let truth = c.truth_presence();
        let indexes = build_candidate_indexes(c.references(), &truth, 15);
        assert_eq!(indexes.len(), truth.len());
        let unified = generate_unified_index(&indexes);
        assert_eq!(unified.offsets().len(), truth.len());
    }

    #[test]
    fn mapping_based_abundance_tracks_truth() {
        let c = community();
        let truth = c.truth_presence();
        let indexes = build_candidate_indexes(c.references(), &truth, 15);
        let out = run(c.sample().reads(), &indexes, 15);
        assert!(out.mapped_reads > (c.sample().len() as u64) / 2);
        let err = AbundanceError::score(&out.abundance, c.truth_profile());
        assert!(err.l1_norm < 0.6, "L1 error {}", err.l1_norm);
    }

    #[test]
    fn statistical_abundance_normalizes_support() {
        let mut support = HashMap::new();
        support.insert(TaxId(1), 30u32);
        support.insert(TaxId(2), 10u32);
        let profile = statistical_abundance(&support);
        assert!((profile.abundance(TaxId(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_candidates_give_empty_output() {
        let c = community();
        let out = run(c.sample().reads(), &[], 15);
        assert!(out.abundance.is_empty());
        assert_eq!(out.mapped_reads, 0);
        // The partitioned path degrades identically: padding-only parts.
        for parts in [1usize, 3, 8] {
            assert_eq!(run_partitioned(c.sample().reads(), &[], parts, 15), out);
        }
    }

    /// Deterministic skewed candidate fixture: per-genome lengths differ by
    /// up to ~40×, so index stream bytes and mapping work are heavily
    /// skewed — the regime where an equal-count split cliffs. Returns the
    /// per-species indexes plus reads sampled *from* the genomes, so
    /// mapping exercises every candidate (including the oversized ones).
    fn skewed_fixture(
        lens: &[usize],
        seed: u64,
    ) -> (Vec<ReferenceIndex>, megis_genomics::read::ReadSet) {
        use megis_genomics::dna::{Base, PackedSequence};
        use megis_genomics::read::{Read, ReadSet};
        use megis_genomics::reference::ReferenceGenome;
        let mut state = seed | 1;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut indexes = Vec::with_capacity(lens.len());
        let mut reads = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let bases: Vec<Base> = (0..len)
                .map(|_| Base::from_code((step() & 3) as u8))
                .collect();
            for r in 0..8 {
                let start = step() % (len - 60).max(1);
                reads.push(Read::new(
                    format!("r{i}-{r}"),
                    PackedSequence::from_bases(bases[start..start + 60].iter().copied()),
                ));
            }
            let genome = ReferenceGenome::new(
                TaxId(100 + i as u32),
                format!("skew-{i}"),
                PackedSequence::from_bases(bases),
            );
            indexes.push(ReferenceIndex::build(&genome, 15));
        }
        (indexes, ReadSet::from_reads(reads))
    }

    fn assert_partition_invariants(partition: &[CandidatePart], refs: &[&ReferenceIndex]) {
        let parts = partition.len();
        // Contiguous cover: ranges abut, start at 0, end at the count — so
        // every candidate lands in exactly one part.
        assert_eq!(partition[0].range.start, 0);
        assert_eq!(partition[parts - 1].range.end, refs.len());
        assert_eq!(partition[0].base_offset, 0);
        for w in partition.windows(2) {
            assert_eq!(w[0].range.end, w[1].range.start);
            let span: u64 = refs[w[0].range.clone()]
                .iter()
                .map(|r| r.genome_len() as u64)
                .sum();
            assert_eq!(w[1].base_offset, w[0].base_offset + span);
        }
        // Part costs are the modeled per-candidate costs of the range, and
        // no part exceeds the equal-work share by more than one candidate.
        let costs: Vec<u64> = refs.iter().map(|r| candidate_cost(r)).collect();
        let total: u64 = costs.iter().sum();
        let max_single = costs.iter().copied().max().unwrap_or(0);
        for part in partition {
            assert_eq!(
                part.cost,
                costs[part.range.clone()].iter().sum::<u64>(),
                "part cost must sum its candidates' modeled costs"
            );
            assert!(
                part.cost <= total / parts as u64 + max_single,
                "part {:?} cost {} exceeds equal share {} + max candidate {}",
                part.range,
                part.cost,
                total / parts as u64,
                max_single
            );
        }
    }

    #[test]
    fn partition_covers_candidates_and_offsets_compose() {
        let c = community();
        let truth = c.truth_presence();
        let indexes = build_candidate_indexes(c.references(), &truth, 15);
        let refs: Vec<&ReferenceIndex> = indexes.iter().collect();
        for parts in 1..=9usize {
            let partition = partition_candidates(&refs, parts);
            assert_eq!(partition.len(), parts);
            assert_partition_invariants(&partition, &refs);
            // More parts than candidates: at least the excess is empty
            // padding (the cost-aware cuts may also leave gaps elsewhere).
            if parts > refs.len() {
                let empty = partition.iter().filter(|p| p.is_empty()).count();
                assert!(empty >= parts - refs.len());
            }
        }
    }

    #[test]
    fn cost_aware_partition_balances_skewed_candidates() {
        // Seeded property sweep over adversarially skewed candidate sizes:
        // the equal-count split would put the two giant candidates on one
        // device; the cost-aware cuts must keep every part within one
        // candidate of the equal-work share (asserted by the shared
        // invariant helper) and give the giant candidates parts of their
        // own when the device count allows.
        for (seed, lens) in [
            (11u64, vec![4000usize, 100, 120, 90, 110, 80, 100, 3600]),
            (23, vec![150, 150, 5000, 130, 140, 120, 110, 100]),
            (37, vec![2000, 2000, 2000, 60, 60, 60, 60, 60, 60, 60]),
        ] {
            let (indexes, _) = skewed_fixture(&lens, seed);
            let refs: Vec<&ReferenceIndex> = indexes.iter().collect();
            let costs: Vec<u64> = refs.iter().map(|r| candidate_cost(r)).collect();
            let total: u64 = costs.iter().sum();
            for parts in 1..=9usize {
                let partition = partition_candidates(&refs, parts);
                assert_eq!(partition.len(), parts);
                assert_partition_invariants(&partition, &refs);
                assert_eq!(partition.iter().map(|p| p.cost).sum::<u64>(), total);
            }
            // The concrete cliff case: at 4+ devices the equal-count split
            // would pair a giant with neighbors; cost-aware cuts must beat
            // its bottleneck (or match it when a single candidate is the
            // floor).
            let count_split_max: u64 = {
                let per = refs.len().div_ceil(4).max(1);
                costs
                    .chunks(per)
                    .map(|chunk| chunk.iter().sum::<u64>())
                    .max()
                    .unwrap()
            };
            let cost_split_max = partition_candidates(&refs, 4)
                .iter()
                .map(|p| p.cost)
                .max()
                .unwrap();
            assert!(
                cost_split_max <= count_split_max,
                "seed {seed}: cost-aware bottleneck {cost_split_max} worse than count split {count_split_max}"
            );
        }
    }

    #[test]
    fn partitioned_step3_equals_sequential_oracle_on_skewed_candidates() {
        // Byte-parity with the sequential oracle across 1–9 parts on the
        // skewed candidate sizes the cost-aware cuts were built for.
        for (seed, lens) in [
            (5u64, vec![3000usize, 90, 110, 100, 2800, 120, 80, 100]),
            (17, vec![100, 4000, 90, 80, 120, 110]),
        ] {
            let (indexes, reads) = skewed_fixture(&lens, seed);
            let refs: Vec<&ReferenceIndex> = indexes.iter().collect();
            let oracle = run(&reads, &indexes, 15);
            assert!(oracle.mapped_reads > 0, "seed {seed}: fixture maps nothing");
            for parts in 1..=9usize {
                let sharded = run_partitioned(&reads, &refs, parts, 15);
                assert_eq!(sharded, oracle, "seed {seed}, {parts} parts diverged");
                assert_eq!(
                    sharded.unified_index.entries(),
                    oracle.unified_index.entries()
                );
                assert_eq!(
                    sharded.unified_index.offsets(),
                    oracle.unified_index.offsets()
                );
            }
        }
    }

    #[test]
    fn incremental_reduce_is_arrival_order_insensitive() {
        // The streaming completer folds partials as devices complete, in
        // whatever order stealing and queue depth produce. Every arrival
        // permutation must finish byte-identical to the batch reduce and
        // the sequential oracle, including when empty parts were never
        // dispatched (the `expected` mask skips them).
        let c = community();
        let truth = c.truth_presence();
        let indexes = build_candidate_indexes(c.references(), &truth, 15);
        let refs: Vec<&ReferenceIndex> = indexes.iter().collect();
        let oracle = run(c.sample().reads(), &indexes, 15);
        for parts in [2usize, 3, 5, 8] {
            let partition = partition_candidates(&refs, parts);
            let partials: Vec<(usize, Step3Partial)> = partition
                .iter()
                .enumerate()
                .filter(|(_, part)| !part.is_empty())
                .map(|(position, part)| {
                    (
                        position,
                        run_partial(
                            c.sample().reads(),
                            &refs[part.range.clone()],
                            part.base_offset,
                            15,
                        ),
                    )
                })
                .collect();
            let expected: Vec<bool> = partition.iter().map(|p| !p.is_empty()).collect();
            // Forward, reverse, and a rotated arrival order.
            for rotation in 0..partials.len().max(1) {
                let mut reducer = IncrementalReduce::new(expected.clone());
                let n = partials.len();
                for i in 0..n {
                    let (position, partial) = partials[(i + rotation) % n].clone();
                    assert!(!reducer.is_complete());
                    reducer.offer(position, partial);
                }
                assert!(reducer.is_complete());
                assert_eq!(reducer.folded_parts(), parts);
                assert_eq!(
                    reducer.finish(),
                    oracle,
                    "{parts} parts, rotation {rotation}"
                );
            }
            let mut reversed = IncrementalReduce::new(expected);
            for (position, partial) in partials.iter().rev() {
                reversed.offer(*position, partial.clone());
            }
            assert_eq!(reversed.finish(), oracle, "{parts} parts reversed");
        }
    }

    #[test]
    #[should_panic(expected = "offered twice")]
    fn incremental_reduce_rejects_duplicate_positions() {
        let mut reducer = IncrementalReduce::new(vec![true, true]);
        reducer.offer(1, Step3Partial::default());
        reducer.offer(1, Step3Partial::default());
    }

    #[test]
    fn partitioned_step3_equals_sequential_oracle() {
        // Seeded property sweep: random communities (varying candidate
        // counts and read mixtures) × shard counts 1–9, including counts
        // beyond the candidates so empty partitions are exercised. The
        // partitioned output must be byte-identical to the sequential
        // oracle: same unified index (entries and offsets), same abundance
        // profile, same mapped-read count.
        for (seed, species, reads) in [(55u64, 4usize, 200usize), (7, 6, 150), (91, 8, 250)] {
            let c = CommunityConfig::preset(Diversity::Medium)
                .with_reads(reads)
                .with_species(species)
                .with_database_species(16)
                .build(seed);
            let truth = c.truth_presence();
            let indexes = build_candidate_indexes(c.references(), &truth, 15);
            let refs: Vec<&ReferenceIndex> = indexes.iter().collect();
            let oracle = run(c.sample().reads(), &indexes, 15);
            assert!(oracle.mapped_reads > 0, "seed {seed}: fixture maps nothing");
            for parts in 1..=9usize {
                let sharded = run_partitioned(c.sample().reads(), &refs, parts, 15);
                assert_eq!(
                    sharded, oracle,
                    "seed {seed}, {parts} parts diverged from the oracle"
                );
                assert_eq!(
                    sharded.unified_index.entries(),
                    oracle.unified_index.entries()
                );
                assert_eq!(
                    sharded.unified_index.offsets(),
                    oracle.unified_index.offsets()
                );
            }
        }
    }

    #[test]
    fn reduce_resolves_multi_shard_hits_like_map_read() {
        // A read hitting candidates in several partitions must resolve to
        // the global best hit; ties on votes go to the smallest taxid.
        let hits = vec![
            Step3Partial {
                index: PartialUnifiedIndex::default(),
                hits: vec![
                    PartialReadHit {
                        read: 0,
                        taxid: TaxId(5),
                        votes: 3,
                    },
                    PartialReadHit {
                        read: 1,
                        taxid: TaxId(5),
                        votes: 1,
                    },
                ],
            },
            Step3Partial {
                index: PartialUnifiedIndex::default(),
                hits: vec![
                    PartialReadHit {
                        read: 0,
                        taxid: TaxId(2),
                        votes: 3,
                    },
                    PartialReadHit {
                        read: 1,
                        taxid: TaxId(9),
                        votes: 1,
                    },
                ],
            },
        ];
        let out = reduce(hits);
        // Read 0: tie at 3 votes, smallest taxid (2) wins. Read 1: winner
        // has 1 vote, below the threshold — unmapped.
        assert_eq!(out.mapped_reads, 1);
        assert!((out.abundance.abundance(TaxId(2)) - 1.0).abs() < 1e-12);
        assert_eq!(out.abundance.abundance(TaxId(5)), 0.0);
    }

    #[test]
    #[should_panic(expected = "parts must be positive")]
    fn zero_parts_rejected() {
        partition_candidates(&[], 0);
    }
}
