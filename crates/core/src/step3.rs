//! Step 3 — abundance estimation support (§4.4), as partition → map →
//! reduce over the candidate species.
//!
//! For applications that need relative abundances, MegIS prepares the data a
//! read mapper needs: a *unified* reference index over the candidate species
//! identified in Step 2, generated inside the SSD by sequentially merging the
//! candidate species' per-species indexes (Fig. 9), then handed — together
//! with the reads — to a mapping accelerator. On a device array the same
//! stage shards: the candidate list is split into contiguous ranges
//! ([`partition_candidates`], a deterministic assignment over the
//! ascending-taxid candidate order), each device merges its range into a
//! [`PartialUnifiedIndex`] and maps every read against it
//! ([`run_partial`]), and a reduce step ([`reduce`]) recombines the partial
//! indexes byte-identically, resolves reads that hit candidates on several
//! devices by the same best-hit rule as
//! [`UnifiedReferenceIndex::map_read`], and accumulates the abundance
//! profile.
//!
//! The decomposition is *exact*, not approximate:
//!
//! * the recombined unified index equals the one-pass merge
//!   ([`UnifiedReferenceIndex::merge_partials`] — offsets and location
//!   orders are preserved because the ranges are contiguous and consecutive),
//! * a candidate lives on exactly one device, so per-device vote counts are
//!   global vote counts and the max-of-maxes under `(votes,
//!   smallest-taxid)` is the global best hit, with the
//!   [`MIN_MAPPING_VOTES`] threshold applied to the winner in the reduce,
//! * abundance counts group by a deterministic sort + run-length pass
//!   ([`AbundanceAccumulator`]).
//!
//! [`run`] is the sequential oracle (one merge, one mapper): the seeded
//! property suites assert that partition → [`run_partial`] → [`reduce`] at
//! any shard count reproduces it byte for byte. Lightweight statistical
//! estimators ([`statistical_abundance`]) can instead run directly on
//! Step 2's output.

use std::collections::HashMap;
use std::ops::Range;

use megis_genomics::database::{
    PartialUnifiedIndex, ReferenceIndex, UnifiedReferenceIndex, MIN_MAPPING_VOTES,
};
use megis_genomics::profile::{AbundanceAccumulator, AbundanceProfile, PresenceResult};
use megis_genomics::read::ReadSet;
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::taxonomy::TaxId;

/// Output of Step 3.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Step3Output {
    /// The unified index generated for the candidate species.
    pub unified_index: UnifiedReferenceIndex,
    /// Mapping-based abundance estimate.
    pub abundance: AbundanceProfile,
    /// Number of reads that mapped to some candidate species.
    pub mapped_reads: u64,
}

/// One contiguous range of the candidate list assigned to a device for
/// partitioned Step 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidatePart {
    /// The range of candidate positions (indices into the candidate list).
    pub range: Range<usize>,
    /// Concatenated-reference-space offset where the range begins: the sum
    /// of the genome lengths of every earlier candidate.
    pub base_offset: u64,
}

impl CandidatePart {
    /// Returns `true` if the part covers no candidates (a padding part for
    /// devices beyond the candidate count).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// One read's best-supported hit within one candidate partition, before the
/// mapping-vote threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialReadHit {
    /// Index of the read within the sample's read set.
    pub read: usize,
    /// The partition's best-supported candidate for the read.
    pub taxid: TaxId,
    /// Seed votes supporting it (equal to the *global* vote count, since a
    /// candidate lives in exactly one partition).
    pub votes: u32,
}

/// Per-device output of partitioned Step 3: the partial unified index over
/// the device's candidate range plus the best hit of every read that hit
/// the range at all.
#[derive(Debug, Clone, Default)]
pub struct Step3Partial {
    /// The partial unified index merged on this device.
    pub index: PartialUnifiedIndex,
    /// Per-read best hits against this device's candidates, in read order.
    pub hits: Vec<PartialReadHit>,
}

/// Splits a candidate list into `parts` contiguous ranges of near-equal
/// candidate counts — the deterministic device assignment of partitioned
/// Step 3. The candidate list must be in the order the unified index is
/// merged in (ascending taxid for candidates filtered from a reference
/// collection), so each part is a contiguous taxid range; parts beyond the
/// candidate count come back empty.
///
/// Each part carries the `base_offset` its partial index starts at, so the
/// parts compose: `base_offset` of part `i + 1` equals part `i`'s base plus
/// its candidates' total genome length, and the recombined index is
/// byte-identical to the one-pass merge.
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn partition_candidates(candidates: &[&ReferenceIndex], parts: usize) -> Vec<CandidatePart> {
    assert!(parts > 0, "parts must be positive");
    let per = candidates.len().div_ceil(parts).max(1);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut base = 0u64;
    while start < candidates.len() {
        let end = (start + per).min(candidates.len());
        out.push(CandidatePart {
            range: start..end,
            base_offset: base,
        });
        base += candidates[start..end]
            .iter()
            .map(|c| c.genome_len() as u64)
            .sum::<u64>();
        start = end;
    }
    while out.len() < parts {
        out.push(CandidatePart {
            range: candidates.len()..candidates.len(),
            base_offset: base,
        });
    }
    out
}

/// Builds per-species reference indexes for the given candidates.
///
/// Index construction for individual species is a one-time offline task
/// (§4.4); this helper exists so tests and examples can produce them from a
/// synthetic reference collection. The analyzer builds its indexes once at
/// construction and borrows them per sample (see
/// [`crate::MegisAnalyzer::candidate_indexes`]).
pub fn build_candidate_indexes(
    references: &ReferenceCollection,
    candidates: &PresenceResult,
    seed_k: usize,
) -> Vec<ReferenceIndex> {
    references
        .genomes()
        .iter()
        .filter(|g| candidates.contains(g.taxid()))
        .map(|g| ReferenceIndex::build(g, seed_k))
        .collect()
}

/// Generates the unified reference index over the candidate species
/// (the in-SSD merge of Fig. 9).
pub fn generate_unified_index(candidate_indexes: &[ReferenceIndex]) -> UnifiedReferenceIndex {
    UnifiedReferenceIndex::merge(candidate_indexes)
}

/// Runs one device's share of partitioned Step 3: merge the candidate range
/// (starting at `base_offset` in the concatenated reference space) into a
/// partial unified index, then map every read against it, recording each
/// read's best pre-threshold hit.
pub fn run_partial(
    reads: &ReadSet,
    candidates: &[&ReferenceIndex],
    base_offset: u64,
    mapping_k: usize,
) -> Step3Partial {
    let index = PartialUnifiedIndex::merge_range(candidates, base_offset);
    let mut hits = Vec::new();
    if !index.index().is_empty() {
        for (read_index, read) in reads.iter().enumerate() {
            if let Some(hit) = index.index().map_read_hit(read, mapping_k) {
                hits.push(PartialReadHit {
                    read: read_index,
                    taxid: hit.taxid,
                    votes: hit.votes,
                });
            }
        }
    }
    Step3Partial { index, hits }
}

/// Recombines per-device partials (in candidate-range order) into the full
/// Step 3 output: merge the partial indexes byte-identically, resolve each
/// read's winner across devices by the same `(votes, smallest-taxid)`
/// best-hit rule as [`UnifiedReferenceIndex::map_read`], apply the
/// mapping-vote threshold to the winner, and accumulate the abundance
/// profile with a deterministic sort + run-length group.
pub fn reduce(partials: Vec<Step3Partial>) -> Step3Output {
    let mut hits: Vec<PartialReadHit> = Vec::new();
    let mut indexes = Vec::with_capacity(partials.len());
    for partial in partials {
        hits.extend(partial.hits);
        indexes.push(partial.index);
    }
    let unified_index = UnifiedReferenceIndex::merge_partials(indexes);
    // Sorting ascending by (read, votes, Reverse(taxid)) puts each read's
    // winning hit — most votes, smallest taxid on ties — last in its run.
    hits.sort_unstable_by_key(|h| (h.read, h.votes, std::cmp::Reverse(h.taxid)));
    let mut counts = AbundanceAccumulator::new();
    let mut mapped_reads = 0u64;
    let mut i = 0usize;
    while i < hits.len() {
        let mut j = i;
        while j + 1 < hits.len() && hits[j + 1].read == hits[i].read {
            j += 1;
        }
        let winner = hits[j];
        if winner.votes >= MIN_MAPPING_VOTES {
            counts.record(winner.taxid);
            mapped_reads += 1;
        }
        i = j + 1;
    }
    Step3Output {
        unified_index,
        abundance: counts.finish(),
        mapped_reads,
    }
}

/// Runs partitioned Step 3 end to end: [`partition_candidates`] →
/// [`run_partial`] per part → [`reduce`]. With `parts == 1` this is the
/// composition the analyzer's sequential path uses; the output is
/// byte-identical to [`run`] for every `parts` (asserted by the seeded
/// property suite).
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn run_partitioned(
    reads: &ReadSet,
    candidates: &[&ReferenceIndex],
    parts: usize,
    mapping_k: usize,
) -> Step3Output {
    let partials = partition_candidates(candidates, parts)
        .into_iter()
        .map(|part| run_partial(reads, &candidates[part.range], part.base_offset, mapping_k))
        .collect();
    reduce(partials)
}

/// Runs Step 3 sequentially: one unified-index merge followed by one
/// mapping pass. This is the *oracle* the partitioned path is verified
/// against — it never goes through partition/reduce, so a regression in
/// either shows up as a divergence.
pub fn run(reads: &ReadSet, candidate_indexes: &[ReferenceIndex], mapping_k: usize) -> Step3Output {
    let unified_index = generate_unified_index(candidate_indexes);
    let mut counts = AbundanceAccumulator::new();
    let mut mapped_reads = 0;
    for read in reads.iter() {
        if let Some(taxid) = unified_index.map_read(read, mapping_k) {
            counts.record(taxid);
            mapped_reads += 1;
        }
    }
    Step3Output {
        unified_index,
        abundance: counts.finish(),
        mapped_reads,
    }
}

/// Lightweight statistical abundance estimation directly from sketch-match
/// support counts (the alternative integration path of §4.4 for tools that do
/// not require read mapping).
pub fn statistical_abundance(support: &HashMap<TaxId, u32>) -> AbundanceProfile {
    AbundanceProfile::from_counts(support.iter().map(|(t, c)| (*t, *c as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::metrics::AbundanceError;
    use megis_genomics::sample::{CommunityConfig, Diversity};

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_reads(400)
            .with_species(4)
            .with_database_species(16)
            .build(55)
    }

    #[test]
    fn unified_index_covers_all_candidates() {
        let c = community();
        let truth = c.truth_presence();
        let indexes = build_candidate_indexes(c.references(), &truth, 15);
        assert_eq!(indexes.len(), truth.len());
        let unified = generate_unified_index(&indexes);
        assert_eq!(unified.offsets().len(), truth.len());
    }

    #[test]
    fn mapping_based_abundance_tracks_truth() {
        let c = community();
        let truth = c.truth_presence();
        let indexes = build_candidate_indexes(c.references(), &truth, 15);
        let out = run(c.sample().reads(), &indexes, 15);
        assert!(out.mapped_reads > (c.sample().len() as u64) / 2);
        let err = AbundanceError::score(&out.abundance, c.truth_profile());
        assert!(err.l1_norm < 0.6, "L1 error {}", err.l1_norm);
    }

    #[test]
    fn statistical_abundance_normalizes_support() {
        let mut support = HashMap::new();
        support.insert(TaxId(1), 30u32);
        support.insert(TaxId(2), 10u32);
        let profile = statistical_abundance(&support);
        assert!((profile.abundance(TaxId(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_candidates_give_empty_output() {
        let c = community();
        let out = run(c.sample().reads(), &[], 15);
        assert!(out.abundance.is_empty());
        assert_eq!(out.mapped_reads, 0);
        // The partitioned path degrades identically: padding-only parts.
        for parts in [1usize, 3, 8] {
            assert_eq!(run_partitioned(c.sample().reads(), &[], parts, 15), out);
        }
    }

    #[test]
    fn partition_covers_candidates_and_offsets_compose() {
        let c = community();
        let truth = c.truth_presence();
        let indexes = build_candidate_indexes(c.references(), &truth, 15);
        let refs: Vec<&ReferenceIndex> = indexes.iter().collect();
        for parts in 1..=9usize {
            let partition = partition_candidates(&refs, parts);
            assert_eq!(partition.len(), parts);
            // Contiguous cover: ranges abut, start at 0, end at the count.
            assert_eq!(partition[0].range.start, 0);
            assert_eq!(partition[parts - 1].range.end, refs.len());
            assert_eq!(partition[0].base_offset, 0);
            for w in partition.windows(2) {
                assert_eq!(w[0].range.end, w[1].range.start);
                let span: u64 = refs[w[0].range.clone()]
                    .iter()
                    .map(|r| r.genome_len() as u64)
                    .sum();
                assert_eq!(w[1].base_offset, w[0].base_offset + span);
            }
            // More parts than candidates: trailing parts are empty padding.
            if parts > refs.len() {
                assert!(partition[refs.len()..].iter().all(CandidatePart::is_empty));
            }
        }
    }

    #[test]
    fn partitioned_step3_equals_sequential_oracle() {
        // Seeded property sweep: random communities (varying candidate
        // counts and read mixtures) × shard counts 1–9, including counts
        // beyond the candidates so empty partitions are exercised. The
        // partitioned output must be byte-identical to the sequential
        // oracle: same unified index (entries and offsets), same abundance
        // profile, same mapped-read count.
        for (seed, species, reads) in [(55u64, 4usize, 200usize), (7, 6, 150), (91, 8, 250)] {
            let c = CommunityConfig::preset(Diversity::Medium)
                .with_reads(reads)
                .with_species(species)
                .with_database_species(16)
                .build(seed);
            let truth = c.truth_presence();
            let indexes = build_candidate_indexes(c.references(), &truth, 15);
            let refs: Vec<&ReferenceIndex> = indexes.iter().collect();
            let oracle = run(c.sample().reads(), &indexes, 15);
            assert!(oracle.mapped_reads > 0, "seed {seed}: fixture maps nothing");
            for parts in 1..=9usize {
                let sharded = run_partitioned(c.sample().reads(), &refs, parts, 15);
                assert_eq!(
                    sharded, oracle,
                    "seed {seed}, {parts} parts diverged from the oracle"
                );
                assert_eq!(
                    sharded.unified_index.entries(),
                    oracle.unified_index.entries()
                );
                assert_eq!(
                    sharded.unified_index.offsets(),
                    oracle.unified_index.offsets()
                );
            }
        }
    }

    #[test]
    fn reduce_resolves_multi_shard_hits_like_map_read() {
        // A read hitting candidates in several partitions must resolve to
        // the global best hit; ties on votes go to the smallest taxid.
        let hits = vec![
            Step3Partial {
                index: PartialUnifiedIndex::default(),
                hits: vec![
                    PartialReadHit {
                        read: 0,
                        taxid: TaxId(5),
                        votes: 3,
                    },
                    PartialReadHit {
                        read: 1,
                        taxid: TaxId(5),
                        votes: 1,
                    },
                ],
            },
            Step3Partial {
                index: PartialUnifiedIndex::default(),
                hits: vec![
                    PartialReadHit {
                        read: 0,
                        taxid: TaxId(2),
                        votes: 3,
                    },
                    PartialReadHit {
                        read: 1,
                        taxid: TaxId(9),
                        votes: 1,
                    },
                ],
            },
        ];
        let out = reduce(hits);
        // Read 0: tie at 3 votes, smallest taxid (2) wins. Read 1: winner
        // has 1 vote, below the threshold — unmapped.
        assert_eq!(out.mapped_reads, 1);
        assert!((out.abundance.abundance(TaxId(2)) - 1.0).abs() < 1e-12);
        assert_eq!(out.abundance.abundance(TaxId(5)), 0.0);
    }

    #[test]
    #[should_panic(expected = "parts must be positive")]
    fn zero_parts_rejected() {
        partition_candidates(&[], 0);
    }
}
