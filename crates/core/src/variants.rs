//! MegIS design-point variants evaluated in the paper (§6.1).
//!
//! The paper compares the full MegIS design (*MS*) against three ablations
//! that each remove one of its ingredients:
//!
//! * **Ext-MS** — the same accelerators placed *outside* the SSD, so the
//!   database crosses the host interface (shows the value of ISP itself),
//! * **MS-NOL** — no overlap between host-side Step 1 and in-SSD Step 2
//!   (shows the value of the bucketing scheme),
//! * **MS-CC** — the ISP tasks run on the SSD controller's existing embedded
//!   cores instead of the specialized accelerators (shows the value — and
//!   bandwidth-scaling behaviour — of the lightweight accelerators),
//!
//! plus **MS-NIdx** for abundance estimation (unified index generated in
//! software instead of inside the SSD, Fig. 20).

/// One MegIS design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MegisVariant {
    /// Full MegIS: ISP on specialized accelerators, overlapped pipeline.
    Full,
    /// MegIS without overlapping Step 1 and Step 2.
    NoOverlap,
    /// MegIS with ISP executed on the SSD controller's embedded cores.
    ControllerCores,
    /// MegIS's accelerators placed outside the SSD (no ISP).
    OutsideSsd,
}

impl MegisVariant {
    /// All variants, in the order used by Fig. 12.
    pub const ALL: [MegisVariant; 4] = [
        MegisVariant::OutsideSsd,
        MegisVariant::NoOverlap,
        MegisVariant::ControllerCores,
        MegisVariant::Full,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            MegisVariant::Full => "MS",
            MegisVariant::NoOverlap => "MS-NOL",
            MegisVariant::ControllerCores => "MS-CC",
            MegisVariant::OutsideSsd => "Ext-MS",
        }
    }

    /// Returns `true` if this variant processes the database inside the SSD.
    pub fn uses_isp(self) -> bool {
        !matches!(self, MegisVariant::OutsideSsd)
    }

    /// Returns `true` if this variant overlaps Step 1 with Step 2.
    pub fn overlaps_steps(self) -> bool {
        !matches!(self, MegisVariant::NoOverlap)
    }

    /// Returns `true` if the ISP work runs on the controller's embedded cores
    /// rather than the specialized accelerators.
    pub fn uses_controller_cores(self) -> bool {
        matches!(self, MegisVariant::ControllerCores)
    }
}

impl std::fmt::Display for MegisVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(MegisVariant::Full.label(), "MS");
        assert_eq!(MegisVariant::NoOverlap.label(), "MS-NOL");
        assert_eq!(MegisVariant::ControllerCores.label(), "MS-CC");
        assert_eq!(MegisVariant::OutsideSsd.label(), "Ext-MS");
    }

    #[test]
    fn variant_properties() {
        assert!(MegisVariant::Full.uses_isp());
        assert!(!MegisVariant::OutsideSsd.uses_isp());
        assert!(!MegisVariant::NoOverlap.overlaps_steps());
        assert!(MegisVariant::ControllerCores.uses_controller_cores());
        assert!(!MegisVariant::Full.uses_controller_cores());
    }

    #[test]
    fn all_variants_listed_once() {
        let mut labels: Vec<&str> = MegisVariant::ALL.iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
