//! Deterministic, seeded fault injection for the simulated device array.
//!
//! A real SSD array fails in ways a clean simulation never exercises:
//! transient command errors, latency spikes, and whole-device loss. A
//! [`FaultPlan`] injects exactly those failures at the shard-worker seam —
//! the point where a `ShardCommand` would be served — so every recovery
//! path in the service (retry, failover, per-job failure isolation) runs
//! under test against the same byte-parity oracle as the clean engine.
//!
//! # Determinism
//!
//! Every decision is a pure function of `(plan seed, seq, shard-of-record,
//! stage, attempt)` via a splitmix64-style hash: no RNG state, no
//! dependence on thread interleaving, wall clock, or which physical worker
//! happens to serve the command (decisions key on the *record* shard, which
//! failover never changes). Two runs with the same plan and workload inject
//! byte-identical fault schedules, which is what makes the chaos property
//! suite reproducible.
//!
//! The transient-fault hash deliberately excludes the attempt number: a
//! command the plan samples for failure fails on attempts
//! `0..transient_burst` and then succeeds, so the retry accounting in
//! `ShardStats` is exact (`faults == retries` whenever every fault is
//! recoverable) rather than probabilistic per attempt.

use std::time::Duration;

use crate::trace::TraceStage;

/// What the plan injects for one `(seq, shard, stage, attempt)` service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// The command fails with a transient device error; the completer
    /// retries it against its budget.
    Transient,
    /// The command is served correctly but the device stalls for the extra
    /// duration first (a latency spike — what the command deadline exists
    /// to cut short).
    Spike(Duration),
    /// The worker panics while serving this command (caught at the seam;
    /// fails the owning job only).
    Panic,
}

/// A deterministic, seeded schedule of injected device faults.
///
/// Installed with `EngineConfig::with_fault_plan`; the default engine has
/// no plan and pays nothing for the feature. All builder methods are
/// chainable and the plan is immutable once the engine starts.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    transient_burst: u32,
    spike_rate: f64,
    spike: Duration,
    dead_shards: Vec<(usize, u64)>,
    panic_faults: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; add faults with the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_burst: 1,
            ..FaultPlan::default()
        }
    }

    /// Samples each `(seq, shard, stage)` command for a transient failure
    /// with the given probability. `1.0` fails every command (once per
    /// burst — see [`FaultPlan::with_transient_burst`]).
    pub fn with_transient_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.transient_rate = rate;
        self
    }

    /// How many consecutive attempts of a sampled command fail before it
    /// succeeds (default 1). A burst larger than the engine's retry budget
    /// exhausts the budget and fails the job.
    pub fn with_transient_burst(mut self, burst: u32) -> FaultPlan {
        assert!(burst >= 1, "a transient burst fails at least once");
        self.transient_burst = burst;
        self
    }

    /// Samples each command's first attempt for a latency spike of `extra`
    /// on top of the configured device latency.
    pub fn with_latency_spike(mut self, rate: f64, extra: Duration) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.spike_rate = rate;
        self.spike = extra;
        self
    }

    /// Kills the given shard's worker permanently after it has popped
    /// `after_commands` commands; the command in hand fails with a
    /// dead-shard error and the completer fails over to survivors.
    pub fn with_shard_death(mut self, shard: usize, after_commands: u64) -> FaultPlan {
        self.dead_shards.push((shard, after_commands));
        self
    }

    /// Injects a worker panic on the first attempt of the given
    /// `(seq, shard-of-record)` command — the non-recoverable per-job
    /// failure (caught at the seam; the rest of the engine keeps serving).
    pub fn with_worker_panic(mut self, seq: usize, shard: usize) -> FaultPlan {
        self.panic_faults.push((seq, shard));
        self
    }

    /// The decision for serving `(seq, shard-of-record, stage)` on its
    /// `attempt`-th try (0-based), or `None` for a clean service.
    pub fn decide(
        &self,
        seq: usize,
        shard: usize,
        stage: TraceStage,
        attempt: u32,
    ) -> Option<FaultDecision> {
        if attempt == 0 && self.panic_faults.contains(&(seq, shard)) {
            return Some(FaultDecision::Panic);
        }
        if attempt < self.transient_burst
            && self.sample(seq, shard, stage, 0x7261_7473) < self.transient_rate
        {
            return Some(FaultDecision::Transient);
        }
        if attempt == 0 && self.sample(seq, shard, stage, 0x6b69_7073) < self.spike_rate {
            return Some(FaultDecision::Spike(self.spike));
        }
        None
    }

    /// If the plan kills this shard, the number of commands its worker
    /// serves before dying.
    pub fn death_after(&self, shard: usize) -> Option<u64> {
        self.dead_shards
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, after)| *after)
    }

    /// Whether the plan injects anything at all (used to keep the
    /// fault-free hot path to a single branch).
    pub fn is_active(&self) -> bool {
        self.transient_rate > 0.0
            || self.spike_rate > 0.0
            || !self.dead_shards.is_empty()
            || !self.panic_faults.is_empty()
    }

    /// A uniform draw in `[0, 1)` keyed on the command identity and a
    /// per-fault-kind salt (never the attempt — see the module docs).
    fn sample(&self, seq: usize, shard: usize, stage: TraceStage, salt: u64) -> f64 {
        let stage_tag = match stage {
            TraceStage::Intersect => 1u64,
            TraceStage::Step3 => 2u64,
        };
        let mut x = self.seed ^ salt;
        x = splitmix64(x.wrapping_add(seq as u64));
        x = splitmix64(x.wrapping_add((shard as u64) << 32 | stage_tag));
        // 53 high bits → an exact f64 in [0, 1).
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_a_pure_function_of_the_key() {
        let plan = FaultPlan::seeded(42)
            .with_transient_rate(0.5)
            .with_latency_spike(0.3, Duration::from_millis(1));
        for seq in 0..50 {
            for shard in 0..4 {
                for stage in [TraceStage::Intersect, TraceStage::Step3] {
                    let first = plan.decide(seq, shard, stage, 0);
                    for _ in 0..3 {
                        assert_eq!(plan.decide(seq, shard, stage, 0), first);
                    }
                }
            }
        }
    }

    #[test]
    fn seeds_produce_different_schedules() {
        let a = FaultPlan::seeded(1).with_transient_rate(0.5);
        let b = FaultPlan::seeded(2).with_transient_rate(0.5);
        let differs = (0..100).any(|seq| {
            a.decide(seq, 0, TraceStage::Intersect, 0) != b.decide(seq, 0, TraceStage::Intersect, 0)
        });
        assert!(differs, "different seeds must not share a fault schedule");
    }

    #[test]
    fn rate_one_faults_every_attempt_inside_the_burst_then_none() {
        let plan = FaultPlan::seeded(7)
            .with_transient_rate(1.0)
            .with_transient_burst(3);
        for seq in 0..10 {
            for attempt in 0..3 {
                assert_eq!(
                    plan.decide(seq, 1, TraceStage::Step3, attempt),
                    Some(FaultDecision::Transient),
                    "attempt {attempt} inside the burst must fail"
                );
            }
            assert_eq!(
                plan.decide(seq, 1, TraceStage::Step3, 3),
                None,
                "the attempt after the burst must succeed"
            );
        }
    }

    #[test]
    fn rate_zero_injects_nothing_and_is_inactive() {
        let plan = FaultPlan::seeded(9);
        assert!(!plan.is_active());
        for seq in 0..100 {
            assert_eq!(plan.decide(seq, 0, TraceStage::Intersect, 0), None);
        }
        assert!(FaultPlan::seeded(9).with_transient_rate(0.01).is_active());
    }

    #[test]
    fn panic_faults_hit_only_their_exact_command_first_attempt() {
        let plan = FaultPlan::seeded(3).with_worker_panic(4, 1);
        assert_eq!(
            plan.decide(4, 1, TraceStage::Intersect, 0),
            Some(FaultDecision::Panic)
        );
        assert_eq!(
            plan.decide(4, 1, TraceStage::Step3, 0),
            Some(FaultDecision::Panic),
            "the panic keys on (seq, shard), not the stage"
        );
        assert_eq!(plan.decide(4, 1, TraceStage::Intersect, 1), None);
        assert_eq!(plan.decide(4, 0, TraceStage::Intersect, 0), None);
        assert_eq!(plan.decide(5, 1, TraceStage::Intersect, 0), None);
    }

    #[test]
    fn shard_death_is_looked_up_per_shard() {
        let plan = FaultPlan::seeded(0).with_shard_death(2, 5);
        assert_eq!(plan.death_after(2), Some(5));
        assert_eq!(plan.death_after(0), None);
        assert!(plan.is_active());
    }

    #[test]
    fn observed_transient_rate_tracks_the_configured_rate() {
        let plan = FaultPlan::seeded(1234).with_transient_rate(0.25);
        let n = 4000;
        let hits = (0..n)
            .filter(|&seq| plan.decide(seq, 0, TraceStage::Intersect, 0).is_some())
            .count();
        let observed = hits as f64 / n as f64;
        assert!(
            (observed - 0.25).abs() < 0.05,
            "observed transient rate {observed} far from configured 0.25"
        );
    }
}
