//! Modeled-time account: what the batch the engine just executed would cost
//! at paper scale, cross-checked against the analytic models.
//!
//! The engine runs functionally on synthetic in-memory data, so its wall
//! clock says nothing about terabyte-scale behavior. This module evaluates
//! the same batch shape (sample count, shard count, scheduling overlap)
//! through [`MegisTimingModel`], reporting:
//!
//! * the *independent-runs baseline* — every sample analyzed back-to-back
//!   ([`baseline_multi_sample`], the `1 sample` bars of Fig. 21),
//! * the *pipelined* plan — Step 1 of sample `i+1` overlapped with the
//!   in-SSD Steps 2–3 of sample `i`, with k-mer buffering across samples
//!   ([`MegisTimingModel::multi_sample_breakdown`], §4.7), and
//! * the *shard scaling* series — the in-SSD intersection phase as the
//!   database is partitioned across 1..N SSDs (Fig. 15).

use megis::pipeline::{baseline_multi_sample, MegisTimingModel};
use megis_host::system::SystemConfig;
use megis_ssd::timing::SimDuration;
use megis_tools::timing::Breakdown;
use megis_tools::workload::WorkloadSpec;

/// NVMe-style command-queue model: per-shard queue depth plus the host-side
/// submission and completion-reaping latencies a deeper queue hides.
///
/// The model prices one device's steady-state command cycle. With queue
/// depth `d`, while the host spends the round trip `r = submission +
/// completion` turning one completion into the next submission, the device
/// has `d - 1` other queued commands to chew through; the per-command idle
/// bubble is therefore `max(0, r - (d - 1) * service)` and utilization
/// saturates once `d >= 1 + r / service`. This is the same bounded-queue
/// framing GenStore/MetaStore use for their per-device command streams, and
/// what the `queue_depth_sweep` experiment compares measurements against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueModel {
    /// The *configured* operating point: commands that may be outstanding
    /// per device in the run this model describes. The evaluation methods
    /// ([`QueueModel::cycle_time`] and friends) take an explicit depth
    /// argument instead of reading this field, so one latency configuration
    /// can price alternative depths — that is what
    /// [`ModeledAccount::queue_depth_curve`] and the `queue_depth_sweep`
    /// experiment do.
    pub depth: usize,
    /// Host-side cost of issuing one command.
    pub submission_latency: SimDuration,
    /// Host-side cost of reaping one completion.
    pub completion_latency: SimDuration,
}

impl Default for QueueModel {
    /// Depth 1 with zero latencies: the degenerate model under which queue
    /// depth changes nothing (used when the caller does not model queues).
    fn default() -> QueueModel {
        QueueModel {
            depth: 1,
            submission_latency: SimDuration::from_secs(0.0),
            completion_latency: SimDuration::from_secs(0.0),
        }
    }
}

impl QueueModel {
    /// The host round trip per command: submission plus completion latency.
    pub fn round_trip(&self) -> SimDuration {
        self.submission_latency + self.completion_latency
    }

    /// Steady-state cycle time of one command at `depth` given the device's
    /// per-command `service` time: service plus the idle bubble left after
    /// `depth - 1` queued commands have covered what they can of the host
    /// round trip.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn cycle_time(&self, depth: usize, service: SimDuration) -> SimDuration {
        assert!(depth > 0, "queue depth must be positive");
        let covered = service * (depth - 1) as f64;
        service + self.round_trip().saturating_sub(covered)
    }

    /// The per-command idle bubble at `depth`: the slice of the cycle the
    /// device spends waiting on the host round trip, `cycle_time − service`
    /// (zero once the queue is deep enough to hide the whole round trip).
    /// This is the modeled counterpart of the *stall* time the straggler
    /// analyzer measures per device from the trace.
    pub fn idle_bubble(&self, depth: usize, service: SimDuration) -> SimDuration {
        self.cycle_time(depth, service).saturating_sub(service)
    }

    /// Device utilization at `depth`: `service / cycle_time`, in `(0, 1]`.
    pub fn utilization(&self, depth: usize, service: SimDuration) -> f64 {
        if service.is_zero() {
            return 1.0;
        }
        service / self.cycle_time(depth, service)
    }

    /// Modeled throughput at `depth` relative to depth 1 (≥ 1, saturating
    /// at `1 + round_trip / service` once the queue hides the whole round
    /// trip).
    pub fn throughput_multiplier(&self, depth: usize, service: SimDuration) -> f64 {
        if service.is_zero() {
            return 1.0;
        }
        self.cycle_time(1, service) / self.cycle_time(depth, service)
    }

    /// The `(depth, throughput multiplier vs depth 1)` curve for depths
    /// `1..=max_depth`.
    pub fn sweep(&self, max_depth: usize, service: SimDuration) -> Vec<(usize, f64)> {
        (1..=max_depth)
            .map(|d| (d, self.throughput_multiplier(d, service)))
            .collect()
    }
}

/// Paper-scale account of one batch shape.
#[derive(Debug, Clone)]
pub struct ModeledAccount {
    /// Number of samples in the batch.
    pub samples: usize,
    /// Number of SSDs the database is sharded across.
    pub shards: usize,
    /// Every sample analyzed independently, back to back.
    pub independent: Breakdown,
    /// The §4.7 pipelined multi-sample plan.
    pub pipelined: Breakdown,
    /// `(ssd_count, speedup)` of the in-SSD intersection phase relative to
    /// one SSD, for each count in `1..=shards` (Fig. 15 scaling).
    pub shard_speedups: Vec<(usize, f64)>,
    /// Modeled time for one shard's device to stream its disjoint database
    /// partition at internal bandwidth — the per-device Step 2 cost that the
    /// Fig. 15 partitioning divides across SSDs.
    pub shard_stream_time: SimDuration,
    /// Modeled time for the *critical-path* device to stream-merge its
    /// contiguous partition of the candidate reference indexes into a
    /// partial unified index — the gating share of Step 3's in-SSD index
    /// generation (Fig. 9) once the candidate list is partitioned across
    /// the array. `step3::partition_candidates` cuts the list by modeled
    /// cost, but a contiguous cut cannot split a candidate, so the loaded
    /// device holds at most `total / shards` plus one candidate's worth of
    /// overshoot (modeled at the workload's mean candidate granularity) —
    /// the max per-device cost, not the ceiling-split average a count-based
    /// partition would suggest.
    pub step3_stream_time: SimDuration,
    /// The command-queue model the account was evaluated under.
    pub queue: QueueModel,
    /// `(depth, modeled throughput multiplier vs depth 1)` for depths up to
    /// `max(8, queue.depth)`, with the per-command service time taken as
    /// [`ModeledAccount::shard_stream_time`]. At paper scale the database
    /// stream dominates NVMe round trips, so this curve is nearly flat —
    /// the point of reporting it next to a measured sweep is to show *when*
    /// depth matters (round trip comparable to service time) and when it
    /// cannot.
    pub queue_depth_curve: Vec<(usize, f64)>,
}

impl ModeledAccount {
    /// Evaluates the account for a batch of `samples` on the base (typically
    /// single-SSD) `system`.
    ///
    /// The two series are the paper's two separate axes: the
    /// pipelined-vs-independent comparison is evaluated on `system` as given
    /// (Fig. 21 compares scheduling plans on one machine), while the shard
    /// series replicates `system`'s first SSD over `1..=shards` devices
    /// (Fig. 15 sweeps the device count).
    ///
    /// # Panics
    ///
    /// Panics if `samples` or `shards` is zero.
    pub fn compute(
        system: &SystemConfig,
        workload: &WorkloadSpec,
        samples: usize,
        shards: usize,
    ) -> ModeledAccount {
        ModeledAccount::compute_with_queue(system, workload, samples, shards, QueueModel::default())
    }

    /// Evaluates the account under an explicit [`QueueModel`] (per-shard
    /// command-queue depth plus host submission/completion latencies); the
    /// engine passes its configured queue parameters here so the modeled
    /// depth curve matches what the functional run simulates.
    ///
    /// # Panics
    ///
    /// Panics if `samples`, `shards`, or `queue.depth` is zero.
    pub fn compute_with_queue(
        system: &SystemConfig,
        workload: &WorkloadSpec,
        samples: usize,
        shards: usize,
        queue: QueueModel,
    ) -> ModeledAccount {
        assert!(samples > 0, "at least one sample is required");
        assert!(shards > 0, "at least one shard is required");
        assert!(queue.depth > 0, "queue depth must be positive");
        let model = MegisTimingModel::full();
        let single = model.presence_breakdown(system, workload);
        let independent = baseline_multi_sample(&single, samples);
        let pipelined = model.multi_sample_breakdown(system, workload, samples);

        let intersection_at = |count: usize| -> SimDuration {
            let sys = system.clone().with_ssd_count(count);
            model
                .presence_breakdown(&sys, workload)
                .phase("intersection finding")
                .expect("model reports an intersection phase")
        };
        let base = intersection_at(1);
        let shard_speedups = (1..=shards)
            .map(|count| (count, base / intersection_at(count)))
            .collect();

        // Per-shard service time: each device's single-SSD view streams its
        // partition. `ShardSet` builds ceiling-sized contiguous chunks, so
        // the critical-path shard holds ceil(db / shards) bytes — a floor
        // split would under-model it whenever the size doesn't divide evenly.
        let shard_view = system
            .clone()
            .with_ssd_count(shards)
            .shard_systems()
            .into_iter()
            .next()
            .expect("sharded system has at least one device");
        let shard_stream_time = per_shard_bytes(workload.metalign_db, shards)
            .time_at(shard_view.aggregate_internal_read_bandwidth());
        let step3_stream_time = step3_max_device_bytes(
            workload.candidate_reference_indexes,
            workload.candidate_species,
            shards,
        )
        .time_at(shard_view.aggregate_internal_read_bandwidth());
        let queue_depth_curve = queue.sweep(queue.depth.max(8), shard_stream_time);

        ModeledAccount {
            samples,
            shards,
            independent,
            pipelined,
            shard_speedups,
            shard_stream_time,
            step3_stream_time,
            queue,
            queue_depth_curve,
        }
    }

    /// Total modeled time of the independent-runs baseline.
    pub fn independent_total(&self) -> SimDuration {
        self.independent.total()
    }

    /// Total modeled time of the pipelined plan.
    pub fn pipelined_total(&self) -> SimDuration {
        self.pipelined.total()
    }

    /// Speedup of the pipelined plan over independent runs (> 1 whenever
    /// batching amortizes anything).
    pub fn pipelining_speedup(&self) -> f64 {
        self.independent_total() / self.pipelined_total()
    }

    /// Modeled per-sample Step 2 device time when `members` co-resident
    /// samples share one coalesced sweep: the device streams its database
    /// partition **once** per command regardless of how many samples'
    /// query slices ride on it (the query cursors are negligible against
    /// the flash-resident range scan), so the per-member cost is the full
    /// range scan amortized over the batch —
    /// `shard_stream_time / members`. `members == 1` is exactly
    /// [`ModeledAccount::shard_stream_time`]: an uncoalesced command is a
    /// batch of one.
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero.
    pub fn coalesced_step2_time(&self, members: usize) -> SimDuration {
        assert!(members > 0, "a sweep amortizes over at least one member");
        self.shard_stream_time / members as f64
    }

    /// Modeled intersection-phase speedup at the account's shard count,
    /// relative to one SSD.
    pub fn shard_speedup(&self) -> f64 {
        self.shard_speedups.last().map(|(_, s)| *s).unwrap_or(1.0)
    }

    /// Returns `true` if the account satisfies the paper's qualitative
    /// claims: pipelined strictly below independent for multi-sample
    /// batches, and intersection scaling within `tolerance` of linear in the
    /// shard count (e.g. `0.9` accepts ≥ 90% of linear).
    pub fn is_consistent(&self, tolerance: f64) -> bool {
        let pipelining_ok = self.samples == 1 || self.pipelined_total() < self.independent_total();
        let scaling_ok = self
            .shard_speedups
            .iter()
            .all(|(count, speedup)| *speedup >= tolerance * *count as f64);
        pipelining_ok && scaling_ok
    }
}

/// Bytes held by the critical-path shard of an `shards`-way split: the
/// ceiling division matching `ShardSet::build`'s chunking, so that
/// `shards * per_shard_bytes(db, shards)` always covers the whole database.
///
/// These are *device-resident* bytes — what each simulated SSD stores and
/// streams during Step 2, which genuinely divides across devices. Host
/// memory is accounted separately: the functional shards are zero-copy
/// views over one shared columnar storage (`ShardSet::resident_bytes`
/// stays ≈ 1× the database at any shard count), so the modeled per-device
/// split must not be mistaken for an N-way host copy.
fn per_shard_bytes(
    database: megis_ssd::timing::ByteSize,
    shards: usize,
) -> megis_ssd::timing::ByteSize {
    megis_ssd::timing::ByteSize::from_bytes(database.as_bytes().div_ceil(shards as u64))
}

/// Bytes streamed by the critical-path device under the cost-aware
/// contiguous candidate partition: `total / shards` plus at most one
/// candidate's overshoot — the partitioner's worst case, because a
/// contiguous prefix cut can overshoot the ideal boundary by less than one
/// candidate but never more — capped at the whole volume. The overshoot
/// granule is modeled at the workload's mean candidate index size
/// (`total / candidates`); with paper-scale candidate counts it is
/// negligible and scaling stays near-linear, while a coarse candidate set
/// (few, large indexes) visibly saturates — the modeled form of the
/// 8-device cliff the count-based split suffered everywhere.
fn step3_max_device_bytes(
    total: megis_ssd::timing::ByteSize,
    candidates: u64,
    shards: usize,
) -> megis_ssd::timing::ByteSize {
    let total_bytes = total.as_bytes();
    if shards <= 1 || candidates == 0 {
        return total;
    }
    let granule = total_bytes.div_ceil(candidates);
    megis_ssd::timing::ByteSize::from_bytes(
        (total_bytes.div_ceil(shards as u64) + granule).min(total_bytes),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::sample::Diversity;
    use megis_ssd::config::SsdConfig;
    use megis_ssd::timing::ByteSize;

    fn account(samples: usize, shards: usize) -> ModeledAccount {
        let system = SystemConfig::reference(SsdConfig::ssd_c());
        let workload = WorkloadSpec::cami(Diversity::Medium);
        ModeledAccount::compute(&system, &workload, samples, shards)
    }

    #[test]
    fn pipelined_beats_independent_for_batches() {
        let acct = account(16, 1);
        assert!(acct.pipelined_total() < acct.independent_total());
        assert!(acct.pipelining_speedup() > 1.0);
        assert!(acct.is_consistent(0.9));
    }

    #[test]
    fn shard_scaling_is_near_linear_to_eight() {
        let acct = account(4, 8);
        assert_eq!(acct.shard_speedups.len(), 8);
        for (count, speedup) in &acct.shard_speedups {
            assert!(
                *speedup >= 0.9 * *count as f64,
                "{count} shards give only {speedup:.2}x"
            );
        }
        assert!(acct.shard_speedup() >= 7.0);
    }

    #[test]
    fn coalesced_step2_time_amortizes_monotonically() {
        let acct = account(4, 4);
        // A batch of one is the uncoalesced command.
        assert_eq!(acct.coalesced_step2_time(1), acct.shard_stream_time);
        // Per-member device time strictly decreases as co-residents share
        // the sweep, and N members cost exactly 1/N of the scan each.
        for members in 2..=8usize {
            assert!(
                acct.coalesced_step2_time(members) < acct.coalesced_step2_time(members - 1),
                "amortization must be strictly monotone at {members} members"
            );
            let ratio = acct.shard_stream_time / acct.coalesced_step2_time(members);
            assert!(
                (ratio - members as f64).abs() < 1e-12,
                "expected exactly {members}x amortization, got {ratio:.3}x"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn coalesced_step2_time_rejects_zero_members() {
        account(1, 1).coalesced_step2_time(0);
    }

    #[test]
    fn shard_stream_time_divides_with_shard_count() {
        let one = account(4, 1).shard_stream_time;
        let four = account(4, 4).shard_stream_time;
        let ratio = one / four;
        assert!(
            (ratio - 4.0).abs() < 0.01,
            "4-way split should quarter the per-shard stream, got {ratio:.3}x"
        );
    }

    #[test]
    fn step3_stream_time_divides_near_linearly_at_paper_granularity() {
        // Partitioning the candidate indexes across devices divides the
        // critical-path unified-index generation stream near-linearly: the
        // max per-device cost is total/shards plus at most one candidate's
        // overshoot, and at paper scale (thousands of candidates) that
        // granule is negligible — but the ratio is strictly *below* an
        // exact split, which only a count-based average would claim.
        let one = account(4, 1).step3_stream_time;
        let four = account(4, 4).step3_stream_time;
        assert!(one > SimDuration::from_secs(0.0));
        let ratio = one / four;
        assert!(
            ratio > 3.95 && ratio <= 4.0,
            "4-way split should nearly quarter the step 3 critical path, got {ratio:.3}x"
        );
    }

    #[test]
    fn step3_max_device_bytes_saturates_on_coarse_candidates() {
        // 4 candidates over 8 devices: the critical-path device still holds
        // a whole candidate (total/8 + granule = 1/8 + 1/4 of the volume),
        // so doubling the device count past the candidate count cannot
        // help — the modeled form of the 8-device cliff.
        let total = ByteSize::from_bytes(4096);
        let fine = step3_max_device_bytes(total, 4096, 8);
        assert_eq!(fine.as_bytes(), 4096 / 8 + 1, "fine granule: near-exact");
        let coarse = step3_max_device_bytes(total, 4, 8);
        assert_eq!(coarse.as_bytes(), 4096 / 8 + 4096 / 4);
        assert_eq!(
            step3_max_device_bytes(total, 4, 16).as_bytes(),
            4096 / 16 + 4096 / 4,
            "past the candidate count the granule term dominates"
        );
        // Degenerate shapes stay total: one device, or an empty candidate
        // set (nothing to overshoot on).
        assert_eq!(step3_max_device_bytes(total, 4, 1), total);
        assert_eq!(step3_max_device_bytes(total, 0, 8), total);
        // The cap: a single candidate on many devices is just the volume.
        assert_eq!(step3_max_device_bytes(total, 1, 8), total);
    }

    #[test]
    fn per_shard_split_uses_ceiling_like_shard_set() {
        // 10 bytes over 4 shards: the biggest chunk holds 3 bytes, and four
        // such chunks cover the database. A floor split (2 bytes) would
        // leave 2 bytes unaccounted on the critical path.
        assert_eq!(per_shard_bytes(ByteSize::from_bytes(10), 4).as_bytes(), 3);
        assert_eq!(per_shard_bytes(ByteSize::from_bytes(12), 4).as_bytes(), 3);
        assert_eq!(per_shard_bytes(ByteSize::from_bytes(701), 8).as_bytes(), 88);
        for (bytes, shards) in [(10u64, 3usize), (701, 8), (1, 5), (1024, 7)] {
            let per = per_shard_bytes(ByteSize::from_bytes(bytes), shards).as_bytes();
            assert!(
                per * shards as u64 >= bytes,
                "{shards} shards x {per} B fail to cover {bytes} B"
            );
        }
    }

    #[test]
    fn shard_stream_time_models_critical_path_at_non_dividing_counts() {
        // 701 GB over 3 shards does not divide evenly; the account must
        // price the ceiling-sized shard that `ShardSet` actually builds.
        let system = SystemConfig::reference(SsdConfig::ssd_c());
        let workload = WorkloadSpec::cami(Diversity::Medium);
        let acct = ModeledAccount::compute(&system, &workload, 4, 3);
        let shard_view = system
            .clone()
            .with_ssd_count(3)
            .shard_systems()
            .into_iter()
            .next()
            .unwrap();
        let expected = per_shard_bytes(workload.metalign_db, 3)
            .time_at(shard_view.aggregate_internal_read_bandwidth());
        assert!(
            (acct.shard_stream_time / expected - 1.0).abs() < 1e-12,
            "stream time must price the ceiling-sized shard"
        );
    }

    #[test]
    fn queue_model_hides_the_round_trip_with_depth() {
        let queue = QueueModel {
            depth: 8,
            submission_latency: SimDuration::from_micros(30.0),
            completion_latency: SimDuration::from_micros(70.0),
        };
        let service = SimDuration::from_micros(50.0);
        // Depth 1: every command pays the full 100 µs round trip on top of
        // 50 µs of service — one third utilization.
        assert!((queue.utilization(1, service) - 50.0 / 150.0).abs() < 1e-12);
        // Depth 2 covers 50 µs of the round trip; depth 3 covers it all.
        assert!((queue.cycle_time(2, service).as_micros() - 100.0).abs() < 1e-9);
        assert!((queue.cycle_time(3, service).as_micros() - 50.0).abs() < 1e-9);
        assert!((queue.utilization(3, service) - 1.0).abs() < 1e-12);
        // The multiplier curve rises monotonically and saturates at
        // 1 + r/s = 3x.
        let curve = queue.sweep(8, service);
        assert_eq!(curve.len(), 8);
        assert_eq!(curve[0], (1, 1.0));
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "curve must be monotone: {curve:?}");
        }
        assert!((curve[7].1 - 3.0).abs() < 1e-9, "saturates at 1 + r/s");
    }

    #[test]
    fn idle_bubble_shrinks_with_depth_and_closes_at_saturation() {
        let queue = QueueModel {
            depth: 4,
            submission_latency: SimDuration::from_micros(30.0),
            completion_latency: SimDuration::from_micros(70.0),
        };
        let service = SimDuration::from_micros(50.0);
        // Depth 1 exposes the whole 100 µs round trip; each extra queued
        // command hides 50 µs of it; depth 3 closes the bubble entirely.
        assert!((queue.idle_bubble(1, service).as_micros() - 100.0).abs() < 1e-9);
        assert!((queue.idle_bubble(2, service).as_micros() - 50.0).abs() < 1e-9);
        assert!(queue.idle_bubble(3, service).is_zero());
        assert!(queue.idle_bubble(8, service).is_zero());
    }

    #[test]
    fn zero_round_trip_makes_depth_irrelevant() {
        let queue = QueueModel::default();
        let service = SimDuration::from_millis(2.0);
        for depth in 1..=8 {
            assert_eq!(queue.throughput_multiplier(depth, service), 1.0);
        }
    }

    #[test]
    fn paper_scale_queue_curve_is_nearly_flat() {
        // At paper scale the per-shard database stream takes seconds while
        // NVMe-class round trips take microseconds, so modeled depth gains
        // are negligible — the account must say so rather than promise
        // speedups the device cannot deliver.
        let system = SystemConfig::reference(SsdConfig::ssd_c());
        let workload = WorkloadSpec::cami(Diversity::Medium);
        let queue = QueueModel {
            depth: 4,
            submission_latency: SimDuration::from_micros(25.0),
            completion_latency: SimDuration::from_micros(25.0),
        };
        let acct = ModeledAccount::compute_with_queue(&system, &workload, 4, 2, queue);
        assert_eq!(acct.queue, queue);
        assert_eq!(acct.queue_depth_curve.len(), 8);
        for (depth, mult) in &acct.queue_depth_curve {
            assert!(
                (*mult - 1.0).abs() < 1e-4,
                "depth {depth} promises {mult:.6}x at paper scale"
            );
        }
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_depth_cycle_rejected() {
        QueueModel::default().cycle_time(0, SimDuration::from_micros(1.0));
    }

    #[test]
    fn single_sample_account_is_consistent() {
        // No pipelining gain exists for one sample; consistency must not
        // demand one.
        let acct = account(1, 2);
        assert!(acct.is_consistent(0.9));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        account(0, 1);
    }
}
