//! Jobs: what clients submit to the batch engine and what they get back.

use std::time::Duration;

use megis::MegisOutput;
use megis_genomics::sample::Sample;

use crate::trace::StageBreakdown;

/// Identifier of one submitted job (its admission sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Scheduling priority of a job. Under the priority policy, higher
/// priorities start Step 1 first; ties are broken by submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work (e.g. re-analysis sweeps).
    Low,
    /// Default for cohort samples.
    #[default]
    Normal,
    /// Time-critical samples (e.g. clinical pathogen identification).
    High,
}

impl Priority {
    /// All priorities, lowest first.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// One sample submitted for analysis.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Client-facing label (e.g. the sample accession).
    pub label: String,
    /// Scheduling priority.
    pub priority: Priority,
    /// The sample to analyze.
    pub sample: Sample,
}

impl JobSpec {
    /// Creates a normal-priority job.
    pub fn new(label: impl Into<String>, sample: Sample) -> JobSpec {
        JobSpec {
            label: label.into(),
            priority: Priority::Normal,
            sample,
        }
    }

    /// Returns the job with a different priority.
    pub fn with_priority(mut self, priority: Priority) -> JobSpec {
        self.priority = priority;
        self
    }
}

/// Completed job: the analysis output plus per-job operational metrics.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's identifier.
    pub id: JobId,
    /// The job's label.
    pub label: String,
    /// The job's priority.
    pub priority: Priority,
    /// Position at which the job entered service (Step 1 start): 0 for the
    /// first job dispatched. Under FIFO this equals submission order; under
    /// the priority policy, higher priorities get smaller positions.
    pub start_position: usize,
    /// Position at which the in-SSD stage (Steps 2–3) served the job. The
    /// engine reorders Step 1 completions before issuing the per-shard
    /// commands, and the completer delivers results in dispatch order even
    /// though per-shard completions arrive out of order, so this always
    /// equals [`JobResult::start_position`] — the in-SSD stage follows
    /// policy order for any Step 1 worker count and command-queue depth
    /// (asserted by the regression tests).
    pub isp_position: usize,
    /// End-to-end analysis output — byte-identical to
    /// `MegisAnalyzer::analyze` on the same sample.
    pub output: MegisOutput,
    /// Time spent queued before Step 1 started.
    pub queue_wait: Duration,
    /// Wall-clock time of host-side Step 1.
    pub step1_time: Duration,
    /// Wall-clock time of the in-SSD stage (sharded intersection, taxID
    /// retrieval, Step 3).
    pub isp_time: Duration,
    /// Total latency from submission to completion.
    pub latency: Duration,
    /// Per-stage decomposition of the job's latency, reconstructed from the
    /// pipeline trace: `None` when tracing was disabled
    /// ([`crate::EngineConfig::trace_capacity`]) or the trace ring evicted
    /// the job's early events. For streaming submissions
    /// [`StageBreakdown::total`] matches [`JobResult::latency`] to well
    /// under 1% (the two are measured independently).
    pub breakdown: Option<StageBreakdown>,
}

/// Why a job failed while the engine kept serving others. A
/// [`crate::JobHandle`] resolves to `Err(JobError)` for the affected job
/// only; whole-engine poison is reserved for unrecoverable coordinator or
/// completer death (see the failure model in `service.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// A command kept failing transiently until the per-command retry
    /// budget ran out.
    RetriesExhausted {
        /// The failed job.
        job: JobId,
        /// Stage label of the exhausted command (`"intersect"`/`"step3"`).
        stage: &'static str,
        /// Shard-of-record of the exhausted command.
        shard: usize,
        /// Attempts made (initial issue plus retries).
        attempts: u32,
    },
    /// A shard worker panicked while serving one of the job's commands
    /// (caught at the worker seam; non-recoverable for this job).
    WorkerPanicked {
        /// The failed job.
        job: JobId,
        /// Shard-of-record of the command being served.
        shard: usize,
    },
    /// Every shard worker died before the job's commands could be served —
    /// there is no survivor to fail over to.
    NoLiveShards {
        /// The failed job.
        job: JobId,
    },
    /// The engine stopped (or its result channel closed) before delivering
    /// the job.
    EngineStopped {
        /// The undelivered job.
        job: JobId,
    },
}

impl JobError {
    /// The failed job's identifier.
    pub fn job(&self) -> JobId {
        match self {
            JobError::RetriesExhausted { job, .. }
            | JobError::WorkerPanicked { job, .. }
            | JobError::NoLiveShards { job }
            | JobError::EngineStopped { job } => *job,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::RetriesExhausted {
                job,
                stage,
                shard,
                attempts,
            } => write!(
                f,
                "{job} failed: {stage} command on shard {shard} still failing after {attempts} attempts (retry budget exhausted)"
            ),
            JobError::WorkerPanicked { job, shard } => {
                write!(f, "{job} failed: shard {shard} worker panicked serving its command")
            }
            JobError::NoLiveShards { job } => {
                write!(f, "{job} failed: no live shard left to serve its commands")
            }
            JobError::EngineStopped { job } => {
                write!(f, "{job} failed: engine stopped before delivering the result")
            }
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::read::ReadSet;

    #[test]
    fn priority_ordering_is_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn job_spec_builder() {
        let sample = Sample::from_reads(ReadSet::new());
        let spec = JobSpec::new("s1", sample).with_priority(Priority::High);
        assert_eq!(spec.label, "s1");
        assert_eq!(spec.priority, Priority::High);
    }

    #[test]
    fn job_id_displays_compactly() {
        assert_eq!(JobId(7).to_string(), "job#7");
    }

    #[test]
    fn job_error_is_a_std_error_with_a_cause_in_display() {
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(JobError::RetriesExhausted {
                job: JobId(3),
                stage: "intersect",
                shard: 1,
                attempts: 4,
            }),
            Box::new(JobError::WorkerPanicked {
                job: JobId(3),
                shard: 0,
            }),
            Box::new(JobError::NoLiveShards { job: JobId(3) }),
            Box::new(JobError::EngineStopped { job: JobId(3) }),
        ];
        for e in &errors {
            let text = e.to_string();
            assert!(text.contains("job#3"), "{text}");
            assert!(text.contains("failed"), "{text}");
        }
        assert_eq!(
            JobError::NoLiveShards { job: JobId(9) }.job(),
            JobId(9),
            "the job accessor names the failed job"
        );
    }
}
