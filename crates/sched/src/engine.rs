//! The batch engine: admission → host Step 1 workers → sharded in-SSD stage.
//!
//! Execution follows the paper's inter-sample pipeline (§4.7): a pool of
//! host worker threads runs Step 1 (k-mer extraction, bucketed sorting,
//! exclusion) on upcoming samples while the in-SSD stage — one intersect
//! worker per database shard behind an NVMe-style bounded command queue,
//! plus a dispatcher/completer pair for slicing, merge accounting, taxID
//! retrieval, and Step 3 — processes the current ones (plural: with
//! [`EngineConfig::queue_depth`] ≥ 2, several samples' intersections are in
//! flight per device at once). Each shard sees only the sub-range of the
//! sorted query list overlapping its disjoint key range
//! ([`ShardSet::slice_queries`]), and the per-shard intersections merge back
//! in shard order (Fig. 15's disjoint multi-SSD partitioning), so the
//! merged intersection is identical to streaming the unsharded database
//! while per-shard query-side work stays O(|Q|/N) on average instead of the
//! O(|Q|) a broadcast would cost every device.
//!
//! [`BatchEngine::run`] is a thin wrapper over the service-mode executor in
//! [`crate::service`]: it hands the closed batch to a fresh
//! [`StreamingEngine`], drains it, and assembles the [`BatchReport`]. Batch
//! mode therefore inherits the executor's guarantees by construction — live
//! policy-order dispatch, and the in-SSD stage serving samples in dispatch
//! order even when many Step 1 workers complete out of order (the reorder
//! buffer described in the [service docs](crate::service)).
//!
//! Every per-job computation routes through the step-level entry points of
//! [`MegisAnalyzer`], which makes the engine's output byte-identical to
//! calling [`MegisAnalyzer::analyze`] per sample — for any worker count,
//! shard count, or admission policy. Scheduling changes only *when* work
//! happens, never *what* is computed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use megis::MegisAnalyzer;
use megis_genomics::sample::Diversity;
use megis_host::accelerators::SortingAccelerator;
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::{ByteSize, SimDuration};
use megis_tools::workload::WorkloadSpec;

use crate::fault::FaultPlan;
use crate::job::{JobError, JobId, JobResult, JobSpec};
use crate::metrics::{BatchReport, LatencyStats, ShardStats};
use crate::model::{ModeledAccount, QueueModel};
use crate::queue::{AdmissionError, JobQueue, SchedPolicy};
use crate::service::{JobHandle, StreamingEngine};
use crate::shard::ShardSet;

/// Configuration of a [`BatchEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Host-side Step 1 worker threads.
    pub workers: usize,
    /// Simulated SSDs the database is sharded across.
    pub shards: usize,
    /// Admission/service-order policy.
    pub policy: SchedPolicy,
    /// Maximum jobs waiting for service before admission rejects. In
    /// service mode the bound counts queued *plus* in-flight jobs.
    pub queue_capacity: usize,
    /// NVMe-style command-queue depth per shard: how many intersection
    /// commands may be outstanding on one simulated SSD (submitted by the
    /// dispatcher, completion not yet reaped). Depth ≥ 2 lets several
    /// samples' intersections be in flight per device — the inter-sample
    /// overlap of §4.7 — while depth 1 serializes each device against the
    /// host round trip.
    pub queue_depth: usize,
    /// Simulated host-side cost of issuing one command (doorbell write,
    /// command build); zero by default so functional tests pay nothing.
    pub submission_latency: Duration,
    /// Simulated host-side cost of reaping one completion (interrupt +
    /// completion-queue processing); zero by default.
    pub completion_latency: Duration,
    /// Simulated per-command device service time (the shard streaming its
    /// database partition for one sample, which at paper scale dwarfs the
    /// in-memory merge the functional shard worker actually computes); zero
    /// by default. The shard worker sleeps this long per command, so the
    /// simulated devices genuinely overlap each other — and overlap the
    /// host — even on a single-core host.
    pub device_latency: Duration,
    /// Simulated *per-candidate* device service time for Step 3 commands, on
    /// top of [`EngineConfig::device_latency`]: a Step 3 command over `k`
    /// candidate references sleeps an extra `k ×` this value, modeling the
    /// per-reference index stream. Zero by default. Unlike the flat
    /// per-command latency, this makes a device's Step 3 service time
    /// proportional to its candidate-range size — which is what lets the
    /// straggler analyzer observe the equal-count partitioning skew the
    /// 8-device sweep suffers from.
    pub step3_item_latency: Duration,
    /// Whether idle devices steal queued Step 3 commands from loaded peers'
    /// queues (`true` by default). Step 2 intersections stay pinned — they
    /// need the owner's database slice — but Step 3 commands resolve against
    /// the shared analyzer and can run anywhere; stealing keeps the whole
    /// array busy when the cost-aware partition is forced to hand one device
    /// a dominant candidate. Results stay tagged with the shard-of-record,
    /// so outputs are byte-identical with stealing on or off.
    pub work_stealing: bool,
    /// Capacity of the pipeline trace ring buffer; `None` (the default)
    /// disables tracing entirely — the zero-cost
    /// [`crate::trace::TraceSink::disabled`] path.
    pub trace_capacity: Option<usize>,
    /// Deterministic seeded fault-injection schedule applied at the
    /// shard-worker seam; `None` (the default) injects nothing and the
    /// fault path costs one `Option` check per command.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Maximum *retries* per command (re-issues after the initial attempt)
    /// before the owning job fails with
    /// [`crate::JobError::RetriesExhausted`].
    pub retry_budget: u32,
    /// Base backoff before a transient-failure re-issue; doubled per
    /// attempt (capped at 8×), deterministic. Zero (the default) re-issues
    /// immediately.
    pub retry_backoff: Duration,
    /// Deadline after which an outstanding command is considered stuck and
    /// re-issued (counting against the retry budget); `None` (the default)
    /// never re-issues on time. Protects the reaping loop against a
    /// latency-spiked or wedged device.
    pub command_deadline: Option<Duration>,
    /// Cross-sample query coalescing window; `None` (the default) disables
    /// coalescing — every sample dispatches its own per-shard commands,
    /// byte-identical to the uncoalesced engine. `Some(window)` lets the
    /// dispatcher hold a ready sample's commands up to this long to admit
    /// co-resident samples' query slices into one shared
    /// multi-member intersect command per shard (one galloping sweep over
    /// the shard's database range serves every member). Batch size is
    /// bounded by the queue depth and, upstream, by the Step 1 dispatch
    /// lookahead gate.
    pub coalescing_window: Option<Duration>,
    /// Completions covered by the service-mode rolling metrics window.
    pub metrics_window: usize,
    /// Base system for the modeled-time account: the pipelining comparison
    /// runs on it as given, and the shard-scaling series replicates its
    /// first SSD over `1..=shards` devices.
    pub system: SystemConfig,
    /// Paper-scale workload the modeled-time account is evaluated on.
    pub workload: WorkloadSpec,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 2,
            shards: 2,
            policy: SchedPolicy::Fifo,
            queue_capacity: 1024,
            queue_depth: 4,
            submission_latency: Duration::ZERO,
            completion_latency: Duration::ZERO,
            device_latency: Duration::ZERO,
            step3_item_latency: Duration::ZERO,
            work_stealing: true,
            trace_capacity: None,
            fault_plan: None,
            retry_budget: 3,
            retry_backoff: Duration::ZERO,
            command_deadline: None,
            coalescing_window: None,
            metrics_window: 256,
            // The paper's multi-sample configuration (Fig. 21): without the
            // sorting accelerator, host-side sorting dominates and hides the
            // in-SSD work entirely, which would make the modeled pipelining
            // gain degenerate to zero.
            system: SystemConfig::reference(SsdConfig::ssd_c())
                .with_dram_capacity(ByteSize::from_gb(256.0))
                .with_sorting_accelerator(SortingAccelerator::default()),
            workload: WorkloadSpec::cami(Diversity::Medium),
        }
    }
}

impl EngineConfig {
    /// The default configuration (2 workers, 2 shards, FIFO).
    pub fn new() -> EngineConfig {
        EngineConfig::default()
    }

    /// Sets the Step 1 worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> EngineConfig {
        assert!(workers > 0, "at least one worker is required");
        self.workers = workers;
        self
    }

    /// Sets the shard (simulated SSD) count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> EngineConfig {
        assert!(shards > 0, "at least one shard is required");
        self.shards = shards;
        self
    }

    /// Sets the admission policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> EngineConfig {
        self.policy = policy;
        self
    }

    /// Sets the admission queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_queue_capacity(mut self, capacity: usize) -> EngineConfig {
        assert!(capacity > 0, "queue capacity must be positive");
        self.queue_capacity = capacity;
        self
    }

    /// Sets the per-shard NVMe-style command-queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_queue_depth(mut self, depth: usize) -> EngineConfig {
        assert!(depth > 0, "queue depth must be positive");
        self.queue_depth = depth;
        self
    }

    /// Sets the simulated host-side submission and completion-reaping
    /// latencies (both default to zero). Nonzero values make queue depth
    /// matter in wall-clock terms: they are the round trip a deeper queue
    /// hides (see [`crate::model::QueueModel`]).
    pub fn with_command_latencies(
        mut self,
        submission: Duration,
        completion: Duration,
    ) -> EngineConfig {
        self.submission_latency = submission;
        self.completion_latency = completion;
        self
    }

    /// Sets the simulated per-command device service time (defaults to
    /// zero). The shard workers sleep it per command, modeling the partition
    /// stream that dominates real device service; it is the `service` term
    /// the depth curve of [`crate::model::QueueModel`] divides the round
    /// trip by.
    pub fn with_device_latency(mut self, device: Duration) -> EngineConfig {
        self.device_latency = device;
        self
    }

    /// Sets the simulated per-candidate Step 3 service time (defaults to
    /// zero): each Step 3 command sleeps an extra `stream_units ×` this
    /// value, where a command's stream units are its cost-normalized
    /// candidate count (exactly `candidates` under uniform per-candidate
    /// costs). A device's Step 3 busy time thus scales with the index bytes
    /// it streams, and the straggler analyzer can attribute partitioning
    /// skew.
    pub fn with_step3_item_latency(mut self, per_candidate: Duration) -> EngineConfig {
        self.step3_item_latency = per_candidate;
        self
    }

    /// Enables or disables Step 3 work stealing between devices (enabled by
    /// default). Disabling pins every command to its shard-of-record — the
    /// pre-stealing execution model — which tests use to compare stolen and
    /// pinned runs byte-for-byte.
    pub fn with_work_stealing(mut self, enabled: bool) -> EngineConfig {
        self.work_stealing = enabled;
        self
    }

    /// Enables pipeline tracing with the default ring capacity
    /// ([`crate::trace::DEFAULT_TRACE_CAPACITY`] events). The engine then
    /// records every lifecycle event and its reports carry a
    /// [`crate::trace::StageBreakdown`], a
    /// [`crate::trace::StragglerReport`], and the raw
    /// [`crate::trace::TraceLog`].
    pub fn with_tracing(self) -> EngineConfig {
        self.with_trace_capacity(crate::trace::DEFAULT_TRACE_CAPACITY)
    }

    /// Enables pipeline tracing with an explicit ring capacity (events kept;
    /// oldest evicted beyond it).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_trace_capacity(mut self, capacity: usize) -> EngineConfig {
        assert!(capacity > 0, "trace capacity must be positive");
        self.trace_capacity = Some(capacity);
        self
    }

    /// Installs a deterministic seeded [`FaultPlan`]: the shard workers
    /// consult it before serving every command and inject the transient
    /// errors, latency spikes, shard deaths, and worker panics it
    /// schedules. The engine's recovery machinery (retry, failover, per-job
    /// failure isolation) then runs for real — with a recoverable plan the
    /// output stays byte-identical to the sequential oracle.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> EngineConfig {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Sets the per-command retry budget (re-issues after the initial
    /// attempt; default 3). A budget of zero fails a job on its first
    /// transient fault.
    pub fn with_retry_budget(mut self, budget: u32) -> EngineConfig {
        self.retry_budget = budget;
        self
    }

    /// Sets the base retry backoff (default zero = immediate re-issue).
    /// The delay before attempt `n + 1` is `backoff × 2^min(n, 3)` —
    /// capped, deterministic exponential.
    pub fn with_retry_backoff(mut self, backoff: Duration) -> EngineConfig {
        self.retry_backoff = backoff;
        self
    }

    /// Sets the command deadline: an outstanding command unanswered for
    /// this long is re-issued (counting against the retry budget), so a
    /// stuck device delays its job instead of wedging the reaping loop.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn with_command_deadline(mut self, deadline: Duration) -> EngineConfig {
        assert!(!deadline.is_zero(), "command deadline must be positive");
        self.command_deadline = Some(deadline);
        self
    }

    /// Enables cross-sample query coalescing: the dispatcher may hold a
    /// ready sample's per-shard commands up to `window` to merge
    /// co-resident samples' sorted query slices into one multi-member
    /// intersect command per shard — a single galloping sweep over the
    /// shard's database range serving every member, with per-`(seq, shard)`
    /// result demultiplexing at the completer. Off by default; results are
    /// byte-identical either way, only the sweep count changes.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (use the default to disable coalescing).
    pub fn with_coalescing_window(mut self, window: Duration) -> EngineConfig {
        assert!(!window.is_zero(), "coalescing window must be positive");
        self.coalescing_window = Some(window);
        self
    }

    /// Sets the number of completions the service-mode rolling metrics
    /// window covers.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_metrics_window(mut self, window: usize) -> EngineConfig {
        assert!(window > 0, "metrics window must be positive");
        self.metrics_window = window;
        self
    }

    /// Sets the modeled system template (its first SSD is replicated per
    /// shard).
    pub fn with_system(mut self, system: SystemConfig) -> EngineConfig {
        self.system = system;
        self
    }

    /// Sets the modeled workload.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> EngineConfig {
        self.workload = workload;
        self
    }

    /// The [`QueueModel`] matching this configuration's queue depth and
    /// simulated command latencies (what the engine hands to
    /// [`ModeledAccount::compute_with_queue`]).
    pub fn queue_model(&self) -> QueueModel {
        QueueModel {
            depth: self.queue_depth,
            submission_latency: SimDuration::from_secs(self.submission_latency.as_secs_f64()),
            completion_latency: SimDuration::from_secs(self.completion_latency.as_secs_f64()),
        }
    }
}

/// Error from [`BatchEngine::submit_all`]: a submission was rejected after
/// some jobs had already been admitted. The admitted jobs remain queued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialAdmission {
    /// Jobs admitted before the rejection, in submission order.
    pub admitted: Vec<JobId>,
    /// The rejection that stopped the batch.
    pub error: AdmissionError,
}

impl std::fmt::Display for PartialAdmission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after {} jobs were admitted",
            self.error,
            self.admitted.len()
        )
    }
}

impl std::error::Error for PartialAdmission {}

/// The multi-sample batch engine.
#[derive(Debug)]
pub struct BatchEngine {
    analyzer: Arc<MegisAnalyzer>,
    shards: ShardSet,
    queue: JobQueue,
    config: EngineConfig,
}

impl BatchEngine {
    /// Builds an engine around an analyzer, sharding its database across the
    /// configured number of simulated SSDs.
    pub fn new(analyzer: MegisAnalyzer, config: EngineConfig) -> BatchEngine {
        assert!(config.workers > 0, "at least one worker is required");
        assert!(config.shards > 0, "at least one shard is required");
        let shards = ShardSet::build(analyzer.database(), config.shards);
        BatchEngine {
            analyzer: Arc::new(analyzer),
            shards,
            queue: JobQueue::new(config.policy, config.queue_capacity),
            config,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The sharded database layout.
    pub fn shards(&self) -> &ShardSet {
        &self.shards
    }

    /// Number of jobs waiting for service.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Submits one job for the next batch run.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        self.queue.submit(spec)
    }

    /// Submits many jobs; stops at the first admission rejection.
    ///
    /// On rejection the error carries the ids of the jobs admitted before
    /// it — those jobs stay queued and will run, so callers must not treat
    /// the error as "nothing was submitted".
    pub fn submit_all<I: IntoIterator<Item = JobSpec>>(
        &mut self,
        specs: I,
    ) -> Result<Vec<JobId>, PartialAdmission> {
        let mut admitted = Vec::new();
        for spec in specs {
            match self.submit(spec) {
                Ok(id) => admitted.push(id),
                Err(error) => return Err(PartialAdmission { admitted, error }),
            }
        }
        Ok(admitted)
    }

    /// Runs every queued job through the pipelined executor and reports.
    ///
    /// This is a thin batch-mode wrapper over [`StreamingEngine`]: the
    /// already-admitted jobs are handed to a fresh service executor in
    /// service order (ids and submission times preserved), the service is
    /// drained and shut down, and the per-job results are collected from
    /// their handles. Because jobs enter the executor's queue in policy
    /// order before any dispatch race can matter, the assigned service
    /// positions follow the policy exactly, and the executor's reorder
    /// buffer guarantees the in-SSD stage serves them in that same order.
    ///
    /// Returns an empty report (zero throughput, no results) if nothing is
    /// queued.
    pub fn run(&mut self) -> BatchReport {
        let jobs = self.queue.drain_ordered();
        let sample_count = jobs.len();
        let shard_count = self.shards.shard_count();
        if jobs.is_empty() {
            return BatchReport {
                results: Vec::new(),
                failed: Vec::new(),
                wall_time: Duration::ZERO,
                latency: LatencyStats::default(),
                throughput: 0.0,
                shard_stats: (0..shard_count)
                    .map(|shard| ShardStats {
                        shard,
                        ..ShardStats::default()
                    })
                    .collect(),
                resident_database_bytes: self.shards.resident_bytes(),
                stage_overlap_events: 0,
                modeled: None,
                stage_breakdown: None,
                straggler: None,
                trace: None,
            };
        }
        let modeled = ModeledAccount::compute_with_queue(
            &self.config.system,
            &self.config.workload,
            sample_count,
            shard_count,
            self.config.queue_model(),
        );

        let batch_start = Instant::now();
        let service = StreamingEngine::from_parts(
            Arc::clone(&self.analyzer),
            self.shards.clone(),
            self.config.clone(),
        );
        let handles: Vec<JobHandle> = jobs
            .into_iter()
            .map(|job| service.dispatch_admitted(job))
            .collect();
        // shutdown() performs the graceful drain itself.
        let service_report = service.shutdown();
        let wall_time = batch_start.elapsed();

        let mut results: Vec<JobResult> = Vec::new();
        let mut failed: Vec<JobError> = Vec::new();
        for handle in handles {
            match handle.wait() {
                Ok(result) => results.push(result),
                Err(error) => failed.push(error),
            }
        }
        results.sort_by_key(|r| r.id);
        failed.sort_by_key(JobError::job);
        let latencies: Vec<Duration> = results.iter().map(|r| r.latency).collect();
        BatchReport {
            latency: LatencyStats::from_latencies(&latencies),
            throughput: sample_count as f64 / wall_time.as_secs_f64().max(1e-9),
            results,
            failed,
            wall_time,
            shard_stats: service_report.shard_stats,
            resident_database_bytes: service_report.resident_database_bytes,
            stage_overlap_events: service_report.stage_overlap_events,
            modeled: Some(modeled),
            stage_breakdown: service_report.stage_breakdown,
            straggler: service_report.straggler,
            trace: service_report.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use megis::config::MegisConfig;
    use megis_genomics::sample::CommunityConfig;

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_reads(120)
            .with_database_species(12)
            .build(91)
    }

    fn analyzer(c: &megis_genomics::sample::Community) -> MegisAnalyzer {
        MegisAnalyzer::build(c.references(), MegisConfig::small())
    }

    fn specs(c: &megis_genomics::sample::Community, n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec::new(format!("sample-{i}"), c.sample().clone()))
            .collect()
    }

    #[test]
    fn engine_matches_sequential_analyzer() {
        let c = community();
        let a = analyzer(&c);
        let expected = a.analyze(c.sample());
        let mut engine = BatchEngine::new(a, EngineConfig::new().with_workers(2).with_shards(3));
        engine.submit_all(specs(&c, 4)).unwrap();
        let report = engine.run();
        assert_eq!(report.results.len(), 4);
        for r in &report.results {
            assert_eq!(r.output, expected, "{} diverged", r.label);
        }
    }

    #[test]
    fn empty_run_reports_nothing() {
        let c = community();
        let mut engine = BatchEngine::new(analyzer(&c), EngineConfig::new());
        let report = engine.run();
        assert!(report.results.is_empty());
        assert_eq!(report.throughput, 0.0);
        assert_eq!(report.shard_stats.len(), 2);
        assert!(
            report.modeled.is_none(),
            "empty batch has no modeled account"
        );
    }

    #[test]
    fn results_are_sorted_by_job_id() {
        let c = community();
        let mut engine = BatchEngine::new(
            analyzer(&c),
            EngineConfig::new().with_workers(4).with_shards(2),
        );
        engine.submit_all(specs(&c, 8)).unwrap();
        let report = engine.run();
        let ids: Vec<u64> = report.results.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn priority_jobs_start_first() {
        let c = community();
        let mut engine = BatchEngine::new(
            analyzer(&c),
            EngineConfig::new()
                .with_workers(1)
                .with_policy(SchedPolicy::Priority),
        );
        let mut jobs = specs(&c, 6);
        jobs[4] = jobs[4].clone().with_priority(Priority::High);
        jobs[1] = jobs[1].clone().with_priority(Priority::Low);
        engine.submit_all(jobs).unwrap();
        let report = engine.run();
        let by_id = |id: u64| {
            report
                .results
                .iter()
                .find(|r| r.id.0 == id)
                .unwrap()
                .start_position
        };
        assert_eq!(by_id(4), 0, "high priority enters service first");
        assert_eq!(by_id(1), 5, "low priority enters service last");
    }

    #[test]
    fn isp_service_order_matches_policy_order_with_many_workers() {
        // Regression: with several Step 1 workers, prepared jobs used to
        // reach the in-SSD stage in Step 1 *completion* order, letting a
        // low-priority job be served Steps 2–3 ahead of a high-priority one.
        // The reorder buffer must keep in-SSD service in dispatch (= policy)
        // order for every worker count.
        let c = community();
        let mut engine = BatchEngine::new(
            analyzer(&c),
            EngineConfig::new()
                .with_workers(4)
                .with_shards(2)
                .with_policy(SchedPolicy::Priority),
        );
        let mut jobs = specs(&c, 10);
        for i in [2usize, 7, 9] {
            jobs[i] = jobs[i].clone().with_priority(Priority::High);
        }
        for i in [0usize, 5] {
            jobs[i] = jobs[i].clone().with_priority(Priority::Low);
        }
        let expected_priority = |id: u64| match id {
            2 | 7 | 9 => Priority::High,
            0 | 5 => Priority::Low,
            _ => Priority::Normal,
        };
        engine.submit_all(jobs).unwrap();
        let report = engine.run();

        for r in &report.results {
            assert_eq!(
                r.isp_position, r.start_position,
                "{}: in-SSD service must follow dispatch order",
                r.label
            );
        }
        let mut served: Vec<&JobResult> = report.results.iter().collect();
        served.sort_by_key(|r| r.isp_position);
        let served_ids: Vec<u64> = served.iter().map(|r| r.id.0).collect();
        let mut policy_order: Vec<u64> = (0..10).collect();
        policy_order.sort_by_key(|id| (std::cmp::Reverse(expected_priority(*id)), *id));
        assert_eq!(
            served_ids, policy_order,
            "in-SSD service order must be (priority desc, submission asc)"
        );
    }

    #[test]
    fn shard_workers_all_serve_every_job() {
        let c = community();
        let mut engine = BatchEngine::new(analyzer(&c), EngineConfig::new().with_shards(4));
        engine.submit_all(specs(&c, 3)).unwrap();
        let report = engine.run();
        assert_eq!(report.shard_stats.len(), 4);
        for s in &report.shard_stats {
            assert_eq!(s.jobs, 3);
        }
        assert_eq!(report.shard_utilization().len(), 4);
    }

    #[test]
    fn modeled_account_is_attached_and_consistent() {
        let c = community();
        let mut engine = BatchEngine::new(analyzer(&c), EngineConfig::new().with_shards(4));
        engine.submit_all(specs(&c, 8)).unwrap();
        let report = engine.run();
        let modeled = report
            .modeled
            .as_ref()
            .expect("non-empty batch has an account");
        assert_eq!(modeled.samples, 8);
        assert_eq!(modeled.shards, 4);
        assert!(modeled.is_consistent(0.9));
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn admission_limit_is_enforced() {
        let c = community();
        let mut engine = BatchEngine::new(analyzer(&c), EngineConfig::new().with_queue_capacity(2));
        let err = engine.submit_all(specs(&c, 3)).unwrap_err();
        assert_eq!(err.error, AdmissionError::QueueFull { capacity: 2 });
        assert_eq!(
            err.admitted,
            vec![JobId(0), JobId(1)],
            "rejection reports the jobs that did get in"
        );
        assert_eq!(engine.pending(), 2);
        // The admitted jobs still run.
        let report = engine.run();
        assert_eq!(report.results.len(), 2);
    }
}
