//! The batch engine: admission → host Step 1 workers → sharded in-SSD stage.
//!
//! Execution follows the paper's inter-sample pipeline (§4.7): a pool of
//! host worker threads runs Step 1 (k-mer extraction, bucketed sorting,
//! exclusion) on upcoming samples while the in-SSD stage — one intersect
//! worker per database shard plus a coordinator for taxID retrieval and
//! Step 3 — processes the current one. Within the in-SSD stage, the sorted
//! query k-mers fan out to every shard concurrently and the per-shard
//! intersections merge back in shard order (Fig. 15's disjoint multi-SSD
//! partitioning), so the merged intersection is identical to streaming the
//! unsharded database.
//!
//! Every per-job computation routes through the step-level entry points of
//! [`MegisAnalyzer`], which makes the engine's output byte-identical to
//! calling [`MegisAnalyzer::analyze`] per sample — for any worker count,
//! shard count, or admission policy. Scheduling changes only *when* work
//! happens, never *what* is computed.

use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use megis::step1::Step1Output;
use megis::MegisAnalyzer;
use megis_genomics::kmer::Kmer;
use megis_genomics::sample::{Diversity, Sample};
use megis_host::accelerators::SortingAccelerator;
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::workload::WorkloadSpec;

use crate::job::{JobId, JobResult, JobSpec, Priority};
use crate::metrics::{BatchReport, LatencyStats, ShardStats};
use crate::model::ModeledAccount;
use crate::queue::{AdmissionError, JobQueue, QueuedJob, SchedPolicy};
use crate::shard::ShardSet;

/// Configuration of a [`BatchEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Host-side Step 1 worker threads.
    pub workers: usize,
    /// Simulated SSDs the database is sharded across.
    pub shards: usize,
    /// Admission/service-order policy.
    pub policy: SchedPolicy,
    /// Maximum jobs waiting for service before admission rejects.
    pub queue_capacity: usize,
    /// Base system for the modeled-time account: the pipelining comparison
    /// runs on it as given, and the shard-scaling series replicates its
    /// first SSD over `1..=shards` devices.
    pub system: SystemConfig,
    /// Paper-scale workload the modeled-time account is evaluated on.
    pub workload: WorkloadSpec,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 2,
            shards: 2,
            policy: SchedPolicy::Fifo,
            queue_capacity: 1024,
            // The paper's multi-sample configuration (Fig. 21): without the
            // sorting accelerator, host-side sorting dominates and hides the
            // in-SSD work entirely, which would make the modeled pipelining
            // gain degenerate to zero.
            system: SystemConfig::reference(SsdConfig::ssd_c())
                .with_dram_capacity(ByteSize::from_gb(256.0))
                .with_sorting_accelerator(SortingAccelerator::default()),
            workload: WorkloadSpec::cami(Diversity::Medium),
        }
    }
}

impl EngineConfig {
    /// The default configuration (2 workers, 2 shards, FIFO).
    pub fn new() -> EngineConfig {
        EngineConfig::default()
    }

    /// Sets the Step 1 worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> EngineConfig {
        assert!(workers > 0, "at least one worker is required");
        self.workers = workers;
        self
    }

    /// Sets the shard (simulated SSD) count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> EngineConfig {
        assert!(shards > 0, "at least one shard is required");
        self.shards = shards;
        self
    }

    /// Sets the admission policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> EngineConfig {
        self.policy = policy;
        self
    }

    /// Sets the admission queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_queue_capacity(mut self, capacity: usize) -> EngineConfig {
        assert!(capacity > 0, "queue capacity must be positive");
        self.queue_capacity = capacity;
        self
    }

    /// Sets the modeled system template (its first SSD is replicated per
    /// shard).
    pub fn with_system(mut self, system: SystemConfig) -> EngineConfig {
        self.system = system;
        self
    }

    /// Sets the modeled workload.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> EngineConfig {
        self.workload = workload;
        self
    }
}

/// Error from [`BatchEngine::submit_all`]: a submission was rejected after
/// some jobs had already been admitted. The admitted jobs remain queued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialAdmission {
    /// Jobs admitted before the rejection, in submission order.
    pub admitted: Vec<JobId>,
    /// The rejection that stopped the batch.
    pub error: AdmissionError,
}

impl std::fmt::Display for PartialAdmission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after {} jobs were admitted",
            self.error,
            self.admitted.len()
        )
    }
}

impl std::error::Error for PartialAdmission {}

/// A Step 1 output in flight between the host stage and the in-SSD stage.
struct PreparedJob {
    id: JobId,
    label: String,
    priority: Priority,
    start_position: usize,
    sample: Sample,
    submitted_at: Instant,
    queue_wait: Duration,
    step1_time: Duration,
    step1: Step1Output,
}

/// The multi-sample batch engine.
#[derive(Debug)]
pub struct BatchEngine {
    analyzer: Arc<MegisAnalyzer>,
    shards: ShardSet,
    queue: JobQueue,
    config: EngineConfig,
}

impl BatchEngine {
    /// Builds an engine around an analyzer, sharding its database across the
    /// configured number of simulated SSDs.
    pub fn new(analyzer: MegisAnalyzer, config: EngineConfig) -> BatchEngine {
        assert!(config.workers > 0, "at least one worker is required");
        assert!(config.shards > 0, "at least one shard is required");
        let shards = ShardSet::build(analyzer.database(), config.shards);
        BatchEngine {
            analyzer: Arc::new(analyzer),
            shards,
            queue: JobQueue::new(config.policy, config.queue_capacity),
            config,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The sharded database layout.
    pub fn shards(&self) -> &ShardSet {
        &self.shards
    }

    /// Number of jobs waiting for service.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Submits one job for the next batch run.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        self.queue.submit(spec)
    }

    /// Submits many jobs; stops at the first admission rejection.
    ///
    /// On rejection the error carries the ids of the jobs admitted before
    /// it — those jobs stay queued and will run, so callers must not treat
    /// the error as "nothing was submitted".
    pub fn submit_all<I: IntoIterator<Item = JobSpec>>(
        &mut self,
        specs: I,
    ) -> Result<Vec<JobId>, PartialAdmission> {
        let mut admitted = Vec::new();
        for spec in specs {
            match self.submit(spec) {
                Ok(id) => admitted.push(id),
                Err(error) => return Err(PartialAdmission { admitted, error }),
            }
        }
        Ok(admitted)
    }

    /// Runs every queued job through the pipelined executor and reports.
    ///
    /// Returns an empty report (zero throughput, no results) if nothing is
    /// queued.
    pub fn run(&mut self) -> BatchReport {
        let jobs = self.queue.drain_ordered();
        let sample_count = jobs.len();
        let shard_count = self.shards.shard_count();
        if jobs.is_empty() {
            return BatchReport {
                results: Vec::new(),
                wall_time: Duration::ZERO,
                latency: LatencyStats::default(),
                throughput: 0.0,
                shard_stats: (0..shard_count)
                    .map(|shard| ShardStats {
                        shard,
                        ..ShardStats::default()
                    })
                    .collect(),
                modeled: None,
            };
        }
        let modeled = ModeledAccount::compute(
            &self.config.system,
            &self.config.workload,
            sample_count,
            shard_count,
        );

        let batch_start = Instant::now();
        let (results, shard_stats) = self.execute(jobs);
        let wall_time = batch_start.elapsed();

        let latencies: Vec<Duration> = results.iter().map(|r| r.latency).collect();
        BatchReport {
            latency: LatencyStats::from_latencies(&latencies),
            throughput: sample_count as f64 / wall_time.as_secs_f64().max(1e-9),
            results,
            wall_time,
            shard_stats,
            modeled: Some(modeled),
        }
    }

    /// The pipelined executor: Step 1 worker pool feeding the in-SSD stage.
    fn execute(&self, jobs: Vec<QueuedJob>) -> (Vec<JobResult>, Vec<ShardStats>) {
        let shard_count = self.shards.shard_count();
        let analyzer = &self.analyzer;
        // Jobs are already in service order; workers pop from the front, so
        // the order in which jobs *enter* Step 1 follows the policy exactly
        // even with many workers. The service-position counter is read in the
        // same critical section as the pop, so the recorded order cannot
        // drift from the actual pop order.
        let feed: Mutex<(VecDeque<QueuedJob>, usize)> = Mutex::new((jobs.into(), 0));

        // Bounded hand-off between the stages: workers prepare at most one
        // sample ahead each before blocking, so peak memory stays
        // O(workers) prepared samples instead of O(batch) while still
        // keeping the in-SSD stage fed (the §4.7 lookahead).
        let (s1_tx, s1_rx) = mpsc::sync_channel::<PreparedJob>(self.config.workers + 1);
        let (stats_tx, stats_rx) = mpsc::channel::<ShardStats>();
        let (resp_tx, resp_rx) = mpsc::channel::<(usize, Vec<Kmer>)>();

        let mut results: Vec<JobResult> = Vec::new();

        thread::scope(|scope| {
            // In-SSD stage, part 1: one intersect worker per database shard.
            let mut shard_txs = Vec::with_capacity(shard_count);
            for (index, shard) in self.shards.shards().iter().enumerate() {
                let (tx, rx) = mpsc::channel::<Arc<Vec<Kmer>>>();
                shard_txs.push(tx);
                let shard = Arc::clone(shard);
                let resp_tx = resp_tx.clone();
                let stats_tx = stats_tx.clone();
                scope.spawn(move || {
                    let mut busy = Duration::ZERO;
                    let mut served = 0u64;
                    for queries in rx {
                        let t0 = Instant::now();
                        let intersection = shard.intersect_sorted(&queries);
                        busy += t0.elapsed();
                        served += 1;
                        if resp_tx.send((index, intersection)).is_err() {
                            break;
                        }
                    }
                    let _ = stats_tx.send(ShardStats {
                        shard: index,
                        busy,
                        jobs: served,
                    });
                });
            }
            drop(resp_tx);
            drop(stats_tx);

            // Host stage: Step 1 worker pool.
            for _ in 0..self.config.workers {
                let feed = &feed;
                let s1_tx = s1_tx.clone();
                scope.spawn(move || loop {
                    let (job, start_position) = {
                        let mut guard = feed.lock().unwrap();
                        let Some(job) = guard.0.pop_front() else {
                            break;
                        };
                        let position = guard.1;
                        guard.1 += 1;
                        (job, position)
                    };
                    let started = Instant::now();
                    let step1 = analyzer.run_step1(&job.spec.sample);
                    let prepared = PreparedJob {
                        id: job.id,
                        label: job.spec.label,
                        priority: job.spec.priority,
                        start_position,
                        sample: job.spec.sample,
                        submitted_at: job.submitted_at,
                        queue_wait: started.duration_since(job.submitted_at),
                        step1_time: started.elapsed(),
                        step1,
                    };
                    if s1_tx.send(prepared).is_err() {
                        break;
                    }
                });
            }
            drop(s1_tx);

            // In-SSD stage, part 2 (this thread): fan each prepared sample
            // out to every shard, merge in shard order, then taxID retrieval
            // and Step 3. Step 1 workers keep preparing upcoming samples in
            // parallel — the §4.7 inter-sample overlap.
            for prepared in s1_rx {
                let isp_start = Instant::now();
                let queries = Arc::new(prepared.step1.sorted_kmers());
                for tx in &shard_txs {
                    tx.send(Arc::clone(&queries))
                        .expect("shard worker alive while requests pend");
                }
                let mut parts: Vec<Vec<Kmer>> = vec![Vec::new(); shard_count];
                for _ in 0..shard_count {
                    let (index, intersection) = resp_rx.recv().expect("one response per shard");
                    parts[index] = intersection;
                }
                let merged: Vec<Kmer> = parts.into_iter().flatten().collect();
                let step2 = analyzer.step2_from_intersection(merged);
                let step3 = analyzer.run_step3(&prepared.sample, &step2.presence);
                let output = MegisAnalyzer::assemble_output(&prepared.step1, &step2, step3);
                results.push(JobResult {
                    id: prepared.id,
                    label: prepared.label,
                    priority: prepared.priority,
                    start_position: prepared.start_position,
                    output,
                    queue_wait: prepared.queue_wait,
                    step1_time: prepared.step1_time,
                    isp_time: isp_start.elapsed(),
                    latency: prepared.submitted_at.elapsed(),
                });
            }
            drop(shard_txs);
        });

        let mut shard_stats: Vec<ShardStats> = stats_rx.iter().collect();
        shard_stats.sort_by_key(|s| s.shard);
        results.sort_by_key(|r| r.id);
        (results, shard_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis::config::MegisConfig;
    use megis_genomics::sample::CommunityConfig;

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_reads(120)
            .with_database_species(12)
            .build(91)
    }

    fn analyzer(c: &megis_genomics::sample::Community) -> MegisAnalyzer {
        MegisAnalyzer::build(c.references(), MegisConfig::small())
    }

    fn specs(c: &megis_genomics::sample::Community, n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec::new(format!("sample-{i}"), c.sample().clone()))
            .collect()
    }

    #[test]
    fn engine_matches_sequential_analyzer() {
        let c = community();
        let a = analyzer(&c);
        let expected = a.analyze(c.sample());
        let mut engine = BatchEngine::new(a, EngineConfig::new().with_workers(2).with_shards(3));
        engine.submit_all(specs(&c, 4)).unwrap();
        let report = engine.run();
        assert_eq!(report.results.len(), 4);
        for r in &report.results {
            assert_eq!(r.output, expected, "{} diverged", r.label);
        }
    }

    #[test]
    fn empty_run_reports_nothing() {
        let c = community();
        let mut engine = BatchEngine::new(analyzer(&c), EngineConfig::new());
        let report = engine.run();
        assert!(report.results.is_empty());
        assert_eq!(report.throughput, 0.0);
        assert_eq!(report.shard_stats.len(), 2);
        assert!(
            report.modeled.is_none(),
            "empty batch has no modeled account"
        );
    }

    #[test]
    fn results_are_sorted_by_job_id() {
        let c = community();
        let mut engine = BatchEngine::new(
            analyzer(&c),
            EngineConfig::new().with_workers(4).with_shards(2),
        );
        engine.submit_all(specs(&c, 8)).unwrap();
        let report = engine.run();
        let ids: Vec<u64> = report.results.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn priority_jobs_start_first() {
        let c = community();
        let mut engine = BatchEngine::new(
            analyzer(&c),
            EngineConfig::new()
                .with_workers(1)
                .with_policy(SchedPolicy::Priority),
        );
        let mut jobs = specs(&c, 6);
        jobs[4] = jobs[4].clone().with_priority(Priority::High);
        jobs[1] = jobs[1].clone().with_priority(Priority::Low);
        engine.submit_all(jobs).unwrap();
        let report = engine.run();
        let by_id = |id: u64| {
            report
                .results
                .iter()
                .find(|r| r.id.0 == id)
                .unwrap()
                .start_position
        };
        assert_eq!(by_id(4), 0, "high priority enters service first");
        assert_eq!(by_id(1), 5, "low priority enters service last");
    }

    #[test]
    fn shard_workers_all_serve_every_job() {
        let c = community();
        let mut engine = BatchEngine::new(analyzer(&c), EngineConfig::new().with_shards(4));
        engine.submit_all(specs(&c, 3)).unwrap();
        let report = engine.run();
        assert_eq!(report.shard_stats.len(), 4);
        for s in &report.shard_stats {
            assert_eq!(s.jobs, 3);
        }
        assert_eq!(report.shard_utilization().len(), 4);
    }

    #[test]
    fn modeled_account_is_attached_and_consistent() {
        let c = community();
        let mut engine = BatchEngine::new(analyzer(&c), EngineConfig::new().with_shards(4));
        engine.submit_all(specs(&c, 8)).unwrap();
        let report = engine.run();
        let modeled = report
            .modeled
            .as_ref()
            .expect("non-empty batch has an account");
        assert_eq!(modeled.samples, 8);
        assert_eq!(modeled.shards, 4);
        assert!(modeled.is_consistent(0.9));
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn admission_limit_is_enforced() {
        let c = community();
        let mut engine = BatchEngine::new(analyzer(&c), EngineConfig::new().with_queue_capacity(2));
        let err = engine.submit_all(specs(&c, 3)).unwrap_err();
        assert_eq!(err.error, AdmissionError::QueueFull { capacity: 2 });
        assert_eq!(
            err.admitted,
            vec![JobId(0), JobId(1)],
            "rejection reports the jobs that did get in"
        );
        assert_eq!(engine.pending(), 2);
        // The admitted jobs still run.
        let report = engine.run();
        assert_eq!(report.results.len(), 2);
    }
}
