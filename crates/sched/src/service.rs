//! Service mode: the continuously scheduled streaming executor.
//!
//! [`StreamingEngine`] keeps the whole pipeline of the batch engine — a pool
//! of host Step 1 workers feeding a sharded in-SSD stage (§4.7 of the paper)
//! — running as a long-lived service. Jobs can be submitted from any thread
//! *while the engine runs*: admission goes through the shared [`JobQueue`],
//! and each Step 1 worker picks its next job with a live `pop_next` at
//! dispatch time, so a high-priority sample submitted mid-stream competes
//! under the policy immediately instead of waiting for a batch boundary.
//! MetaStore and GenStore frame in-storage genomics accelerators the same
//! way: continuously fed, not drained once.
//!
//! **The in-SSD stage: tagged command queues with bounded depth, serving
//! both Steps 2 and 3.** The stage runs as two threads around one
//! `ShardWorker` (see [`crate::shard`]) per database shard; each worker's queue
//! carries commands of *two kinds* — Step 2 intersections and Step 3
//! partial unified-index generation plus read mapping — so the whole
//! pipeline after Step 1 is per-device work and the coordinator never
//! serializes a stage:
//!
//! * The *dispatcher* serves prepared samples strictly in dispatch order
//!   (reorder buffer, below). For each sample it slices the sorted query
//!   list into per-shard sub-ranges with [`ShardSet::slice_queries`] —
//!   binary search on the shard key bounds, so each simulated SSD only ever
//!   sees the slice of the query list overlapping its disjoint database
//!   range, and total query-side work stays O(|Q|) across shards instead of
//!   the O(N·|Q|) a broadcast would cost. Each sub-range becomes one
//!   intersect command tagged `(sequence, shard)` on that shard's command
//!   queue. Queues are NVMe-style bounded: at most
//!   [`crate::EngineConfig::queue_depth`] commands may be outstanding per
//!   shard (submitted but not yet reaped by the completer), so several
//!   samples' commands are in flight on every device at once while
//!   backpressure still bounds memory.
//! * The *completer* reaps per-shard completions **out of order** — shard A
//!   may finish sample 3 before shard B finishes sample 1 — and keeps
//!   per-job merge accounting per stage. Once a job's intersections are all
//!   in, the completer merges them in shard order, runs taxID retrieval
//!   (Step 2's presence call), partitions the resulting candidate list into
//!   contiguous taxid ranges of near-equal *modeled cost*
//!   (`step3::partition_candidates` weighs each candidate by its index
//!   stream bytes plus expected mapping work, so one dominant genome no
//!   longer gates the array the way an equal-count split did), and issues
//!   one Step 3 command per non-empty range back onto the *same* tagged,
//!   depth-bounded queues: each device merges its candidate range into a
//!   partial unified index and maps all reads against it (§4.4, Fig. 9,
//!   partitioned across the array). The completer submits Step 3 commands
//!   without ever blocking on queue space — commands wait in a backlog and
//!   take slots as reaping frees them, so reaping (the only thing that frees
//!   slots) can never deadlock behind submission. Step 3 partials are
//!   **reduced incrementally** (`step3::IncrementalReduce`): each reaped
//!   partial is folded the moment it arrives — contiguous partial-index
//!   absorption, per-read best-hit maxima — instead of barriering on the
//!   full set, so by the time the last device reports, only the cheap
//!   threshold + abundance finish remains and the traced `reduce` /
//!   `reduce_barrier` segments collapse toward zero. The fold is
//!   commutative, so arrival order cannot change the output. When a job's
//!   partials are all in — and every earlier sequence number has been
//!   delivered — the completer finishes the reduction and delivers.
//!   Delivery order equals dispatch order equals policy order no matter how
//!   completions interleave.
//!
//! Because both command kinds share the per-device queues, one sample's
//! Step 3 mapping genuinely overlaps the next sample's Step 2 intersection
//! on the same device — [`ServiceReport::stage_overlap_events`] counts the
//! submissions that observed a command of the other stage outstanding.
//!
//! **Work stealing.** The per-device queues are deques, not channels: a
//! device that drains its own queue steals queued `Step3Command`s from
//! loaded peers (`CommandQueues`, owner-LIFO / thief-FIFO ends). Step 2
//! intersections stay pinned — they need the owner's zero-copy database
//! slice — but Step 3 commands resolve their candidate range against the
//! shared analyzer's memoized reference indexes, so any worker can serve
//! one. Stolen results stay tagged with the *shard-of-record* (the queue
//! the command was issued to), which keeps the completer's depth accounting
//! and the reducer's part positions unchanged; trace events and
//! [`ShardStats`] credit the *physical* serving device, so the straggler
//! analyzer sees real per-device busy time and
//! [`ShardStats::stolen_items`] counts the candidate items each device
//! served on a peer's behalf. Outputs are byte-identical with stealing on
//! or off ([`crate::EngineConfig::work_stealing`]); stealing changes only
//! *where* a range is merged, never *what* is merged.
//!
//! Commands are only issued to shards with work to do: a device whose key
//! range no query of a sample falls into is skipped for that sample's
//! Step 2, and a device whose candidate range is empty (fewer candidates
//! than devices, or a sample with no candidates at all) is skipped for its
//! Step 3, rather than shipped no-op work that would burn a queue slot and
//! simulated device time.
//!
//! **Memory.** The shard workers hold zero-copy views over the analyzer's
//! columnar database storage (see [`crate::shard`]): spinning up an N-shard
//! service does not duplicate the database, and [`ServiceReport`] records
//! the deduplicated footprint as `resident_database_bytes`.
//!
//! **Ordering guarantee.** Dispatch order (the `start_position` assigned in
//! the same critical section as the pop) *is* policy order at dispatch time.
//! Step 1 workers may finish out of that order, so the dispatcher holds
//! early arrivals in a reorder buffer keyed on `start_position` and issues
//! commands strictly in dispatch order — and the completer's in-order
//! delivery extends the guarantee through Steps 2–3. A dispatch lookahead
//! gate keeps workers from running more than
//! `max(2 * workers + 2, queue_depth + workers)` positions ahead of in-SSD
//! delivery, so the reorder buffer, the per-job merge table, and peak
//! prepared-sample memory all stay O(workers + depth) even when one
//! sample's Step 1 is far slower than the rest — while still admitting
//! enough samples into the stage to actually fill a deep queue.
//!
//! **Cross-sample query coalescing.** With
//! [`crate::EngineConfig::with_coalescing_window`] set, the dispatcher does
//! not issue a ready sample's commands immediately: it holds the sample up
//! to the window to admit co-resident samples arriving right behind it in
//! dispatch order, then issues **one** multi-member intersect command per
//! shard carrying every admitted sample's query slice for that shard. The
//! device serves the shared command as a single galloping sweep over its
//! database range ([`megis_genomics::SortedKmerDatabase::intersect_sorted_multi`])
//! and the completer demultiplexes the per-member hit lists back to their
//! owning jobs by `(seq, shard)`. Batch size is bounded by the queue depth
//! (a larger group could never hold all its slots at once) and upstream by
//! the dispatch lookahead gate (only samples Step 1 may run ahead to can
//! co-reside). A shared command occupies one queue-depth slot, is retried
//! and failed over as one unit keyed by its lead member's sequence, and a
//! single-member command is byte-identical to the uncoalesced dispatch —
//! the window-off default *is* the old dispatcher. Per-sample results are
//! byte-identical either way; only the number of database sweeps changes.
//!
//! **Modeled latencies.** [`crate::EngineConfig::submission_latency`] and
//! [`crate::EngineConfig::completion_latency`] (both zero by default)
//! simulate the host-side cost of issuing a command and of reaping a
//! completion. They are what make queue depth *matter* in wall-clock terms:
//! at depth 1 every command's round trip serializes against the device,
//! while depth `d` lets the device keep computing through `d - 1` queued
//! commands — the behavior [`crate::model::QueueModel`] prices analytically
//! and the `queue_depth_sweep` experiment measures.
//!
//! **Failure.** Failure handling is layered, mirroring how a real device
//! array degrades, and every layer is exercised deterministically by an
//! injected [`crate::FaultPlan`] ([`crate::EngineConfig::with_fault_plan`]):
//!
//! 1. *Retry.* A command that fails transiently is re-issued by the
//!    completer with capped exponential backoff
//!    ([`crate::EngineConfig::with_retry_backoff`]) against a per-command
//!    retry budget ([`crate::EngineConfig::with_retry_budget`]); an optional
//!    command deadline ([`crate::EngineConfig::with_command_deadline`])
//!    treats a stuck command as a transient failure of its current attempt,
//!    so a hung device cannot stall a job forever. A command keeps its NVMe
//!    queue-depth slot from first issue to final resolution — retries never
//!    double-count against the depth gate, and stale completions of
//!    superseded attempts are ignored.
//! 2. *Failover.* When a shard's worker dies permanently, surviving workers
//!    adopt the commands still queued on the dead shard's deque, and retries
//!    of its failed commands are re-issued to a surviving queue. Every
//!    worker holds the zero-copy [`ShardSet`], so any device can serve any
//!    shard's database range and outputs stay byte-identical; results stay
//!    keyed on the *shard-of-record*, so failover is invisible to the merge
//!    bookkeeping.
//! 3. *Per-job failure.* A worker panic (caught at the serving seam) or an
//!    exhausted retry budget fails only the owning job: its [`JobHandle`]
//!    resolves to `Err(`[`JobError`]`)`, delivered in dispatch order like
//!    any result, and the engine keeps serving every other job.
//! 4. *Poison.* Only unrecoverable pipeline failures — a Step 1 worker, the
//!    dispatcher, or the completer panicking — poison the whole service:
//!    [`StreamingEngine::drain`] and [`StreamingEngine::shutdown`] propagate
//!    the failure as a panic instead of blocking forever, and outstanding
//!    [`JobHandle`]s resolve to `Err(JobError::EngineStopped)`.
//!
//! **Delivery.** Each submission returns a [`JobHandle`]; the result is sent
//! on the handle's channel the moment the job completes, so clients consume
//! results incrementally instead of waiting for a closed batch. A rolling
//! window ([`crate::metrics::RollingWindow`]) over recent completions backs
//! the live [`ServiceSnapshot`].
//!
//! **Shutdown.** [`StreamingEngine::drain`] blocks until the service is
//! quiescent; [`StreamingEngine::shutdown`] closes admission, drains, joins
//! every thread, and reports. Dropping the engine performs the same graceful
//! shutdown.
//!
//! # Observability
//!
//! With [`crate::EngineConfig::with_tracing`] the engine records every
//! pipeline lifecycle event into a shared [`crate::trace::TraceSink`]
//! (bounded ring, multi-producer): admission at `submit`, Step 1 start/end
//! in the workers, `CommandIssued` per `(seq, shard)` at the dispatcher's
//! intersect submission and the completer's Step 3 backlog submission,
//! `CommandStarted`/`CommandCompleted` in the shard workers (bracketing the
//! simulated device service), `ReduceStarted`/`ReduceFinished` around the
//! completer's reduce, and `Delivered` at handle send. At `finalize` the
//! completer reconstructs the job's [`crate::trace::StageBreakdown`] from
//! its own events (attached to [`JobResult::breakdown`] and averaged into
//! the report summaries), and at shutdown the whole event log yields the
//! [`crate::trace::StragglerReport`] — per-device busy/stall/idle and the
//! device that gated each job's Step 3 reduce — plus the exportable
//! [`crate::trace::TraceLog`].
//!
//! **Overhead contract:** tracing is off by default and the disabled sink's
//! record path is a single inlined branch — no lock, no clock read, no
//! allocation — so the instrumentation points cost the engine nothing when
//! unused. The `trace_overhead` bench experiment measures the disabled path
//! per call and whole-engine wall clock against a build-equivalent baseline,
//! and CI gates the overhead below 2%.
//!
//! [`crate::BatchEngine::run`] is a thin wrapper over this executor
//! (dispatch the closed batch, drain, shut down), so batch mode inherits the
//! ordering fix and the byte-identical-to-`analyze` contract by
//! construction.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Range;
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use megis::step1::Step1Output;
use megis::step2::Step2Output;
use megis::step3;
use megis::MegisAnalyzer;
use megis_genomics::kmer::Kmer;
use megis_genomics::sample::Sample;

use crate::engine::EngineConfig;
use crate::fault::FaultDecision;
use crate::job::{JobError, JobId, JobResult, JobSpec, Priority};
use crate::metrics::{LatencyStats, RollingWindow, ShardStats};
use crate::queue::{AdmissionError, JobQueue, QueuedJob};
use crate::shard::{
    CommandFailure, CommandOutput, IntersectCommand, IntersectMember, ShardCommand, ShardSet,
    ShardWorker, Step3Command,
};
use crate::trace::{
    StageBreakdown, StragglerReport, TraceEventKind, TraceLog, TraceSink, TraceStage, NO_SEQ,
};

/// A Step 1 output in flight between the host stage and the in-SSD stage.
struct PreparedJob {
    id: JobId,
    label: String,
    priority: Priority,
    start_position: usize,
    /// Shared so the job's per-device Step 3 commands can map the reads
    /// without copying the sample.
    sample: Arc<Sample>,
    submitted_at: Instant,
    queue_wait: Duration,
    step1_time: Duration,
    step1: Step1Output,
}

/// One completion reaped from a shard, tagged with its origin. Completions
/// are Result-shaped: a served command reports `Ok(output)`, a faulted one
/// reports `Err(failure)` and the completer decides between retry,
/// failover, and per-job failure.
struct ShardCompletion {
    /// The *shard-of-record*: the queue the command was issued to, not
    /// necessarily the device that served it (an idle peer may have stolen
    /// a Step 3 command, or adopted anything from a dead peer). Depth
    /// accounting and the reducer's part positions key on this, so stealing
    /// and failover are invisible to the completer's merge bookkeeping.
    shard: usize,
    seq: usize,
    /// The attempt this completion settles; stale completions of superseded
    /// attempts (a deadline re-issue overtook them) are ignored.
    attempt: u32,
    /// The command kind, carried explicitly so failed completions (which
    /// have no output to infer it from) still settle the right stage
    /// counter.
    stage: TraceStage,
    result: Result<CommandOutput, CommandFailure>,
}

/// The per-device command queues, restructured from N private channels into
/// one shared deque array so idle devices can steal Step 3 work.
///
/// Discipline per queue: producers push at the back; the owner pops from
/// the back (LIFO — the freshest command, whose sample data is hottest),
/// and a thief removes the oldest *stealable* command scanning from the
/// front (FIFO — the command that has waited longest behind the loaded
/// owner). `IntersectCommand`s are never stolen: they intersect the owner's
/// database slice. `Step3Command`s resolve against the shared analyzer, so
/// any device can serve them.
///
/// Producer accounting replaces channel disconnection for shutdown: each
/// producing side (dispatcher, completer) holds a [`QueueProducer`] guard,
/// and a worker exits when its own queue is empty, nothing is stealable,
/// and no producer guard remains.
#[derive(Debug)]
struct CommandQueues {
    inner: Mutex<QueuesInner>,
    /// Signaled on push and on producer release.
    ready: Condvar,
}

#[derive(Debug)]
struct QueuesInner {
    queues: Vec<VecDeque<ShardCommand>>,
    /// Outstanding [`QueueProducer`] guards.
    producers: usize,
    /// Whether idle devices may steal Step 3 commands from peers
    /// ([`crate::EngineConfig::work_stealing`]).
    work_stealing: bool,
    /// Shards whose worker died permanently (an injected shard death).
    /// Commands left on a dead shard's queue are adopted by live peers —
    /// *any* command kind, independent of the work-stealing setting — and
    /// retries of its failed commands are re-issued elsewhere.
    dead: Vec<bool>,
}

/// One command handed to a worker, with its provenance. The command itself
/// names its shard-of-record ([`ShardCommand::record_shard`]) — under
/// failover re-issue that can differ from the queue it sat on, so the queue
/// index is deliberately not carried here.
struct PoppedCommand {
    command: ShardCommand,
    /// `true` when the serving device took the command off a peer's queue.
    stolen: bool,
}

impl CommandQueues {
    fn new(shard_count: usize, work_stealing: bool) -> Arc<CommandQueues> {
        Arc::new(CommandQueues {
            inner: Mutex::new(QueuesInner {
                queues: (0..shard_count).map(|_| VecDeque::new()).collect(),
                producers: 0,
                work_stealing,
                dead: vec![false; shard_count],
            }),
            ready: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, QueuesInner> {
        // Same poison recovery as `Shared::lock`: the engine's own poison
        // flag is the failure signal, and teardown must keep draining while
        // a panic unwinds.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a producing side; commands can be pushed while the guard
    /// lives, and workers only wind down once every guard is dropped.
    fn producer(self: &Arc<Self>) -> QueueProducer {
        self.lock().producers += 1;
        QueueProducer {
            queues: Arc::clone(self),
        }
    }

    /// Marks a shard's worker permanently dead (injected shard death) and
    /// wakes every waiting peer so its queue can be adopted immediately.
    fn mark_dead(&self, index: usize) {
        self.lock().dead[index] = true;
        self.ready.notify_all();
    }

    /// Whether a shard's worker died permanently.
    fn is_dead(&self, index: usize) -> bool {
        self.lock().dead[index]
    }

    /// Blocks until device `index` has a command to serve — its own queue's
    /// back, a dead peer's abandoned queue, or (with stealing on) the oldest
    /// Step 3 command of some live peer — or returns `None` when no command
    /// can ever arrive again (queues drained, producers gone).
    fn pop(&self, index: usize) -> Option<PoppedCommand> {
        let mut inner = self.lock();
        loop {
            if let Some(command) = inner.queues[index].pop_back() {
                return Some(PoppedCommand {
                    command,
                    stolen: false,
                });
            }
            // A dead peer's queue can never be served by its owner again:
            // adopt its oldest command unconditionally — *any* kind, not
            // just the stealable Step 3 ones, since every worker holds the
            // whole shard set and an [`IntersectCommand`] names its
            // database range explicitly.
            {
                let n = inner.queues.len();
                for offset in 1..n {
                    let peer = (index + offset) % n;
                    if inner.dead[peer] {
                        if let Some(command) = inner.queues[peer].pop_front() {
                            return Some(PoppedCommand {
                                command,
                                stolen: true,
                            });
                        }
                    }
                }
            }
            if inner.work_stealing {
                let n = inner.queues.len();
                for offset in 1..n {
                    let peer = (index + offset) % n;
                    if let Some(pos) = inner.queues[peer]
                        .iter()
                        .position(|c| matches!(c, ShardCommand::Step3(_)))
                    {
                        let command = inner.queues[peer].remove(pos).expect("position just found");
                        return Some(PoppedCommand {
                            command,
                            stolen: true,
                        });
                    }
                }
            }
            if inner.producers == 0 {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// RAII registration of one producing side on the [`CommandQueues`];
/// dropping it is the shutdown hand-over that lets idle workers exit.
#[derive(Debug)]
struct QueueProducer {
    queues: Arc<CommandQueues>,
}

impl QueueProducer {
    /// Enqueues a command on `shard`'s queue. Infallible: worker liveness
    /// is reported through the engine's poison flag, not through send
    /// errors.
    fn send(&self, shard: usize, command: ShardCommand) {
        self.queues.lock().queues[shard].push_back(command);
        self.queues.ready.notify_all();
    }
}

impl Drop for QueueProducer {
    fn drop(&mut self) {
        self.queues.lock().producers -= 1;
        // Wake every waiting worker so it can re-check the exit condition.
        self.queues.ready.notify_all();
    }
}

/// Dispatcher → completer record for one sample entering the in-SSD stage;
/// sent *before* any of the sample's commands, so the completer always knows
/// a sequence number before its first completion can arrive.
struct IspMeta {
    seq: usize,
    /// Observed hand-off rank, stamped independently of `start_position` so
    /// the ordering regression tests genuinely fail if the reorder buffer is
    /// ever bypassed.
    isp_position: usize,
    /// Number of per-shard commands the dispatcher will issue for this job.
    expected: usize,
    isp_start: Instant,
    prepared: PreparedJob,
}

/// Dispatcher → completer stream. `Issued` records travel on the same
/// ordered channel as the job metas and are sent *before* the command is
/// pushed onto a shard queue, so by the time any completion of a command
/// can exist, its registration is already queued ahead of it — the
/// completer absorbs this channel before reaping and therefore always
/// knows the command it is settling (the invariant the retry machinery
/// keys on).
enum DispatchMsg {
    /// A sample entered the in-SSD stage.
    Job(IspMeta),
    /// An intersect command was issued to `shard`'s queue; the command
    /// itself is carried (cheap: `Arc`-shared payloads) so the completer
    /// can re-issue it on failure. Step 3 commands register directly in
    /// `submit_backlog` — same thread as the reaping — and don't pass
    /// through here.
    Issued {
        /// The target queue (= shard-of-record).
        shard: usize,
        command: ShardCommand,
    },
}

/// Per-job state machine at the completer: Step 2 merge accounting, then
/// Step 3 dispatch and merge accounting, then (in delivery order) reduce.
struct MergeState {
    meta: IspMeta,
    /// Per-shard intersections, indexed by shard, in shard (= key range)
    /// order; `None` until that shard's completion is reaped (and forever
    /// for shards that were never commanded).
    parts: Vec<Option<Vec<Kmer>>>,
    /// Intersect completions still outstanding.
    remaining: usize,
    /// Step 2's output (taxID retrieval + presence call), computed the
    /// moment the last intersection is reaped.
    step2: Option<Step2Output>,
    /// The incremental Step 3 reducer, created at Step 3 dispatch with one
    /// expected position per shard-of-record that got a non-empty candidate
    /// range. Each reaped partial is folded into it immediately —
    /// partial-index absorption plus per-read best-hit maxima — so the
    /// barrier-time work left at delivery is only the cheap
    /// [`step3::IncrementalReduce::finish`].
    reduce: Option<step3::IncrementalReduce>,
    /// Step 3 completions still outstanding.
    step3_remaining: usize,
    /// Set once Step 2 ran and the job's Step 3 commands were handed to the
    /// submission backlog (also set for jobs with no candidates, whose
    /// Step 3 is trivially complete).
    step3_dispatched: bool,
    /// Set when the job failed (worker panic, exhausted retry budget, no
    /// live shard): the job is delivered as `Err` at its turn in dispatch
    /// order, isolated from every other job.
    failed: Option<JobError>,
}

impl MergeState {
    /// Every expected completion of both stages has been reaped — or the
    /// job failed and is ready to deliver its error at its ordered turn.
    fn is_complete(&self) -> bool {
        self.failed.is_some()
            || (self.remaining == 0 && self.step3_dispatched && self.step3_remaining == 0)
    }
}

/// State shared by submitters, Step 1 workers, and the in-SSD stage.
#[derive(Debug)]
struct ServiceState {
    /// The live admission queue; workers `pop_next` it at dispatch time.
    queue: JobQueue,
    /// Per-job result channels, removed at delivery. A failed job's error
    /// travels the same channel as a result would, so handles resolve in
    /// either case.
    senders: HashMap<u64, mpsc::Sender<Result<JobResult, JobError>>>,
    /// Next service position to assign (same critical section as the pop).
    next_position: usize,
    /// Jobs popped but not yet completed by the in-SSD stage.
    in_flight: usize,
    /// Positions fully served by the in-SSD stage (the completer's
    /// `next_to_deliver`, mirrored here for the dispatch lookahead gate).
    isp_served: usize,
    /// Maximum positions workers may dispatch ahead of the in-SSD stage;
    /// bounds the reorder buffer and prepared-sample memory at
    /// O(workers + queue depth).
    lookahead: usize,
    /// Commands outstanding per shard (both kinds): submitted, not yet
    /// reaped by the completer. The dispatcher blocks while a shard sits at
    /// [`EngineConfig::queue_depth`] — the NVMe queue-depth bound. (The
    /// completer never blocks on it; its Step 3 submissions wait in a
    /// backlog instead.)
    shard_inflight: Vec<usize>,
    /// High-water mark of `shard_inflight`, per shard, over the service
    /// lifetime; reported as [`ShardStats::peak_inflight`].
    shard_inflight_peak: Vec<usize>,
    /// Intersect commands outstanding across all shards (subset of
    /// `shard_inflight` sums), for stage-overlap observation.
    intersect_inflight: usize,
    /// Step 3 commands outstanding across all shards.
    step3_inflight: usize,
    /// Submissions that observed a command of the *other* stage
    /// outstanding; reported as [`ServiceReport::stage_overlap_events`].
    stage_overlap_events: u64,
    /// Commands re-issued after a failure, per shard-of-record; merged into
    /// [`ShardStats::retries`] at shutdown.
    shard_retries: Vec<u64>,
    /// Retries routed to a different device because the shard-of-record is
    /// dead, per (dead) shard-of-record; merged into
    /// [`ShardStats::failovers`] at shutdown.
    shard_failovers: Vec<u64>,
    /// Jobs that failed with a [`JobError`] while the engine kept serving.
    failed_jobs: u64,
    /// Reads mapped during Step 3 across all delivered jobs.
    mapped_reads: u64,
    /// Set when a pipeline thread panics; drain/shutdown propagate it as a
    /// panic instead of waiting forever on work that can never complete.
    poisoned: bool,
    /// Cleared when a graceful shutdown begins; submissions then reject.
    accepting: bool,
    /// Set after the final drain; idle workers exit instead of waiting.
    stopping: bool,
    /// Jobs completed over the service lifetime.
    completed: u64,
    /// Rolling latency/throughput window over recent completions.
    window: RollingWindow,
    /// Segment-wise sum of every delivered job's traced stage breakdown
    /// (zero while tracing is disabled).
    breakdown_sum: StageBreakdown,
    /// Jobs whose breakdown was reconstructed and accumulated.
    breakdown_count: usize,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<ServiceState>,
    /// Signaled on submission (workers wait here when the queue is empty).
    job_ready: Condvar,
    /// Signaled on completion (drain waits here for quiescence).
    idle: Condvar,
    /// Signaled when a shard queue slot frees up (the dispatcher waits here
    /// when a shard is at its configured queue depth).
    queue_space: Condvar,
}

impl Shared {
    /// Locks the state, recovering from std mutex poisoning: the engine's
    /// own `poisoned` flag (set by [`PanicGuard`]) is the real failure
    /// signal, and teardown must keep working while a panic unwinds —
    /// a `lock().unwrap()` during unwind would panic-within-panic and
    /// abort the process.
    fn lock(&self) -> MutexGuard<'_, ServiceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Live snapshot of a running service.
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    /// Jobs admitted but not yet dispatched to Step 1.
    pub pending: usize,
    /// Jobs dispatched but not yet completed.
    pub in_flight: usize,
    /// Jobs completed since the service started.
    pub completed: u64,
    /// Whether submissions are currently accepted.
    pub accepting: bool,
    /// Commands currently outstanding per shard (submitted, completion not
    /// yet reaped) — the live NVMe-style queue occupancy.
    pub shard_inflight: Vec<usize>,
    /// Latency distribution over the rolling completion window.
    pub window: LatencyStats,
    /// Completions per second over the rolling window.
    pub window_throughput: f64,
}

/// Final accounting returned by [`StreamingEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Jobs completed over the service lifetime.
    pub completed: u64,
    /// Wall-clock time from service start to shutdown.
    pub uptime: Duration,
    /// Per-shard busy accounting over the service lifetime.
    pub shard_stats: Vec<ShardStats>,
    /// Host heap bytes the shard set kept resident, counting the shared
    /// columnar storage once ([`crate::ShardSet::resident_bytes`]): the
    /// shards are zero-copy views, so this stays ≈ 1× the database at any
    /// shard count.
    pub resident_database_bytes: u64,
    /// Reads mapped during Step 3 across all delivered jobs.
    pub mapped_reads: u64,
    /// Times a command of one in-SSD stage was submitted while a command of
    /// the other stage was outstanding on the device array — evidence that
    /// one sample's Step 3 mapping overlapped another sample's Step 2
    /// intersection in the command queues.
    pub stage_overlap_events: u64,
    /// Jobs that failed with a [`JobError`] while the engine kept serving
    /// (per-job failure isolation); their handles resolved to `Err` and
    /// they are not counted in [`ServiceReport::completed`].
    pub failed_jobs: u64,
    /// Latency distribution over the final rolling window.
    pub window: LatencyStats,
    /// Mean per-job stage breakdown over the jobs whose timelines the trace
    /// captured; `None` when tracing was disabled or no breakdown could be
    /// reconstructed.
    pub stage_breakdown: Option<StageBreakdown>,
    /// Per-device straggler analysis of the traced run; `None` when tracing
    /// was disabled.
    pub straggler: Option<StragglerReport>,
    /// The raw event log ([`TraceLog::to_json`] exports it); `None` when
    /// tracing was disabled.
    pub trace: Option<TraceLog>,
}

impl ServiceReport {
    /// Renders a compact plain-text summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "service: {} jobs over {:.3} s uptime (rolling window of {})",
            self.completed,
            self.uptime.as_secs_f64(),
            self.window.count,
        );
        out.push_str(&crate::metrics::latency_line(&self.window));
        out.push_str(&crate::metrics::residency_and_step3_lines(
            self.resident_database_bytes,
            &self.shard_stats,
            self.mapped_reads,
            self.stage_overlap_events,
        ));
        if let Some(line) = crate::metrics::coalescing_line(&self.shard_stats) {
            out.push_str(&line);
        }
        if let Some(line) = crate::metrics::degraded_line(&self.shard_stats, self.failed_jobs) {
            out.push_str(&line);
        }
        out.push_str(&crate::metrics::stage_breakdown_line(
            self.stage_breakdown.as_ref(),
        ));
        out
    }
}

/// Claim on one submitted job's result.
///
/// The outcome is sent the moment the job settles; [`JobHandle::wait`]
/// blocks until then and resolves `Ok(JobResult)` for a served job or
/// `Err(`[`JobError`]`)` for one that failed while the engine kept serving
/// (per-job failure isolation). If the engine stops — or is poisoned —
/// before the job is served, waiting yields `Err(JobError::EngineStopped)`.
#[derive(Debug)]
pub struct JobHandle {
    id: JobId,
    rx: Receiver<Result<JobResult, JobError>>,
}

impl JobHandle {
    /// The admitted job's identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Blocks until the job settles and returns its outcome;
    /// `Err(JobError::EngineStopped)` if the engine stopped without serving
    /// it.
    pub fn wait(self) -> Result<JobResult, JobError> {
        self.rx
            .recv()
            .unwrap_or(Err(JobError::EngineStopped { job: self.id }))
    }

    /// Returns the outcome if the job has already settled, without
    /// blocking.
    pub fn try_wait(&self) -> Option<Result<JobResult, JobError>> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the outcome.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<JobResult, JobError>> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// The long-running streaming engine (service mode).
///
/// See the [module docs](self) for the execution model. Methods take
/// `&self`, so the engine can be shared across submitter threads behind an
/// [`Arc`].
#[derive(Debug)]
pub struct StreamingEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    completer: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
    // Mutex-wrapped only so the engine is `Sync` (shareable behind an
    // `Arc`); the receiver is drained once, at shutdown.
    stats_rx: Mutex<Receiver<ShardStats>>,
    shards: ShardSet,
    config: EngineConfig,
    started_at: Instant,
    trace: TraceSink,
}

impl StreamingEngine {
    /// Builds and starts a service around an analyzer, sharding its database
    /// across the configured number of simulated SSDs. Worker, shard, and
    /// in-SSD stage threads are running when this returns.
    pub fn new(analyzer: MegisAnalyzer, config: EngineConfig) -> StreamingEngine {
        let shards = ShardSet::build(analyzer.database(), config.shards);
        StreamingEngine::from_parts(Arc::new(analyzer), shards, config)
    }

    pub(crate) fn from_parts(
        analyzer: Arc<MegisAnalyzer>,
        shards: ShardSet,
        config: EngineConfig,
    ) -> StreamingEngine {
        assert!(config.workers > 0, "at least one worker is required");
        assert!(config.shards > 0, "at least one shard is required");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        let shard_count = shards.shard_count();
        let trace = match config.trace_capacity {
            Some(capacity) => TraceSink::bounded(capacity),
            None => TraceSink::disabled(),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(ServiceState {
                queue: JobQueue::new(config.policy, config.queue_capacity),
                senders: HashMap::new(),
                next_position: 0,
                in_flight: 0,
                isp_served: 0,
                // Memory bound and depth headroom: each in-flight sample
                // contributes at most one outstanding command per shard, so
                // reaching `queue_depth` outstanding commands needs at least
                // `queue_depth` samples inside the in-SSD stage (plus the
                // workers' hands). With the default depth the second term is
                // never larger, so the classic `2 * workers + 2` bound is
                // unchanged; deep queues widen the gate instead of being
                // silently capped below the configured depth.
                lookahead: (2 * config.workers + 2).max(config.queue_depth + config.workers),
                shard_inflight: vec![0; shard_count],
                shard_inflight_peak: vec![0; shard_count],
                intersect_inflight: 0,
                step3_inflight: 0,
                stage_overlap_events: 0,
                shard_retries: vec![0; shard_count],
                shard_failovers: vec![0; shard_count],
                failed_jobs: 0,
                mapped_reads: 0,
                poisoned: false,
                accepting: true,
                stopping: false,
                completed: 0,
                window: RollingWindow::new(config.metrics_window),
                breakdown_sum: StageBreakdown::default(),
                breakdown_count: 0,
            }),
            job_ready: Condvar::new(),
            idle: Condvar::new(),
            queue_space: Condvar::new(),
        });

        // In-SSD stage, part 1: one worker per database shard, all sharing
        // the deque-per-device [`CommandQueues`] — carrying both Step 2
        // intersect commands and Step 3 index-generation/mapping commands —
        // and reporting completions out of order on the shared completion
        // channel. The producer guards are taken *before* any worker spawns
        // so no worker can observe a producerless instant and exit early.
        let queues = CommandQueues::new(shard_count, config.work_stealing);
        let dispatcher_producer = queues.producer();
        let completer_producer = queues.producer();
        let (stats_tx, stats_rx) = mpsc::channel::<ShardStats>();
        let (resp_tx, resp_rx) = mpsc::channel::<ShardCompletion>();
        let mut shard_handles = Vec::with_capacity(shard_count);
        for index in 0..shard_count {
            let queues = Arc::clone(&queues);
            let worker = ShardWorker::new(shards.clone(), Arc::clone(&analyzer));
            let resp_tx = resp_tx.clone();
            let stats_tx = stats_tx.clone();
            let shared = Arc::clone(&shared);
            let device_latency = config.device_latency;
            let step3_item_latency = config.step3_item_latency;
            let fault_plan = config.fault_plan.clone();
            let trace = trace.clone();
            shard_handles.push(thread::spawn(move || {
                let _guard = PanicGuard(&shared);
                let mut busy = Duration::ZERO;
                let mut served = 0u64;
                let mut query_items = 0u64;
                let mut coalesced_commands = 0u64;
                let mut coalesced_members = 0u64;
                let mut step3_served = 0u64;
                let mut step3_items = 0u64;
                let mut stolen_items = 0u64;
                let mut faults = 0u64;
                let mut dead = false;
                let mut popped_total = 0u64;
                let death_after = fault_plan.as_ref().and_then(|p| p.death_after(index));
                while let Some(popped) = queues.pop(index) {
                    let command = popped.command;
                    let stage = command.stage();
                    let seq = command.seq();
                    // The command's *own* record shard, not the queue it was
                    // popped from: after a failover re-issue the two differ,
                    // and completions must carry the identity the completer
                    // keyed the outstanding entry (and the Step 3 reduce
                    // slot) on.
                    let record = command.record_shard();
                    let attempt = command.attempt();
                    popped_total += 1;
                    // Injected permanent shard death: after serving
                    // `death_after` commands the worker dies with the next
                    // command in hand. That command fails with a dead-shard
                    // error (the completer fails it over to a survivor) and
                    // everything still queued here is adopted by live peers
                    // via `CommandQueues::pop`.
                    if death_after.is_some_and(|after| popped_total > after) {
                        queues.mark_dead(index);
                        faults += 1;
                        dead = true;
                        trace.record(
                            seq,
                            TraceEventKind::Fault {
                                stage,
                                shard: record,
                            },
                        );
                        let _ = resp_tx.send(ShardCompletion {
                            shard: record,
                            seq,
                            attempt,
                            stage,
                            result: Err(CommandFailure::ShardDead),
                        });
                        break;
                    }
                    // Fault decisions key on the command identity — the
                    // *record* shard, never the physical server — so a
                    // plan's schedule is independent of stealing and
                    // failover routing. The fault-free hot path pays one
                    // `Option` check.
                    let mut spike = Duration::ZERO;
                    match fault_plan
                        .as_ref()
                        .and_then(|p| p.decide(seq, record, stage, attempt))
                    {
                        Some(FaultDecision::Transient) => {
                            faults += 1;
                            trace.record(
                                seq,
                                TraceEventKind::Fault {
                                    stage,
                                    shard: record,
                                },
                            );
                            let failed = ShardCompletion {
                                shard: record,
                                seq,
                                attempt,
                                stage,
                                result: Err(CommandFailure::Transient),
                            };
                            if resp_tx.send(failed).is_err() {
                                break;
                            }
                            continue;
                        }
                        Some(FaultDecision::Panic) => {
                            faults += 1;
                            trace.record(
                                seq,
                                TraceEventKind::Fault {
                                    stage,
                                    shard: record,
                                },
                            );
                            // Caught right here at the serving seam: the
                            // injected panic must fail only the owning job,
                            // never unwind the worker (the `PanicGuard`
                            // stays un-tripped and the engine keeps
                            // serving).
                            let caught = std::panic::catch_unwind(|| {
                                // lint:allow(panic-hygiene, the injected
                                // worker panic is caught by the enclosing
                                // catch_unwind at the serving seam and
                                // surfaces as a per-job error, not a thread
                                // death)
                                panic!("injected worker panic");
                            });
                            debug_assert!(caught.is_err());
                            let failed = ShardCompletion {
                                shard: record,
                                seq,
                                attempt,
                                stage,
                                result: Err(CommandFailure::Panicked),
                            };
                            if resp_tx.send(failed).is_err() {
                                break;
                            }
                            continue;
                        }
                        Some(FaultDecision::Spike(extra)) => spike = extra,
                        None => {}
                    }
                    // Trace events and stats credit the *physical* serving
                    // device (`index`): the straggler analyzer sums real
                    // per-device service intervals, which under stealing
                    // differ from the shard-of-record's queue. The service
                    // interval's start stamp is taken here and the
                    // per-member Started/Completed pairs are emitted after
                    // serving (see `record_service_interval`).
                    let trace_started = trace.now();
                    let t0 = Instant::now();
                    // Simulated device service (the partition stream / the
                    // candidate-index stream); the sleeps count as busy
                    // time, so utilization and the measured per-command
                    // service both reflect them. Step 3 commands pay an
                    // additional stream cost proportional to their range's
                    // *modeled bytes* (`stream_units`, cost-normalized so
                    // uniform candidates reproduce the old per-item sleep),
                    // so candidate skew the partitioner could not split
                    // shows up as per-device busy-time skew. An injected
                    // latency spike stalls the device first — busy time the
                    // command deadline exists to cut short.
                    if !spike.is_zero() {
                        thread::sleep(spike);
                    }
                    if !device_latency.is_zero() {
                        thread::sleep(device_latency);
                    }
                    if let ShardCommand::Step3(c) = &command {
                        if !step3_item_latency.is_zero() && c.stream_units > 0.0 {
                            thread::sleep(step3_item_latency.mul_f64(c.stream_units));
                        }
                    }
                    let output = worker.serve(&command);
                    busy += t0.elapsed();
                    match &command {
                        ShardCommand::Intersect(c) => {
                            served += 1;
                            query_items += c.query_items() as u64;
                            if c.members.len() > 1 {
                                coalesced_commands += 1;
                                coalesced_members += c.members.len() as u64;
                                trace.record(
                                    command.seq(),
                                    TraceEventKind::CoalescedSweep {
                                        shard: index,
                                        members: c.members.len(),
                                    },
                                );
                            }
                        }
                        ShardCommand::Step3(c) => {
                            step3_served += 1;
                            step3_items += c.range.len() as u64;
                            if popped.stolen {
                                stolen_items += c.range.len() as u64;
                            }
                        }
                    }
                    record_service_interval(&trace, &command, index, trace_started);
                    let completion = ShardCompletion {
                        shard: record,
                        seq,
                        attempt,
                        stage,
                        result: Ok(output),
                    };
                    if resp_tx.send(completion).is_err() {
                        break;
                    }
                }
                let _ = stats_tx.send(ShardStats {
                    shard: index,
                    busy,
                    jobs: served,
                    query_items,
                    coalesced_commands,
                    coalesced_members,
                    step3_jobs: step3_served,
                    step3_items,
                    stolen_items,
                    peak_inflight: 0,
                    faults,
                    retries: 0,
                    failovers: 0,
                    dead,
                });
            }));
        }
        drop(resp_tx);
        drop(stats_tx);

        // Bounded hand-off between the stages (§4.7 lookahead): together
        // with the dispatch lookahead gate in `step1_worker`, at most
        // `lookahead` prepared samples exist at once — in workers' hands,
        // in this channel, in the dispatcher's reorder buffer, or in the
        // completer's merge table — so peak memory stays O(workers + depth)
        // while the in-SSD stage stays fed.
        let (s1_tx, s1_rx) = mpsc::sync_channel::<PreparedJob>(config.workers + 1);

        // Host stage: Step 1 worker pool. Only the workers hold senders, so
        // the dispatcher's receiver closes exactly when the last worker
        // exits.
        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let shared = Arc::clone(&shared);
            let analyzer = Arc::clone(&analyzer);
            let s1_tx = s1_tx.clone();
            let trace = trace.clone();
            workers.push(thread::spawn(move || {
                step1_worker(&shared, &analyzer, &s1_tx, &trace);
            }));
        }
        drop(s1_tx);

        // In-SSD stage, part 2: dispatcher (reorder + slice + bounded-depth
        // intersect submission) and completer (out-of-order reaping, per-job
        // two-stage merge accounting, backlogged Step 3 submission onto the
        // same queues, in-dispatch-order delivery). Both hold producer
        // guards on the shard queues; the completer releases its guard once
        // no more Step 3 commands can ever be issued, which is what lets
        // the shard workers (and then the completer itself) wind down.
        let (meta_tx, meta_rx) = mpsc::channel::<DispatchMsg>();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            let shard_set = shards.clone();
            let queue_depth = config.queue_depth;
            let submission_latency = config.submission_latency;
            let coalescing_window = config.coalescing_window;
            let trace = trace.clone();
            thread::spawn(move || {
                isp_dispatcher(
                    &shared,
                    &shard_set,
                    s1_rx,
                    dispatcher_producer,
                    meta_tx,
                    queue_depth,
                    submission_latency,
                    coalescing_window,
                    &trace,
                );
            })
        };
        let completer = {
            let shared = Arc::clone(&shared);
            let queues = Arc::clone(&queues);
            let queue_depth = config.queue_depth;
            let submission_latency = config.submission_latency;
            let completion_latency = config.completion_latency;
            let retry_budget = config.retry_budget;
            let retry_backoff = config.retry_backoff;
            let command_deadline = config.command_deadline;
            let trace = trace.clone();
            thread::spawn(move || {
                IspCompleter {
                    shared: &shared,
                    analyzer: &analyzer,
                    producer: Some(completer_producer),
                    queues,
                    shard_count,
                    queue_depth,
                    pending: BTreeMap::new(),
                    backlog: VecDeque::new(),
                    outstanding: HashMap::new(),
                    retry_due: Vec::new(),
                    retry_budget,
                    retry_backoff,
                    command_deadline,
                    next_to_deliver: 0,
                    meta_open: true,
                    submission_latency,
                    completion_latency,
                    trace,
                }
                .run(meta_rx, resp_rx);
            })
        };

        StreamingEngine {
            shared,
            workers,
            dispatcher: Some(dispatcher),
            completer: Some(completer),
            shard_handles,
            stats_rx: Mutex::new(stats_rx),
            shards,
            config,
            started_at: Instant::now(),
            trace,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The sharded database layout.
    pub fn shards(&self) -> &ShardSet {
        &self.shards
    }

    /// The engine's trace sink (disabled unless
    /// [`EngineConfig::trace_capacity`] was set). Live snapshots of the
    /// event log are available while the service runs; the final
    /// [`ServiceReport`] carries the analyzed form.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Jobs admitted but not yet dispatched to Step 1.
    pub fn pending(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Submits one job to the running service, from any thread.
    ///
    /// Admission is bounded by the configured queue capacity **counting
    /// in-flight work**: a job occupies its slot from admission until its
    /// result is delivered, so a drained-but-busy service cannot admit past
    /// the documented bound (at most `queue_capacity` jobs are ever inside
    /// the service). Admission closes once a graceful shutdown begins. On
    /// success the returned [`JobHandle`] delivers the result as soon as the
    /// job completes.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, AdmissionError> {
        let (id, rx) = {
            let mut state = self.shared.lock();
            if !state.accepting {
                return Err(AdmissionError::ShuttingDown);
            }
            let capacity = state.queue.capacity();
            if state.queue.len() + state.in_flight >= capacity {
                return Err(AdmissionError::QueueFull { capacity });
            }
            let id = state.queue.submit(spec)?;
            let (tx, rx) = mpsc::channel();
            state.senders.insert(id.0, tx);
            (id, rx)
        };
        self.trace
            .record(NO_SEQ, TraceEventKind::Admitted { job: id.0 });
        self.shared.job_ready.notify_one();
        Ok(JobHandle { id, rx })
    }

    /// Hands an already-admitted job (id and submission time preserved) to
    /// the executor, bypassing the capacity check. Batch-mode entry point.
    pub(crate) fn dispatch_admitted(&self, job: QueuedJob) -> JobHandle {
        let id = job.id;
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.lock();
            state.senders.insert(id.0, tx);
            state.queue.enqueue_admitted(job);
        }
        // The job's original submission predates this engine (and the trace
        // epoch), so the traced timeline starts here, at the hand-off.
        self.trace
            .record(NO_SEQ, TraceEventKind::Admitted { job: id.0 });
        self.shared.job_ready.notify_one();
        JobHandle { id, rx }
    }

    /// Blocks until the service is quiescent: no job queued and none in
    /// flight. Admission stays open, so jobs submitted by other threads
    /// while draining extend the wait.
    ///
    /// # Panics
    ///
    /// Panics if a pipeline thread has panicked (the service is poisoned):
    /// a dispatched job that can never complete would otherwise block the
    /// drain forever.
    pub fn drain(&self) {
        let mut state = self.shared.lock();
        loop {
            if state.poisoned {
                // Release the lock before unwinding so teardown (which must
                // re-lock) proceeds cleanly.
                drop(state);
                panic!("streaming engine poisoned: a pipeline thread panicked");
            }
            if state.queue.is_empty() && state.in_flight == 0 {
                return;
            }
            state = self
                .shared
                .idle
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A live snapshot: queue depths, lifetime completions, per-shard
    /// command-queue occupancy, and the rolling latency/throughput window.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let state = self.shared.lock();
        ServiceSnapshot {
            pending: state.queue.len(),
            in_flight: state.in_flight,
            completed: state.completed,
            accepting: state.accepting,
            shard_inflight: state.shard_inflight.clone(),
            window: state.window.stats(),
            window_throughput: state.window.throughput(),
        }
    }

    /// Graceful shutdown: closes admission, drains every queued and
    /// in-flight job, joins all threads, and reports.
    pub fn shutdown(mut self) -> ServiceReport {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> ServiceReport {
        self.shared.lock().accepting = false;
        // When already unwinding (Drop during a panic — including the drop
        // of `self` after drain() below propagated a poisoned pipeline),
        // skip the drain: asserting again would panic-within-panic and
        // abort. Workers still exit (poison flag or stopping + empty
        // queue), so the joins below complete.
        if !thread::panicking() {
            self.drain();
        }
        self.shared.lock().stopping = true;
        self.shared.job_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        for handle in self.shard_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(completer) = self.completer.take() {
            let _ = completer.join();
        }
        // Poison-safe like every other pipeline lock: this runs during
        // unwinding when `drain` propagated a poisoned service (Drop →
        // stop_and_join while panicking), and a `lock().unwrap()` here
        // would panic-within-panic and abort instead of reporting.
        let mut shard_stats: Vec<ShardStats> = self
            .stats_rx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .try_iter()
            .collect();
        shard_stats.sort_by_key(|s| s.shard);
        let state = self.shared.lock();
        for stats in &mut shard_stats {
            stats.set_peak_inflight(state.shard_inflight_peak[stats.shard]);
            stats.set_retries(state.shard_retries[stats.shard]);
            stats.set_failovers(state.shard_failovers[stats.shard]);
        }
        let (stage_breakdown, straggler, trace) = if self.trace.is_enabled() {
            let events = self.trace.events();
            let straggler = StragglerReport::from_events(&events, self.shards.shard_count());
            let trace = TraceLog {
                events,
                dropped: self.trace.dropped(),
            };
            let stage_breakdown = (state.breakdown_count > 0)
                .then(|| state.breakdown_sum.mean_of(state.breakdown_count));
            (stage_breakdown, Some(straggler), Some(trace))
        } else {
            (None, None, None)
        };
        ServiceReport {
            completed: state.completed,
            uptime: self.started_at.elapsed(),
            shard_stats,
            resident_database_bytes: self.shards.resident_bytes(),
            mapped_reads: state.mapped_reads,
            stage_overlap_events: state.stage_overlap_events,
            failed_jobs: state.failed_jobs,
            window: state.window.stats(),
            stage_breakdown,
            straggler,
            trace,
        }
    }
}

impl Drop for StreamingEngine {
    fn drop(&mut self) {
        // Dropping without an explicit shutdown still tears down gracefully
        // (drain, then join), so no thread outlives the engine.
        if !self.workers.is_empty() || self.dispatcher.is_some() {
            let _ = self.stop_and_join();
        }
    }
}

/// Sets the shared poison flag if its thread unwinds: a dispatched position
/// that will never complete must turn `drain`/`shutdown` into a propagated
/// panic rather than a deadlock.
struct PanicGuard<'a>(&'a Shared);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            let mut state = self.0.lock();
            state.poisoned = true;
            drop(state);
            self.0.job_ready.notify_all();
            self.0.idle.notify_all();
            self.0.queue_space.notify_all();
        }
    }
}

/// One Step 1 worker: live-pops the shared queue, runs Step 1, and hands the
/// prepared sample to the in-SSD dispatcher.
fn step1_worker(
    shared: &Shared,
    analyzer: &MegisAnalyzer,
    s1_tx: &SyncSender<PreparedJob>,
    trace: &TraceSink,
) {
    let _guard = PanicGuard(shared);
    loop {
        // The policy decision and the service-position assignment happen in
        // one critical section, so dispatch order is exactly policy order
        // over the jobs queued at this instant. The lookahead gate refuses
        // to dispatch more than `lookahead` positions ahead of the in-SSD
        // stage, bounding the dispatcher's reorder buffer even when one
        // sample's Step 1 is far slower than the rest.
        let (job, start_position) = {
            let mut state = shared.lock();
            loop {
                if state.poisoned {
                    return;
                }
                if state.next_position < state.isp_served + state.lookahead {
                    if let Some(job) = state.queue.pop_next() {
                        let position = state.next_position;
                        state.next_position += 1;
                        state.in_flight += 1;
                        break (job, position);
                    }
                }
                if state.stopping && state.queue.is_empty() {
                    return;
                }
                // Woken by a submission, by the completer advancing the
                // gate, or by shutdown/poison.
                state = shared
                    .job_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Step1Started binds the job id to its dispatch sequence — the join
        // key the analysis layer uses to attach the admission event.
        trace.record(
            start_position,
            TraceEventKind::Step1Started { job: job.id.0 },
        );
        let started = Instant::now();
        let step1 = analyzer.run_step1(&job.spec.sample);
        trace.record(start_position, TraceEventKind::Step1Finished);
        let prepared = PreparedJob {
            id: job.id,
            label: job.spec.label,
            priority: job.spec.priority,
            start_position,
            sample: Arc::new(job.spec.sample),
            submitted_at: job.submitted_at,
            queue_wait: started.duration_since(job.submitted_at),
            step1_time: started.elapsed(),
            step1,
        };
        // lint:allow(bounded-send, the hand-off channel is bounded by
        // workers + 1 and the dispatcher drains it unconditionally until
        // its receiver closes; a closed receiver (teardown) returns Err
        // here and exits the worker, so this send cannot wedge a shutdown)
        if s1_tx.send(prepared).is_err() {
            return;
        }
    }
}

/// Emits the `CommandStarted`/`CommandCompleted` pair(s) bracketing one
/// served command's simulated device service.
///
/// A single-owner command gets one pair spanning the whole interval —
/// exactly the uncoalesced shape. A coalesced command's interval is split
/// into per-member sub-intervals proportional to each member's dispatched
/// query items (equal shares when every slice is empty), emitted
/// *interleaved* — member `i`'s completion stamp is member `i + 1`'s start
/// stamp — so the straggler analyzer's per-device busy time still sums to
/// the real service interval, and each member's stage breakdown is charged
/// its share of the shared sweep (the per-member cost attribution the
/// fairness accounting keys on).
fn record_service_interval(
    trace: &TraceSink,
    command: &ShardCommand,
    device: usize,
    started_at: Duration,
) {
    if !trace.is_enabled() {
        return;
    }
    let stage = command.stage();
    let completed_at = trace.now();
    let members: Vec<(usize, usize)> = match command {
        ShardCommand::Intersect(c) => c.members.iter().map(|m| (m.seq, m.range.len())).collect(),
        ShardCommand::Step3(c) => vec![(c.seq, c.range.len())],
    };
    let span = completed_at.saturating_sub(started_at);
    let total: usize = members.iter().map(|(_, weight)| *weight).sum();
    let denom = if total == 0 {
        members.len() as f64
    } else {
        total as f64
    };
    let mut acc = 0.0f64;
    let mut cursor = started_at;
    for (i, (seq, weight)) in members.iter().enumerate() {
        acc += if total == 0 { 1.0 } else { *weight as f64 };
        let end = if i + 1 == members.len() {
            completed_at
        } else {
            started_at + span.mul_f64(acc / denom)
        };
        trace.record_at(
            cursor,
            *seq,
            TraceEventKind::CommandStarted {
                stage,
                shard: device,
            },
        );
        trace.record_at(
            end,
            *seq,
            TraceEventKind::CommandCompleted {
                stage,
                shard: device,
            },
        );
        cursor = end;
    }
}

/// The in-SSD dispatcher: reorders Step 1 completions back into dispatch
/// order, slices each sample's sorted query list into per-shard sub-ranges,
/// and issues tagged commands onto the bounded per-shard queues.
///
/// With a coalescing window configured
/// ([`EngineConfig::with_coalescing_window`]) the dispatcher batches
/// consecutive ready positions into one *group*: an under-filled group
/// briefly blocks on the Step 1 hand-off (up to the window) to admit
/// co-resident samples, bounded above by the queue depth (a group larger
/// than the depth could never have all its members' slots anyway) and
/// below by the dispatch lookahead gate (only samples Step 1 may run ahead
/// to can ever join). With the window off — the default — every ready
/// position flushes immediately as a singleton group, byte-identical to
/// the uncoalesced dispatcher.
#[allow(clippy::too_many_arguments)]
fn isp_dispatcher(
    shared: &Shared,
    shards: &ShardSet,
    s1_rx: Receiver<PreparedJob>,
    producer: QueueProducer,
    meta_tx: Sender<DispatchMsg>,
    queue_depth: usize,
    submission_latency: Duration,
    coalescing_window: Option<Duration>,
    trace: &TraceSink,
) {
    let _guard = PanicGuard(shared);
    // The reorder buffer behind the ordering guarantee: positions are dense
    // (assigned at pop time), so dispatching strictly ascending positions
    // makes in-SSD dispatch order equal policy order no matter how Step 1
    // completions interleave across the worker pool.
    let mut next_to_dispatch = 0usize;
    let mut reorder: BTreeMap<usize, PreparedJob> = BTreeMap::new();
    // Counts actual hand-offs to the in-SSD stage, independently of the
    // positions used for reordering: the stamp recorded as `isp_position`.
    // With the reorder buffer it always equals `start_position`; without it
    // the stamp would record arrival rank, so the ordering regression tests
    // genuinely fail if the buffer is ever bypassed.
    let mut dispatched = 0usize;
    // Group size cap: 1 with the window off (singleton groups — the
    // uncoalesced dispatch), the queue depth with it on.
    let group_cap = match coalescing_window {
        Some(_) => queue_depth.max(1),
        None => 1,
    };
    let mut open = true;
    while open {
        match s1_rx.recv() {
            Ok(prepared) => {
                reorder.insert(prepared.start_position, prepared);
            }
            Err(_) => break,
        }
        loop {
            let mut group: Vec<PreparedJob> = Vec::new();
            while group.len() < group_cap {
                match reorder.remove(&next_to_dispatch) {
                    Some(prepared) => {
                        next_to_dispatch += 1;
                        group.push(prepared);
                    }
                    None => break,
                }
            }
            if group.is_empty() {
                break;
            }
            // Batching window: hold an under-filled group briefly so
            // co-resident samples finishing Step 1 right behind it can
            // share its sweeps. Bounded by the window deadline, the group
            // cap, and the hand-off channel closing.
            if let Some(window) = coalescing_window {
                let deadline = Instant::now() + window;
                while open && group.len() < group_cap {
                    let now = Instant::now();
                    let Some(remaining) = deadline.checked_duration_since(now) else {
                        break;
                    };
                    match s1_rx.recv_timeout(remaining) {
                        Ok(prepared) => {
                            reorder.insert(prepared.start_position, prepared);
                            while group.len() < group_cap {
                                match reorder.remove(&next_to_dispatch) {
                                    Some(prepared) => {
                                        next_to_dispatch += 1;
                                        group.push(prepared);
                                    }
                                    None => break,
                                }
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => break,
                        Err(mpsc::RecvTimeoutError::Disconnected) => open = false,
                    }
                }
            }
            if !dispatch_group(
                shared,
                shards,
                &producer,
                &meta_tx,
                group,
                &mut dispatched,
                queue_depth,
                submission_latency,
                trace,
            ) {
                return;
            }
        }
    }
    // On a clean shutdown every dispatched position was issued and the
    // buffer is empty; if a Step 1 worker panicked, its position never
    // arrives and later arrivals stay buffered here — the poison flag, not
    // this loop, reports that failure.
    //
    // Dropping the producer guard here releases the dispatcher's claim on
    // the shard queues; the completer holds its own guard for Step 3
    // commands and releases it once every pending job's Step 3 is
    // dispatched. Only then do the shard workers exit (reporting their
    // lifetime stats), and the completer ends after the last completion.
}

/// Issues one group of consecutive prepared samples' per-shard commands —
/// a singleton group with the coalescing window off, up to queue-depth
/// co-resident samples with it on. Every member's job meta is registered
/// first; then each shard with at least one non-empty slice gets **one**
/// intersect command carrying every member's slice for that shard, under a
/// single queue-depth slot. Returns `false` if the service is tearing down
/// (poisoned or receivers gone).
#[allow(clippy::too_many_arguments)]
fn dispatch_group(
    shared: &Shared,
    shards: &ShardSet,
    producer: &QueueProducer,
    meta_tx: &Sender<DispatchMsg>,
    group: Vec<PreparedJob>,
    dispatched: &mut usize,
    queue_depth: usize,
    submission_latency: Duration,
    trace: &TraceSink,
) -> bool {
    let isp_start = Instant::now();
    // Per-shard member lists, built in group (= dispatch) order so a
    // coalesced command's members are sorted by sequence number and its
    // lead member is the oldest.
    let shard_count = shards.shard_count();
    let mut shard_members: Vec<Vec<IntersectMember>> = vec![Vec::new(); shard_count];
    for prepared in group {
        let seq = prepared.start_position;
        let queries = Arc::new(prepared.step1.sorted_kmers());
        // Range-partitioned dispatch: each shard sees only the sub-slice of
        // the sorted query list overlapping its key range, so per-device
        // query-side work is proportional to the slice, not the whole list.
        // A shard whose slice is empty — every padding shard, and any
        // populated shard this sample's queries miss entirely — is skipped:
        // an empty slice can only intersect to nothing, and a no-op member
        // would waste simulated device service time.
        let slices = shards.slice_queries(&queries);
        let targets: Vec<(usize, Range<usize>)> = slices
            .into_iter()
            .enumerate()
            .filter(|(_, range)| !range.is_empty())
            .collect();
        let meta = IspMeta {
            seq,
            isp_position: *dispatched,
            expected: targets.len(),
            isp_start,
            prepared,
        };
        *dispatched += 1;
        // Register the job with the completer before any command that could
        // complete for it is built.
        if meta_tx.send(DispatchMsg::Job(meta)).is_err() {
            return false;
        }
        for (shard, range) in targets {
            shard_members[shard].push(IntersectMember {
                seq,
                queries: Arc::clone(&queries),
                range,
            });
        }
    }
    for (shard, members) in shard_members.into_iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        // Host-side submission cost (doorbell write, command build). Modeled
        // *outside* the lock: it occupies the dispatcher, not the service.
        // One submission per physical command — the host-side saving of
        // coalescing is exactly the members that ride along for free.
        if !submission_latency.is_zero() {
            thread::sleep(submission_latency);
        }
        // NVMe queue-depth gate: at most `queue_depth` commands outstanding
        // per shard (submitted, completion not yet reaped). A coalesced
        // command occupies **one** slot however many members share it.
        // Blocking here is the backpressure that bounds per-device memory;
        // the completer frees slots as it reaps. (Only the dispatcher ever
        // blocks here — the completer's Step 3 submissions go through a
        // non-blocking backlog, so reaping can always proceed.)
        {
            let mut state = shared.lock();
            loop {
                if state.poisoned {
                    return false;
                }
                if state.shard_inflight[shard] < queue_depth {
                    break;
                }
                state = shared
                    .queue_space
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            state.shard_inflight[shard] += 1;
            if state.shard_inflight[shard] > state.shard_inflight_peak[shard] {
                state.shard_inflight_peak[shard] = state.shard_inflight[shard];
            }
            state.intersect_inflight += 1;
            if state.step3_inflight > 0 {
                state.stage_overlap_events += 1;
            }
        }
        let member_seqs: Vec<usize> = members.iter().map(|m| m.seq).collect();
        let command = ShardCommand::Intersect(IntersectCommand {
            shard,
            attempt: 0,
            members,
        });
        // Register the issued command with the completer *before* it can
        // reach a shard queue: the completer absorbs this channel before
        // reaping, so every completion finds its command outstanding. One
        // ledger entry per physical command, keyed by the lead member.
        if meta_tx
            .send(DispatchMsg::Issued {
                shard,
                command: command.clone(),
            })
            .is_err()
        {
            return false;
        }
        // One issue event per member: the straggler analyzer pairs issue
        // stamps with the per-member service sub-intervals the worker
        // emits, so a shared command needs one stamp per sharing sample.
        for seq in member_seqs {
            trace.record(
                seq,
                TraceEventKind::CommandIssued {
                    stage: TraceStage::Intersect,
                    shard,
                },
            );
        }
        producer.send(shard, command);
    }
    true
}

/// Deterministic capped exponential backoff for retry attempt `attempt`
/// (0-based): `base × 2^min(attempt, 3)`. A zero base means immediate
/// re-issue — the default, and what keeps the chaos tests fast.
fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    if base.is_zero() {
        Duration::ZERO
    } else {
        base * (1u32 << attempt.min(3))
    }
}

/// The in-SSD completer: reaps per-shard completions of *both* stages out
/// of order, keeps a per-job state machine (intersections → Step 2 taxID
/// retrieval → incrementally folded per-device Step 3 partials), submits
/// Step 3 commands onto the same tagged shard queues through a
/// non-blocking depth-bounded backlog, and once a job's partials are all
/// in — and every earlier sequence number has been delivered — finishes
/// the incremental reduction and delivers the result strictly in dispatch
/// order.
/// Identity of one outstanding command: `(seq, shard-of-record, stage)`.
/// Stable across retries and failover — re-issues keep the key and bump
/// only the attempt counter, so a completion always finds the entry for
/// the command it answers (or finds a newer attempt and is discarded as
/// stale).
type CommandKey = (usize, usize, TraceStage);

/// One issued-but-unreaped command, retained by the completer so it can be
/// re-issued on a transient failure, a dead shard, or a blown deadline.
/// Cheap to keep: commands share their sample/query payloads through
/// `Arc`s.
struct OutstandingCommand {
    command: ShardCommand,
    /// When the current attempt was issued; the command deadline measures
    /// from here.
    issued_at: Instant,
}

struct IspCompleter<'a> {
    shared: &'a Shared,
    analyzer: &'a Arc<MegisAnalyzer>,
    /// Producer guard on the per-shard command queues; set to `None` once
    /// no further command — Step 3 *or* a retry of either stage — can ever
    /// be issued, releasing the shard workers (and then this completer) to
    /// wind down.
    producer: Option<QueueProducer>,
    /// The shard queues themselves, for failure routing: `is_dead` picks a
    /// live target for re-issues away from a dead shard.
    queues: Arc<CommandQueues>,
    shard_count: usize,
    queue_depth: usize,
    pending: BTreeMap<usize, MergeState>,
    /// `(shard, command)` Step 3 submissions awaiting a free queue slot, in
    /// issue order. The completer drains it opportunistically instead of
    /// blocking on the depth gate: reaping is the only thing that frees
    /// slots, so the thread that reaps must never wait for one.
    backlog: VecDeque<(usize, ShardCommand)>,
    /// Every issued command awaiting its final completion — the retry and
    /// failover ledger. A command's queue-depth slot is held from its
    /// *first* issue to its final resolution, so re-issues never re-gate
    /// (see the failure model in the module docs).
    outstanding: HashMap<CommandKey, OutstandingCommand>,
    /// Commands waiting out a retry backoff: `(due, key)` pairs, fired by
    /// `fire_due_retries` once due.
    retry_due: Vec<(Instant, CommandKey)>,
    retry_budget: u32,
    retry_backoff: Duration,
    command_deadline: Option<Duration>,
    next_to_deliver: usize,
    /// `false` once the dispatcher exited and its meta channel drained (no
    /// further jobs will ever arrive).
    meta_open: bool,
    submission_latency: Duration,
    completion_latency: Duration,
    trace: TraceSink,
}

impl IspCompleter<'_> {
    fn run(mut self, meta_rx: Receiver<DispatchMsg>, resp_rx: Receiver<ShardCompletion>) {
        let _guard = PanicGuard(self.shared);
        loop {
            self.absorb(&meta_rx);
            self.advance_ready_jobs();
            self.submit_backlog();
            self.fire_due_retries();
            self.expire_stuck_commands();
            self.deliver_ready();
            self.maybe_release_txs();
            // A panicked shard worker can never respond (its siblings keep
            // the channel open), so poll the poison flag while completions
            // are outstanding: the completer then panics — poisoning
            // teardown cleanly — instead of blocking forever. The poll
            // shortens while retries are pending or a deadline is armed so
            // re-issues fire promptly.
            match resp_rx.recv_timeout(self.poll_timeout()) {
                Ok(completion) => {
                    // Host-side completion handling cost (interrupt + reap).
                    if !self.completion_latency.is_zero() {
                        thread::sleep(self.completion_latency);
                    }
                    // The meta was sent before any of the job's commands, so
                    // after absorbing the meta channel it must be known.
                    self.absorb(&meta_rx);
                    self.reap(completion);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.pending.values().any(|j| !j.is_complete()) {
                        assert!(
                            !self.shared.lock().poisoned,
                            "shard worker panicked while commands were outstanding"
                        );
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Shard workers exited, which implies both the
                    // dispatcher and this completer released their queue
                    // senders: every *servable* command was served and every
                    // buffered completion has been consumed above. Jobs
                    // still incomplete here lost their last live shard —
                    // every worker died before their commands could be
                    // re-issued — so they fail rather than hang.
                    self.absorb(&meta_rx);
                    self.advance_ready_jobs();
                    let stuck: Vec<usize> = self
                        .pending
                        .iter()
                        .filter(|(_, job)| !job.is_complete())
                        .map(|(seq, _)| *seq)
                        .collect();
                    for seq in stuck {
                        let job = self.pending[&seq].meta.prepared.id;
                        self.fail_member(seq, JobError::NoLiveShards { job });
                    }
                    self.purge_abandoned_commands();
                    self.deliver_ready();
                    return;
                }
            }
        }
    }

    /// How long to block on the completion channel: short while a retry is
    /// waiting out its backoff or a deadline is armed over outstanding
    /// commands, relaxed otherwise.
    fn poll_timeout(&self) -> Duration {
        if !self.retry_due.is_empty() {
            Duration::from_millis(1)
        } else if self.command_deadline.is_some() && !self.outstanding.is_empty() {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(50)
        }
    }

    /// Pulls every queued dispatcher record — new-job metas and
    /// issued-command registrations; marks the meta stream closed once the
    /// dispatcher has exited. The dispatcher sends `Issued` *before* the
    /// command reaches a shard queue (and Step 3 issues register on this
    /// thread), so every completion's command is in `outstanding` by the
    /// time it is reaped.
    fn absorb(&mut self, meta_rx: &Receiver<DispatchMsg>) {
        loop {
            match meta_rx.try_recv() {
                Ok(DispatchMsg::Job(meta)) => {
                    self.pending.insert(
                        meta.seq,
                        MergeState {
                            remaining: meta.expected,
                            parts: (0..self.shard_count).map(|_| None).collect(),
                            step2: None,
                            reduce: None,
                            step3_remaining: 0,
                            step3_dispatched: false,
                            failed: None,
                            meta,
                        },
                    );
                }
                Ok(DispatchMsg::Issued { shard, command }) => {
                    self.outstanding.insert(
                        (command.seq(), shard, command.stage()),
                        OutstandingCommand {
                            command,
                            issued_at: Instant::now(),
                        },
                    );
                }
                Err(TryRecvError::Empty) => return,
                Err(TryRecvError::Disconnected) => {
                    self.meta_open = false;
                    return;
                }
            }
        }
    }

    /// Books one reaped completion into its job's state machine and frees
    /// the command's queue slot — or, for a failed attempt, retries, fails
    /// over, or fails the owning job. Completions whose command is no
    /// longer outstanding (the job already failed) or whose attempt counter
    /// is stale (the command was already re-issued after a blown deadline)
    /// are discarded entirely: their slot was already freed exactly once.
    fn reap(&mut self, completion: ShardCompletion) {
        let key: CommandKey = (completion.seq, completion.shard, completion.stage);
        let Some(entry) = self.outstanding.get(&key) else {
            return;
        };
        if entry.command.attempt() != completion.attempt {
            return;
        }
        if let Err(failure) = completion.result.as_ref() {
            self.handle_failure(key, *failure);
            return;
        }
        // A coalesced command completes for every member at once: capture
        // the member list before retiring the ledger entry so the single
        // output can be demultiplexed per `(seq, shard)` below.
        let member_seqs = entry.command.member_seqs();
        let output = completion.result.expect("failure handled above");
        self.outstanding.remove(&key);
        {
            let mut state = self.shared.lock();
            state.shard_inflight[completion.shard] -= 1;
            match &output {
                CommandOutput::Intersection(_) => state.intersect_inflight -= 1,
                CommandOutput::Step3(_) => state.step3_inflight -= 1,
            }
        }
        // Reaping freed a slot in the shard's command queue — one slot
        // however many members shared the command.
        self.shared.queue_space.notify_all();
        match output {
            CommandOutput::Intersection(hit_lists) => {
                debug_assert_eq!(hit_lists.len(), member_seqs.len());
                for (member_seq, hits) in member_seqs.into_iter().zip(hit_lists) {
                    // A co-member may have failed (and possibly already
                    // been delivered) while the shared command was in
                    // flight; its share of the sweep is simply dropped.
                    let Some(job) = self.pending.get_mut(&member_seq) else {
                        continue;
                    };
                    if job.failed.is_some() {
                        continue;
                    }
                    debug_assert!(job.parts[completion.shard].is_none());
                    job.parts[completion.shard] = Some(hits);
                    job.remaining -= 1;
                }
            }
            CommandOutput::Step3(partial) => {
                // Incremental reduce: fold the partial the moment it is
                // reaped — the expensive merge work overlaps the devices
                // still streaming — keyed by the shard-of-record, which is
                // the part's position in candidate-range order.
                let job = self
                    .pending
                    .get_mut(&completion.seq)
                    .expect("completion for a dispatched job");
                job.reduce
                    .as_mut()
                    .expect("step 3 completion implies the reducer exists")
                    .offer(completion.shard, partial);
                job.step3_remaining -= 1;
            }
        }
    }

    /// One command attempt failed: schedule a retry within the budget, or
    /// fail the owning job(s) (panics are non-recoverable by design — the
    /// worker state after a caught panic is not trusted for a replay). A
    /// coalesced command fails atomically: a terminal failure fails every
    /// still-live member, and a retry replays the whole command for all of
    /// them — members are never split across attempts.
    fn handle_failure(&mut self, key: CommandKey, failure: CommandFailure) {
        let Some(entry) = self.outstanding.get(&key) else {
            return;
        };
        let attempt = entry.command.attempt();
        // Every member still pending and unfailed. The *lead* member may be
        // gone (failed and delivered) while co-members are live, so absence
        // of `key.0` alone must not drop the command.
        let live: Vec<(usize, JobId)> = entry
            .command
            .member_seqs()
            .into_iter()
            .filter_map(|seq| {
                self.pending
                    .get(&seq)
                    .filter(|job| job.failed.is_none())
                    .map(|job| (seq, job.meta.prepared.id))
            })
            .collect();
        if live.is_empty() {
            self.purge_abandoned_commands();
            return;
        }
        if failure == CommandFailure::Panicked {
            for (seq, job) in live {
                self.fail_member(seq, JobError::WorkerPanicked { job, shard: key.1 });
            }
            self.purge_abandoned_commands();
            return;
        }
        if attempt >= self.retry_budget {
            for (seq, job) in live {
                self.fail_member(
                    seq,
                    JobError::RetriesExhausted {
                        job,
                        stage: key.2.label(),
                        shard: key.1,
                        attempts: attempt + 1,
                    },
                );
            }
            self.purge_abandoned_commands();
            return;
        }
        let delay = backoff_delay(self.retry_backoff, attempt);
        if delay.is_zero() {
            self.reissue(key);
        } else {
            self.retry_due.push((Instant::now() + delay, key));
        }
    }

    /// Re-issues one outstanding command with a bumped attempt counter,
    /// routed to its record shard if alive and failed over to the next live
    /// shard otherwise (every worker holds the whole `ShardSet`, so any
    /// survivor serves the command identically).
    fn reissue(&mut self, key: CommandKey) {
        let (seq, shard, stage) = key;
        let Some(entry) = self.outstanding.get(&key) else {
            return;
        };
        // A re-issue replays the command for every still-live member at
        // once; with none left, the command is abandoned instead.
        let live: Vec<usize> = entry
            .command
            .member_seqs()
            .into_iter()
            .filter(|seq| {
                self.pending
                    .get(seq)
                    .is_some_and(|job| job.failed.is_none())
            })
            .collect();
        if live.is_empty() {
            self.purge_abandoned_commands();
            return;
        }
        let Some(target) = self.pick_target(shard) else {
            for member_seq in live {
                let job = self.pending[&member_seq].meta.prepared.id;
                self.fail_member(member_seq, JobError::NoLiveShards { job });
            }
            self.purge_abandoned_commands();
            return;
        };
        let Some(entry) = self.outstanding.get_mut(&key) else {
            return;
        };
        entry.command.bump_attempt();
        entry.issued_at = Instant::now();
        let attempt = entry.command.attempt();
        let command = entry.command.clone();
        {
            let mut state = self.shared.lock();
            state.shard_retries[shard] += 1;
            if target != shard {
                state.shard_failovers[shard] += 1;
            }
        }
        // Retry/failover accounting and events stay once per *physical*
        // command — keyed on the lead member, matching the retry ledger —
        // while the per-member issue stamps keep the straggler pairing
        // whole for every sharing sample.
        self.trace.record(
            seq,
            TraceEventKind::Retry {
                stage,
                shard,
                attempt,
            },
        );
        if target != shard {
            self.trace.record(
                seq,
                TraceEventKind::Failover {
                    stage,
                    from: shard,
                    to: target,
                },
            );
        }
        for member_seq in command.member_seqs() {
            self.trace.record(
                member_seq,
                TraceEventKind::CommandIssued {
                    stage,
                    shard: target,
                },
            );
        }
        if let Some(producer) = &self.producer {
            producer.send(target, command);
        }
    }

    /// The shard a re-issue should go to: the record shard while it lives,
    /// else the nearest live shard by index; `None` when every shard died.
    fn pick_target(&self, record: usize) -> Option<usize> {
        if !self.queues.is_dead(record) {
            return Some(record);
        }
        (1..self.shard_count)
            .map(|offset| (record + offset) % self.shard_count)
            .find(|&shard| !self.queues.is_dead(shard))
    }

    /// Re-issues every backoff-delayed retry whose due time has passed.
    fn fire_due_retries(&mut self) {
        if self.retry_due.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut due = Vec::new();
        self.retry_due.retain(|&(at, key)| {
            if at <= now {
                due.push(key);
                false
            } else {
                true
            }
        });
        for key in due {
            self.reissue(key);
        }
    }

    /// Treats any outstanding command older than the configured deadline as
    /// a transient failure — the guard against a stuck device. Commands
    /// already waiting out a retry backoff are exempt (their entry is aging
    /// by design); if the stuck attempt completes later anyway, its stale
    /// attempt counter gets it discarded.
    fn expire_stuck_commands(&mut self) {
        let Some(deadline) = self.command_deadline else {
            return;
        };
        let expired: Vec<CommandKey> = self
            .outstanding
            .iter()
            .filter(|(key, entry)| {
                entry.issued_at.elapsed() > deadline
                    && !self.retry_due.iter().any(|(_, k)| k == *key)
            })
            .map(|(key, _)| *key)
            .collect();
        for key in expired {
            self.handle_failure(key, CommandFailure::Transient);
        }
    }

    /// Marks one job failed in place, recording the error for
    /// `deliver_ready` to surface in dispatch order. The commands the job
    /// shares with still-live members stay in flight (their results are
    /// dropped at the demux); call [`Self::purge_abandoned_commands`] after
    /// the last member of a failure to retire commands nobody wants.
    fn fail_member(&mut self, seq: usize, error: JobError) {
        if let Some(job) = self.pending.get_mut(&seq) {
            if job.failed.is_none() {
                job.failed = Some(error);
            }
        }
    }

    /// True when no member of `command` is still a live (pending, unfailed)
    /// job — its result could only be dropped.
    fn is_abandoned(pending: &BTreeMap<usize, MergeState>, command: &ShardCommand) -> bool {
        command
            .member_seqs()
            .into_iter()
            .all(|seq| pending.get(&seq).is_none_or(|job| job.failed.is_some()))
    }

    /// Retires every ledgered, backlogged, or backoff-delayed command whose
    /// members have all failed: outstanding entries free their queue-depth
    /// slots exactly once, the unsubmitted backlog is pruned, and orphaned
    /// retry timers are dropped. For a single-member command this is
    /// exactly the old whole-job purge; a coalesced command outlives any
    /// one member's failure until its last live member is gone.
    fn purge_abandoned_commands(&mut self) {
        let keys: Vec<CommandKey> = self
            .outstanding
            .iter()
            .filter(|(_, entry)| Self::is_abandoned(&self.pending, &entry.command))
            .map(|(key, _)| *key)
            .collect();
        if !keys.is_empty() {
            let mut state = self.shared.lock();
            for key in &keys {
                let entry = self.outstanding.remove(key).expect("key just listed");
                state.shard_inflight[key.1] -= 1;
                match entry.command {
                    ShardCommand::Intersect(_) => state.intersect_inflight -= 1,
                    ShardCommand::Step3(_) => state.step3_inflight -= 1,
                }
            }
            drop(state);
            self.shared.queue_space.notify_all();
        }
        let pending = &self.pending;
        self.backlog
            .retain(|(_, command)| !Self::is_abandoned(pending, command));
        let outstanding = &self.outstanding;
        self.retry_due
            .retain(|(_, key)| outstanding.contains_key(key));
    }

    /// Runs Step 2 and hands Step 3 to the backlog for every job whose
    /// intersections are all in — including jobs that never had an
    /// intersect command (empty query lists).
    fn advance_ready_jobs(&mut self) {
        let ready: Vec<usize> = self
            .pending
            .iter()
            .filter(|(_, job)| job.remaining == 0 && !job.step3_dispatched && job.failed.is_none())
            .map(|(seq, _)| *seq)
            .collect();
        for seq in ready {
            self.start_step3(seq);
        }
    }

    /// Merges one job's intersections in shard order, runs taxID retrieval
    /// (Step 2's presence call), partitions the candidate list into
    /// contiguous taxid ranges, and issues one Step 3 command per non-empty
    /// range onto the submission backlog.
    fn start_step3(&mut self, seq: usize) {
        let analyzer = self.analyzer;
        let shard_count = self.shard_count;
        let job = self.pending.get_mut(&seq).expect("ready job is pending");
        // Shard order is key-range order, so the concatenation equals the
        // unsharded intersection of the full query list.
        let merged: Vec<Kmer> = std::mem::take(&mut job.parts)
            .into_iter()
            .flatten()
            .flatten()
            .collect();
        let step2 = analyzer.step2_from_intersection(merged);
        // The candidate positions are shared across the job's per-device
        // commands; each device resolves its contiguous sub-range against
        // the analyzer's memoized per-species indexes.
        let candidates = Arc::new(analyzer.candidate_positions(&step2.presence));
        let indexes = analyzer.reference_indexes();
        let candidate_refs: Vec<&megis_genomics::database::ReferenceIndex> =
            candidates.iter().map(|&p| &indexes[p]).collect();
        let partition = step3::partition_candidates(&candidate_refs, shard_count);
        job.step2 = Some(step2);
        job.step3_dispatched = true;
        let sample = Arc::clone(&job.meta.prepared.sample);
        // Normalize modeled part costs into candidate units so the
        // simulated per-item device latency prices a command by the bytes
        // it streams: the job's units sum to its candidate count, and
        // uniform per-candidate costs reproduce `range.len()` exactly.
        let total_cost: u64 = partition.iter().map(|p| p.cost).sum();
        let n_candidates = candidates.len();
        let mut expected = vec![false; shard_count];
        let mut commands = Vec::new();
        for (shard, part) in partition.into_iter().enumerate() {
            // Devices whose candidate range is empty (fewer candidates than
            // devices, or none at all) are skipped, like query-less shards
            // in Step 2.
            if part.is_empty() {
                continue;
            }
            expected[shard] = true;
            let stream_units = part.cost as f64 * n_candidates as f64 / total_cost as f64;
            commands.push((
                shard,
                ShardCommand::Step3(Step3Command {
                    seq,
                    sample: Arc::clone(&sample),
                    candidates: Arc::clone(&candidates),
                    range: part.range,
                    base_offset: part.base_offset,
                    stream_units,
                    record_shard: shard,
                    attempt: 0,
                }),
            ));
        }
        // The reducer folds partials as they are reaped; a job with no
        // candidates expects none and is complete immediately (its finish
        // yields the same default output the batch reduce gives an empty
        // partial list).
        job.reduce = Some(step3::IncrementalReduce::new(expected));
        job.step3_remaining = commands.len();
        self.backlog.extend(commands);
    }

    /// Submits backlogged Step 3 commands to every shard with a free queue
    /// slot — the same `(sequence, shard)` tagging and depth bound as the
    /// dispatcher's intersect path, but never blocking: commands left over
    /// take slots as future reaps free them.
    fn submit_backlog(&mut self) {
        if self.backlog.is_empty() {
            return;
        }
        let Some(producer) = &self.producer else {
            return;
        };
        let mut to_send = Vec::new();
        {
            let mut state = self.shared.lock();
            let mut kept = VecDeque::with_capacity(self.backlog.len());
            for (shard, command) in self.backlog.drain(..) {
                if state.shard_inflight[shard] < self.queue_depth {
                    state.shard_inflight[shard] += 1;
                    if state.shard_inflight[shard] > state.shard_inflight_peak[shard] {
                        state.shard_inflight_peak[shard] = state.shard_inflight[shard];
                    }
                    state.step3_inflight += 1;
                    if state.intersect_inflight > 0 {
                        state.stage_overlap_events += 1;
                    }
                    to_send.push((shard, command));
                } else {
                    kept.push_back((shard, command));
                }
            }
            self.backlog = kept;
        }
        for (shard, command) in to_send {
            // Host-side submission cost (doorbell write, command build),
            // modeled outside the lock.
            if !self.submission_latency.is_zero() {
                thread::sleep(self.submission_latency);
            }
            self.trace.record(
                command.seq(),
                TraceEventKind::CommandIssued {
                    stage: TraceStage::Step3,
                    shard,
                },
            );
            // Register before the send — same thread as the reap loop, so
            // the completion cannot be observed before this insert.
            self.outstanding.insert(
                (command.seq(), shard, TraceStage::Step3),
                OutstandingCommand {
                    command: command.clone(),
                    issued_at: Instant::now(),
                },
            );
            producer.send(shard, command);
        }
    }

    /// Drops the completer's producer guard once no further Step 3 command
    /// can ever be issued: the dispatcher has exited (so no new jobs), every
    /// pending job's Step 3 is dispatched, and the backlog is drained. The
    /// shard workers then wind down as their queues empty, which closes the
    /// completion channel and ends the completer — the hand-over that
    /// breaks the shutdown cycle between workers waiting for producers and
    /// the completer waiting for completions.
    fn maybe_release_txs(&mut self) {
        if self.producer.is_some()
            && !self.meta_open
            && self.backlog.is_empty()
            && self.pending.is_empty()
        {
            self.producer = None;
        }
    }

    /// Delivers every fully reduced job at the head of the sequence:
    /// completions are collected out of order, but results leave in
    /// dispatch order.
    fn deliver_ready(&mut self) {
        loop {
            match self.pending.get(&self.next_to_deliver) {
                Some(job) if job.is_complete() => {}
                _ => return,
            }
            let job = self
                .pending
                .remove(&self.next_to_deliver)
                .expect("checked above");
            self.next_to_deliver += 1;
            self.finalize(job);
        }
    }

    /// Finishes one job's incremental Step 3 reduction — the partials were
    /// already folded at reap time, so only the vote threshold and
    /// abundance accumulation run here — and delivers the result. A failed
    /// job skips the reduction and delivers its error instead.
    fn finalize(&self, job: MergeState) {
        if let Some(error) = job.failed.clone() {
            self.finalize_failed(job.meta, error);
            return;
        }
        let MergeState {
            meta,
            step2,
            reduce,
            ..
        } = job;
        let step2 = step2.expect("complete job ran step 2");
        let seq = meta.prepared.start_position;
        self.trace.record(seq, TraceEventKind::ReduceStarted);
        let step3 = reduce.expect("complete job dispatched step 3").finish();
        let output = MegisAnalyzer::assemble_output(&meta.prepared.step1, &step2, step3);
        self.trace.record(seq, TraceEventKind::ReduceFinished);
        // Reconstruct the job's stage timeline from its own events, stamped
        // with the same instant the Delivered event gets, so the breakdown's
        // telescoping total spans exactly admission→delivery.
        let job_id = meta.prepared.id.0;
        let breakdown = if self.trace.is_enabled() {
            let delivered_at = self.trace.now();
            let events = self.trace.events_for(seq, job_id);
            self.trace
                .record_at(delivered_at, seq, TraceEventKind::Delivered { job: job_id });
            StageBreakdown::from_events(&events, delivered_at)
        } else {
            None
        };
        let result = JobResult {
            id: meta.prepared.id,
            label: meta.prepared.label,
            priority: meta.prepared.priority,
            start_position: meta.prepared.start_position,
            isp_position: meta.isp_position,
            output,
            queue_wait: meta.prepared.queue_wait,
            step1_time: meta.prepared.step1_time,
            isp_time: meta.isp_start.elapsed(),
            latency: meta.prepared.submitted_at.elapsed(),
            breakdown,
        };
        // Deliver before signaling idle, all under the lock: a drain()
        // returning quiescent must imply every result has already reached
        // its handle.
        let mut state = self.shared.lock();
        if let Some(breakdown) = &result.breakdown {
            state.breakdown_sum.accumulate(breakdown);
            state.breakdown_count += 1;
        }
        state.window.record(result.latency);
        state.completed += 1;
        state.in_flight -= 1;
        state.isp_served += 1;
        state.mapped_reads += result.output.mapped_reads;
        if let Some(tx) = state.senders.remove(&result.id.0) {
            // lint:allow(guard-across-blocking, std mpsc Sender::send never
            // blocks on an unbounded channel, and delivery must happen under
            // the lock so a quiescent drain implies every result has already
            // reached its handle)
            let _ = tx.send(Ok(result));
        }
        drop(state);
        self.shared.idle.notify_all();
        // Advancing isp_served reopens the dispatch lookahead gate.
        self.shared.job_ready.notify_all();
    }

    /// Delivers one failed job's error in dispatch order. The failure is
    /// isolated: the job's slot leaves `in_flight` and — critically — its
    /// sequence still advances `isp_served`, so the dispatch lookahead gate
    /// keeps opening for the jobs behind it. The rolling latency window and
    /// the completion counter record only successes.
    fn finalize_failed(&self, meta: IspMeta, error: JobError) {
        let seq = meta.prepared.start_position;
        let job_id = meta.prepared.id.0;
        self.trace
            .record(seq, TraceEventKind::Delivered { job: job_id });
        let mut state = self.shared.lock();
        state.failed_jobs += 1;
        state.in_flight -= 1;
        state.isp_served += 1;
        if let Some(tx) = state.senders.remove(&job_id) {
            // lint:allow(guard-across-blocking, std mpsc Sender::send never
            // blocks on an unbounded channel, and the error is delivered
            // under the lock for the same drain-implies-delivered guarantee
            // successful results get)
            let _ = tx.send(Err(error));
        }
        drop(state);
        self.shared.idle.notify_all();
        // Advancing isp_served reopens the dispatch lookahead gate.
        self.shared.job_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SchedPolicy;
    use megis::config::MegisConfig;
    use megis_genomics::sample::{CommunityConfig, Diversity};

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_reads(100)
            .with_database_species(10)
            .build(23)
    }

    fn analyzer(c: &megis_genomics::sample::Community) -> MegisAnalyzer {
        MegisAnalyzer::build(c.references(), MegisConfig::small())
    }

    #[test]
    fn results_are_delivered_incrementally() {
        let c = community();
        let a = analyzer(&c);
        let expected = a.analyze(c.sample());
        let engine = StreamingEngine::new(a, EngineConfig::new().with_workers(2).with_shards(2));
        for i in 0..3 {
            let handle = engine
                .submit(JobSpec::new(format!("s{i}"), c.sample().clone()))
                .unwrap();
            // Each result arrives without any drain or batch boundary.
            let result = handle.wait().expect("job served while engine runs");
            assert_eq!(result.output, expected);
            assert_eq!(result.isp_position, result.start_position);
        }
        let snap = engine.snapshot();
        assert_eq!(snap.completed, 3);
        assert!(snap.accepting);
        assert_eq!(snap.window.count, 3);
        assert_eq!(snap.shard_inflight, vec![0, 0], "quiescent queues");
        let report = engine.shutdown();
        assert_eq!(report.completed, 3);
        assert_eq!(report.shard_stats.len(), 2);
        for s in &report.shard_stats {
            assert_eq!(s.jobs, 3);
        }
    }

    #[test]
    fn drain_waits_for_quiescence() {
        let c = community();
        let engine = StreamingEngine::new(
            analyzer(&c),
            EngineConfig::new().with_workers(2).with_shards(2),
        );
        let handles: Vec<JobHandle> = (0..6)
            .map(|i| {
                engine
                    .submit(JobSpec::new(format!("s{i}"), c.sample().clone()))
                    .unwrap()
            })
            .collect();
        engine.drain();
        // After a drain every result must already be deliverable without
        // blocking.
        for handle in handles {
            assert!(handle.try_wait().is_some(), "drain implies delivery");
        }
        let snap = engine.snapshot();
        assert_eq!(snap.pending, 0);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.completed, 6);
    }

    #[test]
    fn admission_rejects_when_full_then_recovers() {
        let c = community();
        // One worker and a tiny queue: fill it faster than it drains.
        let engine = StreamingEngine::new(
            analyzer(&c),
            EngineConfig::new().with_workers(1).with_queue_capacity(1),
        );
        let mut rejected = false;
        let mut handles = Vec::new();
        for i in 0..64 {
            match engine.submit(JobSpec::new(format!("s{i}"), c.sample().clone())) {
                Ok(h) => handles.push(h),
                Err(AdmissionError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(rejected, "a 1-deep queue must reject a fast submitter");
        engine.drain();
        // Rejection is transient: capacity frees up as jobs complete.
        let handle = engine
            .submit(JobSpec::new("late", c.sample().clone()))
            .unwrap();
        assert!(handle.wait().is_ok());
        for handle in handles {
            assert!(handle.wait().is_ok(), "admitted jobs all complete");
        }
    }

    #[test]
    fn admission_bound_counts_in_flight_work() {
        // Regression (satellite): `JobQueue::submit` alone rejects only on
        // *queued* >= capacity, so a drained-but-busy service used to admit
        // past its documented bound. The service-level check must count
        // in-flight work: with capacity 1, a job that has been popped (queue
        // empty) but not delivered still occupies the only slot.
        let c = community();
        let engine = StreamingEngine::new(
            analyzer(&c),
            EngineConfig::new()
                .with_workers(1)
                .with_queue_capacity(1)
                // Slow completion reaping keeps the job in flight long
                // enough to observe the drained-but-busy window.
                .with_command_latencies(Duration::ZERO, Duration::from_millis(25)),
        );
        let first = engine
            .submit(JobSpec::new("first", c.sample().clone()))
            .unwrap();
        // Wait for the worker to pop the job: the queue is empty, the
        // service is busy.
        let mut observed_busy = false;
        for _ in 0..2000 {
            let snap = engine.snapshot();
            if snap.completed == 1 {
                break;
            }
            if snap.pending == 0 && snap.in_flight == 1 {
                observed_busy = true;
                assert_eq!(
                    engine
                        .submit(JobSpec::new("second", c.sample().clone()))
                        .unwrap_err(),
                    AdmissionError::QueueFull { capacity: 1 },
                    "a drained-but-busy service must not admit past capacity"
                );
                break;
            }
            thread::sleep(Duration::from_micros(100));
        }
        assert!(observed_busy, "never observed the drained-but-busy window");
        assert!(first.wait().is_ok());
        // The slot frees once the result is delivered.
        let late = engine
            .submit(JobSpec::new("late", c.sample().clone()))
            .unwrap();
        assert!(late.wait().is_ok());
    }

    #[test]
    fn in_flight_never_exceeds_the_dispatch_lookahead() {
        // The lookahead gate bounds dispatched-but-unserved positions (and
        // with them the reorder buffer) at 2 * workers + 2, keeping peak
        // prepared-sample memory O(workers) instead of O(backlog).
        let c = community();
        let engine = StreamingEngine::new(
            analyzer(&c),
            EngineConfig::new().with_workers(2).with_shards(2),
        );
        let handles: Vec<JobHandle> = (0..24)
            .map(|i| {
                engine
                    .submit(JobSpec::new(format!("s{i}"), c.sample().clone()))
                    .unwrap()
            })
            .collect();
        let bound = 2 * 2 + 2;
        loop {
            let snap = engine.snapshot();
            assert!(
                snap.in_flight <= bound,
                "{} jobs in flight exceeds the lookahead bound {bound}",
                snap.in_flight
            );
            if snap.completed == 24 {
                break;
            }
            thread::sleep(Duration::from_micros(200));
        }
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn shard_inflight_respects_the_configured_queue_depth() {
        let c = community();
        let depth = 2;
        let engine = StreamingEngine::new(
            analyzer(&c),
            EngineConfig::new()
                .with_workers(2)
                .with_shards(2)
                .with_queue_depth(depth)
                // Slow reaping so the dispatcher actually hits the gate.
                .with_command_latencies(Duration::ZERO, Duration::from_millis(2)),
        );
        let handles: Vec<JobHandle> = (0..12)
            .map(|i| {
                engine
                    .submit(JobSpec::new(format!("s{i}"), c.sample().clone()))
                    .unwrap()
            })
            .collect();
        loop {
            let snap = engine.snapshot();
            for (shard, inflight) in snap.shard_inflight.iter().enumerate() {
                assert!(
                    *inflight <= depth,
                    "shard {shard} holds {inflight} commands, depth bound is {depth}"
                );
            }
            if snap.completed == 12 {
                break;
            }
            thread::sleep(Duration::from_micros(200));
        }
        let report = engine.shutdown();
        for stats in &report.shard_stats {
            assert!(stats.peak_inflight <= depth);
            assert!(stats.peak_inflight >= 1, "some command was outstanding");
        }
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn step3_flows_through_the_shard_queues_and_overlaps_step2() {
        // Sharded Step 3: every sample with candidates must have its
        // unified-index generation and read mapping served as per-device
        // commands (not a coordinator call), each candidate merged on
        // exactly one device, results byte-identical to the sequential
        // analyzer — and with a simulated device service time, some
        // sample's Step 3 command must be submitted while another sample's
        // intersect command is outstanding (the per-stage pipeline overlap).
        //
        // Work stealing is off so the per-shard `step3_jobs` assertions are
        // deterministic (with it on, an idle device may serve a peer's
        // command); the stealing path has its own dedicated test below.
        let c = community();
        let a = analyzer(&c);
        let expected = a.analyze(c.sample());
        assert!(expected.mapped_reads > 0, "fixture must exercise mapping");
        let candidates = expected.presence.len() as u64;
        assert!(
            candidates >= 2,
            "fixture needs a partitionable candidate set"
        );
        let engine = StreamingEngine::new(
            a,
            EngineConfig::new()
                .with_workers(2)
                .with_shards(2)
                .with_queue_depth(4)
                .with_device_latency(Duration::from_millis(1))
                .with_work_stealing(false),
        );
        let jobs = 6u64;
        let handles: Vec<JobHandle> = (0..jobs)
            .map(|i| {
                engine
                    .submit(JobSpec::new(format!("s{i}"), c.sample().clone()))
                    .unwrap()
            })
            .collect();
        for handle in handles {
            let result = handle.wait().expect("job served");
            assert_eq!(result.output, expected);
        }
        let report = engine.shutdown();
        assert_eq!(report.mapped_reads, jobs * expected.mapped_reads);
        let step3_jobs: u64 = report.shard_stats.iter().map(|s| s.step3_jobs).sum();
        let step3_items: u64 = report.shard_stats.iter().map(|s| s.step3_items).sum();
        assert!(step3_jobs > 0, "step 3 must run as device commands");
        assert_eq!(
            step3_items,
            jobs * candidates,
            "each candidate must be merged on exactly one device per job"
        );
        // With 2 devices and >= 2 candidates, both devices serve Step 3.
        for stats in &report.shard_stats {
            assert!(
                stats.step3_jobs == jobs,
                "shard {} served {} of {jobs} step-3 commands",
                stats.shard,
                stats.step3_jobs
            );
        }
        assert!(
            report.stage_overlap_events > 0,
            "step 3 of one sample must overlap step 2 of another"
        );
        let summary = report.summary();
        assert!(summary.contains("reads mapped"));
        assert!(summary.contains("stage overlap events"));
    }

    #[test]
    fn work_stealing_engages_on_skewed_candidates_and_stays_byte_identical() {
        use megis_genomics::dna::{Base, PackedSequence};
        use megis_genomics::read::{Read, ReadSet};
        use megis_genomics::reference::{ReferenceCollection, ReferenceGenome};
        use megis_genomics::sample::Sample;
        use megis_genomics::taxonomy::{TaxId, Taxonomy};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        // Adversarially skewed candidate sizes: one giant genome next to
        // three small ones. The cost-aware partitioner gives the giant a
        // device to itself, so that device's modeled stream time dwarfs its
        // peer's — exactly the regime where the idle peer must steal queued
        // Step 3 commands instead of waiting out the skew.
        let mut rng = StdRng::seed_from_u64(97);
        let lengths = [6000usize, 400, 400, 400];
        let taxonomy = Taxonomy::synthetic(1, lengths.len());
        let mut genomes = Vec::new();
        let mut reads = ReadSet::new();
        for (s, &len) in lengths.iter().enumerate() {
            let taxid = TaxId(1000 + s as u32 + 1);
            let mut seq = PackedSequence::with_capacity(len);
            for _ in 0..len {
                seq.push(Base::from_code(rng.gen_range(0..4)));
            }
            // Error-free tiling reads (stride < read_len - k_max) so every
            // species — including the giant — clears the sketch containment
            // and support thresholds and becomes a Step 3 candidate.
            let (read_len, stride) = (100, 40);
            let mut start = 0;
            let mut i = 0;
            while start + read_len <= len {
                reads.push(Read::new(
                    format!("r{s}-{i}"),
                    seq.subsequence(start, read_len),
                ));
                start += stride;
                i += 1;
            }
            genomes.push(ReferenceGenome::new(taxid, format!("skew{s}"), seq));
        }
        let references = ReferenceCollection::new(genomes, taxonomy);
        let sample = Sample::from_reads(reads);
        let expected = MegisAnalyzer::build(&references, MegisConfig::small()).analyze(&sample);
        assert_eq!(
            expected.presence.len(),
            lengths.len(),
            "every species must become a Step 3 candidate"
        );
        assert!(expected.mapped_reads > 0, "fixture must exercise mapping");

        let jobs = 8u64;
        let run = |stealing: bool| {
            let engine = StreamingEngine::new(
                MegisAnalyzer::build(&references, MegisConfig::small()),
                EngineConfig::new()
                    .with_workers(2)
                    .with_shards(2)
                    .with_queue_depth(4)
                    .with_step3_item_latency(Duration::from_millis(5))
                    .with_work_stealing(stealing),
            );
            let handles: Vec<JobHandle> = (0..jobs)
                .map(|i| {
                    engine
                        .submit(JobSpec::new(format!("s{i}"), sample.clone()))
                        .unwrap()
                })
                .collect();
            let outputs: Vec<megis::analyzer::MegisOutput> = handles
                .into_iter()
                .map(|h| h.wait().expect("job served").output)
                .collect();
            (outputs, engine.shutdown())
        };

        let (stolen_outputs, stolen_report) = run(true);
        let (pinned_outputs, pinned_report) = run(false);

        // Byte-parity: stolen and pinned runs both match the sequential
        // oracle exactly, job for job.
        for output in stolen_outputs.iter().chain(pinned_outputs.iter()) {
            assert_eq!(*output, expected);
        }
        // One merge per candidate regardless of which device served it.
        for report in [&stolen_report, &pinned_report] {
            let items: u64 = report.shard_stats.iter().map(|s| s.step3_items).sum();
            assert_eq!(items, jobs * lengths.len() as u64);
        }
        let stolen: u64 = stolen_report
            .shard_stats
            .iter()
            .map(|s| s.stolen_items)
            .sum();
        assert!(
            stolen > 0,
            "the idle device must steal from the loaded one on this skew"
        );
        let pinned: u64 = pinned_report
            .shard_stats
            .iter()
            .map(|s| s.stolen_items)
            .sum();
        assert_eq!(pinned, 0, "stealing disabled must mean zero stolen items");
    }

    #[test]
    fn shutdown_reaps_stats_through_a_poisoned_stats_mutex() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // Regression: `stop_and_join` used to call `.lock().unwrap()` on the
        // stats receiver — the only pipeline lock without the
        // `PoisonError::into_inner` recovery. That mutex is poisoned exactly
        // when a panic is already unwinding, which is the one moment a
        // second panic aborts the process instead of reporting. Poison it
        // the way an unwinding thread would (panic while holding the guard)
        // and assert shutdown still reaps the per-shard stats.
        let c = community();
        let a = analyzer(&c);
        let engine = StreamingEngine::new(a, EngineConfig::new().with_workers(2).with_shards(2));
        let handle = engine
            .submit(JobSpec::new("job", c.sample().clone()))
            .unwrap();
        assert!(handle.wait().is_ok());
        let poisoner = catch_unwind(AssertUnwindSafe(|| {
            // lint:allow(poison-safety, deliberately panicking while holding
            // the guard is the only way to poison the mutex under test)
            let _guard = engine.stats_rx.lock().unwrap();
            panic!("simulated pipeline panic while holding the stats mutex");
        }));
        assert!(poisoner.is_err(), "the poisoning closure must panic");
        // With the old `.lock().unwrap()` this shutdown panics again; with
        // `PoisonError::into_inner` it must deliver both shards' stats.
        let report = engine.shutdown();
        assert_eq!(report.completed, 1);
        assert_eq!(
            report.shard_stats.len(),
            2,
            "stats must be reaped through the poisoned mutex"
        );
        for stats in &report.shard_stats {
            assert_eq!(stats.jobs, 1, "shard {} served the job", stats.shard);
        }
    }

    #[test]
    fn dropping_the_engine_serves_queued_jobs() {
        let c = community();
        let a = analyzer(&c);
        let expected = a.analyze(c.sample());
        let handles: Vec<JobHandle> = {
            let engine =
                StreamingEngine::new(a, EngineConfig::new().with_workers(2).with_shards(3));
            (0..4)
                .map(|i| {
                    engine
                        .submit(JobSpec::new(format!("s{i}"), c.sample().clone()))
                        .unwrap()
                })
                .collect()
            // Engine dropped here: drop performs a graceful drain + join.
        };
        for handle in handles {
            let result = handle.wait().expect("drop drains queued jobs");
            assert_eq!(result.output, expected);
        }
    }

    #[test]
    fn priority_submitted_mid_stream_overtakes_queued_normals() {
        let c = community();
        // One worker so the queue actually builds up behind the head job.
        let engine = StreamingEngine::new(
            analyzer(&c),
            EngineConfig::new()
                .with_workers(1)
                .with_policy(SchedPolicy::Priority),
        );
        let mut handles = Vec::new();
        for i in 0..5 {
            handles.push(
                engine
                    .submit(JobSpec::new(format!("normal-{i}"), c.sample().clone()))
                    .unwrap(),
            );
        }
        // Submitted last, while earlier normals are still queued: the live
        // pop must pick it next among whatever is waiting.
        let stat = engine
            .submit(JobSpec::new("stat", c.sample().clone()).with_priority(Priority::High))
            .unwrap();
        engine.drain();
        let stat_result = stat.try_wait().unwrap().unwrap();
        let normal_positions: Vec<usize> = handles
            .into_iter()
            .map(|h| h.try_wait().unwrap().unwrap().start_position)
            .collect();
        // Some head-of-line normals may already have been dispatched before
        // the high submission arrived (the lookahead gate allows up to
        // 2*1+2 = 4 positions ahead), but the live pop must schedule the
        // stat job before whatever is still queued. Requiring at least one
        // overtake keeps the assertion meaningful without racing the OS
        // scheduler: it can only fail if the submitting thread stalls for
        // several full service times mid-loop.
        let overtaken = normal_positions
            .iter()
            .filter(|p| **p > stat_result.start_position)
            .count();
        assert!(
            overtaken >= 1,
            "high priority must overtake the queued normals: stat at {}, normals {:?}",
            stat_result.start_position,
            normal_positions
        );
        assert_eq!(stat_result.isp_position, stat_result.start_position);
    }
}
