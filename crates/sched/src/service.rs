//! Service mode: the continuously scheduled streaming executor.
//!
//! [`StreamingEngine`] keeps the whole pipeline of the batch engine — a pool
//! of host Step 1 workers feeding a sharded in-SSD stage (§4.7 of the paper)
//! — running as a long-lived service. Jobs can be submitted from any thread
//! *while the engine runs*: admission goes through the shared [`JobQueue`],
//! and each Step 1 worker picks its next job with a live `pop_next` at
//! dispatch time, so a high-priority sample submitted mid-stream competes
//! under the policy immediately instead of waiting for a batch boundary.
//! MetaStore and GenStore frame in-storage genomics accelerators the same
//! way: continuously fed, not drained once.
//!
//! **Ordering guarantee.** Dispatch order (the `start_position` assigned in
//! the same critical section as the pop) *is* policy order at dispatch time.
//! Step 1 workers may finish out of that order, so the in-SSD coordinator
//! holds early arrivals in a reorder buffer keyed on `start_position` and
//! serves strictly in dispatch order — Steps 2–3 can never serve a
//! low-priority sample ahead of a high-priority one that entered service
//! first. A dispatch lookahead gate keeps workers from running more than
//! `2 * workers + 2` positions ahead of the in-SSD stage, so the reorder
//! buffer — and peak prepared-sample memory — stays O(workers) even when
//! one sample's Step 1 is far slower than the rest.
//!
//! **Failure.** If a pipeline thread panics (a dispatched position that
//! would otherwise never complete), the service is *poisoned*:
//! [`StreamingEngine::drain`] and [`StreamingEngine::shutdown`] propagate
//! the failure as a panic instead of blocking forever, and outstanding
//! [`JobHandle`]s yield `None`.
//!
//! **Delivery.** Each submission returns a [`JobHandle`]; the result is sent
//! on the handle's channel the moment the job completes, so clients consume
//! results incrementally instead of waiting for a closed batch. A rolling
//! window ([`crate::metrics::RollingWindow`]) over recent completions backs
//! the live [`ServiceSnapshot`].
//!
//! **Shutdown.** [`StreamingEngine::drain`] blocks until the service is
//! quiescent; [`StreamingEngine::shutdown`] closes admission, drains, joins
//! every thread, and reports. Dropping the engine performs the same graceful
//! shutdown.
//!
//! [`crate::BatchEngine::run`] is a thin wrapper over this executor
//! (dispatch the closed batch, drain, shut down), so batch mode inherits the
//! ordering fix and the byte-identical-to-`analyze` contract by
//! construction.

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use megis::step1::Step1Output;
use megis::MegisAnalyzer;
use megis_genomics::kmer::Kmer;
use megis_genomics::sample::Sample;

use crate::engine::EngineConfig;
use crate::job::{JobId, JobResult, JobSpec, Priority};
use crate::metrics::{LatencyStats, RollingWindow, ShardStats};
use crate::queue::{AdmissionError, JobQueue, QueuedJob};
use crate::shard::ShardSet;

/// A Step 1 output in flight between the host stage and the in-SSD stage.
struct PreparedJob {
    id: JobId,
    label: String,
    priority: Priority,
    start_position: usize,
    sample: Sample,
    submitted_at: Instant,
    queue_wait: Duration,
    step1_time: Duration,
    step1: Step1Output,
}

/// State shared by submitters, Step 1 workers, and the in-SSD coordinator.
#[derive(Debug)]
struct ServiceState {
    /// The live admission queue; workers `pop_next` it at dispatch time.
    queue: JobQueue,
    /// Per-job result channels, removed at delivery.
    senders: HashMap<u64, mpsc::Sender<JobResult>>,
    /// Next service position to assign (same critical section as the pop).
    next_position: usize,
    /// Jobs popped but not yet completed by the in-SSD stage.
    in_flight: usize,
    /// Positions fully served by the in-SSD stage (the coordinator's
    /// `next_to_serve`, mirrored here for the dispatch lookahead gate).
    isp_served: usize,
    /// Maximum positions workers may dispatch ahead of the in-SSD stage;
    /// bounds the reorder buffer and prepared-sample memory at O(workers).
    lookahead: usize,
    /// Set when a pipeline thread panics; drain/shutdown propagate it as a
    /// panic instead of waiting forever on work that can never complete.
    poisoned: bool,
    /// Cleared when a graceful shutdown begins; submissions then reject.
    accepting: bool,
    /// Set after the final drain; idle workers exit instead of waiting.
    stopping: bool,
    /// Jobs completed over the service lifetime.
    completed: u64,
    /// Rolling latency/throughput window over recent completions.
    window: RollingWindow,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<ServiceState>,
    /// Signaled on submission (workers wait here when the queue is empty).
    job_ready: Condvar,
    /// Signaled on completion (drain waits here for quiescence).
    idle: Condvar,
}

impl Shared {
    /// Locks the state, recovering from std mutex poisoning: the engine's
    /// own `poisoned` flag (set by [`PanicGuard`]) is the real failure
    /// signal, and teardown must keep working while a panic unwinds —
    /// a `lock().unwrap()` during unwind would panic-within-panic and
    /// abort the process.
    fn lock(&self) -> MutexGuard<'_, ServiceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Live snapshot of a running service.
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    /// Jobs admitted but not yet dispatched to Step 1.
    pub pending: usize,
    /// Jobs dispatched but not yet completed.
    pub in_flight: usize,
    /// Jobs completed since the service started.
    pub completed: u64,
    /// Whether submissions are currently accepted.
    pub accepting: bool,
    /// Latency distribution over the rolling completion window.
    pub window: LatencyStats,
    /// Completions per second over the rolling window.
    pub window_throughput: f64,
}

/// Final accounting returned by [`StreamingEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Jobs completed over the service lifetime.
    pub completed: u64,
    /// Wall-clock time from service start to shutdown.
    pub uptime: Duration,
    /// Per-shard busy accounting over the service lifetime.
    pub shard_stats: Vec<ShardStats>,
    /// Latency distribution over the final rolling window.
    pub window: LatencyStats,
}

/// Claim on one submitted job's result.
///
/// The result is sent the moment the job completes; [`JobHandle::wait`]
/// blocks until then. If the engine is dropped before the job is served
/// (which only happens on teardown without a drain), waiting yields `None`.
#[derive(Debug)]
pub struct JobHandle {
    id: JobId,
    rx: Receiver<JobResult>,
}

impl JobHandle {
    /// The admitted job's identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Blocks until the job completes and returns its result, or `None` if
    /// the engine stopped without serving it.
    pub fn wait(self) -> Option<JobResult> {
        self.rx.recv().ok()
    }

    /// Returns the result if the job has already completed, without
    /// blocking.
    pub fn try_wait(&self) -> Option<JobResult> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the result.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// The long-running streaming engine (service mode).
///
/// See the [module docs](self) for the execution model. Methods take
/// `&self`, so the engine can be shared across submitter threads behind an
/// [`Arc`].
#[derive(Debug)]
pub struct StreamingEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    isp: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
    // Mutex-wrapped only so the engine is `Sync` (shareable behind an
    // `Arc`); the receiver is drained once, at shutdown.
    stats_rx: Mutex<Receiver<ShardStats>>,
    shards: ShardSet,
    config: EngineConfig,
    started_at: Instant,
}

impl StreamingEngine {
    /// Builds and starts a service around an analyzer, sharding its database
    /// across the configured number of simulated SSDs. Worker, shard, and
    /// coordinator threads are running when this returns.
    pub fn new(analyzer: MegisAnalyzer, config: EngineConfig) -> StreamingEngine {
        let shards = ShardSet::build(analyzer.database(), config.shards);
        StreamingEngine::from_parts(Arc::new(analyzer), shards, config)
    }

    pub(crate) fn from_parts(
        analyzer: Arc<MegisAnalyzer>,
        shards: ShardSet,
        config: EngineConfig,
    ) -> StreamingEngine {
        assert!(config.workers > 0, "at least one worker is required");
        assert!(config.shards > 0, "at least one shard is required");
        let shared = Arc::new(Shared {
            state: Mutex::new(ServiceState {
                queue: JobQueue::new(config.policy, config.queue_capacity),
                senders: HashMap::new(),
                next_position: 0,
                in_flight: 0,
                isp_served: 0,
                lookahead: 2 * config.workers + 2,
                poisoned: false,
                accepting: true,
                stopping: false,
                completed: 0,
                window: RollingWindow::new(config.metrics_window),
            }),
            job_ready: Condvar::new(),
            idle: Condvar::new(),
        });

        // In-SSD stage, part 1: one intersect worker per database shard.
        let shard_count = shards.shard_count();
        let (stats_tx, stats_rx) = mpsc::channel::<ShardStats>();
        let (resp_tx, resp_rx) = mpsc::channel::<(usize, Vec<Kmer>)>();
        let mut shard_txs = Vec::with_capacity(shard_count);
        let mut shard_handles = Vec::with_capacity(shard_count);
        for (index, shard) in shards.shards().iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Arc<Vec<Kmer>>>();
            shard_txs.push(tx);
            let shard = Arc::clone(shard);
            let resp_tx = resp_tx.clone();
            let stats_tx = stats_tx.clone();
            let shared = Arc::clone(&shared);
            shard_handles.push(thread::spawn(move || {
                let _guard = PanicGuard(&shared);
                let mut busy = Duration::ZERO;
                let mut served = 0u64;
                for queries in rx {
                    let t0 = Instant::now();
                    let intersection = shard.intersect_sorted(&queries);
                    busy += t0.elapsed();
                    served += 1;
                    if resp_tx.send((index, intersection)).is_err() {
                        break;
                    }
                }
                let _ = stats_tx.send(ShardStats {
                    shard: index,
                    busy,
                    jobs: served,
                });
            }));
        }
        drop(resp_tx);
        drop(stats_tx);

        // Bounded hand-off between the stages (§4.7 lookahead): together
        // with the dispatch lookahead gate in `step1_worker`, at most
        // `2 * workers + 2` prepared samples exist at once — in workers'
        // hands, in this channel, or in the coordinator's reorder buffer —
        // so peak memory stays O(workers) while the in-SSD stage stays fed.
        let (s1_tx, s1_rx) = mpsc::sync_channel::<PreparedJob>(config.workers + 1);

        // Host stage: Step 1 worker pool. Only the workers hold senders, so
        // the coordinator's receiver closes exactly when the last worker
        // exits.
        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let shared = Arc::clone(&shared);
            let analyzer = Arc::clone(&analyzer);
            let s1_tx = s1_tx.clone();
            workers.push(thread::spawn(move || {
                step1_worker(&shared, &analyzer, &s1_tx);
            }));
        }
        drop(s1_tx);

        // In-SSD stage, part 2: the coordinator serving prepared samples in
        // dispatch order.
        let isp = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                isp_coordinator(&shared, &analyzer, s1_rx, shard_txs, &resp_rx, shard_count);
            })
        };

        StreamingEngine {
            shared,
            workers,
            isp: Some(isp),
            shard_handles,
            stats_rx: Mutex::new(stats_rx),
            shards,
            config,
            started_at: Instant::now(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The sharded database layout.
    pub fn shards(&self) -> &ShardSet {
        &self.shards
    }

    /// Jobs admitted but not yet dispatched to Step 1.
    pub fn pending(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Submits one job to the running service, from any thread.
    ///
    /// Admission is bounded by the configured queue capacity and closes once
    /// a graceful shutdown begins. On success the returned [`JobHandle`]
    /// delivers the result as soon as the job completes.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, AdmissionError> {
        let (id, rx) = {
            let mut state = self.shared.lock();
            if !state.accepting {
                return Err(AdmissionError::ShuttingDown);
            }
            let id = state.queue.submit(spec)?;
            let (tx, rx) = mpsc::channel();
            state.senders.insert(id.0, tx);
            (id, rx)
        };
        self.shared.job_ready.notify_one();
        Ok(JobHandle { id, rx })
    }

    /// Hands an already-admitted job (id and submission time preserved) to
    /// the executor, bypassing the capacity check. Batch-mode entry point.
    pub(crate) fn dispatch_admitted(&self, job: QueuedJob) -> JobHandle {
        let id = job.id;
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.lock();
            state.senders.insert(id.0, tx);
            state.queue.enqueue_admitted(job);
        }
        self.shared.job_ready.notify_one();
        JobHandle { id, rx }
    }

    /// Blocks until the service is quiescent: no job queued and none in
    /// flight. Admission stays open, so jobs submitted by other threads
    /// while draining extend the wait.
    ///
    /// # Panics
    ///
    /// Panics if a pipeline thread has panicked (the service is poisoned):
    /// a dispatched job that can never complete would otherwise block the
    /// drain forever.
    pub fn drain(&self) {
        let mut state = self.shared.lock();
        loop {
            if state.poisoned {
                // Release the lock before unwinding so teardown (which must
                // re-lock) proceeds cleanly.
                drop(state);
                panic!("streaming engine poisoned: a pipeline thread panicked");
            }
            if state.queue.is_empty() && state.in_flight == 0 {
                return;
            }
            state = self
                .shared
                .idle
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A live snapshot: queue depths, lifetime completions, and the rolling
    /// latency/throughput window.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let state = self.shared.lock();
        ServiceSnapshot {
            pending: state.queue.len(),
            in_flight: state.in_flight,
            completed: state.completed,
            accepting: state.accepting,
            window: state.window.stats(),
            window_throughput: state.window.throughput(),
        }
    }

    /// Graceful shutdown: closes admission, drains every queued and
    /// in-flight job, joins all threads, and reports.
    pub fn shutdown(mut self) -> ServiceReport {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> ServiceReport {
        self.shared.lock().accepting = false;
        // When already unwinding (Drop during a panic — including the drop
        // of `self` after drain() below propagated a poisoned pipeline),
        // skip the drain: asserting again would panic-within-panic and
        // abort. Workers still exit (poison flag or stopping + empty
        // queue), so the joins below complete.
        if !thread::panicking() {
            self.drain();
        }
        self.shared.lock().stopping = true;
        self.shared.job_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(isp) = self.isp.take() {
            let _ = isp.join();
        }
        for handle in self.shard_handles.drain(..) {
            let _ = handle.join();
        }
        let mut shard_stats: Vec<ShardStats> = self.stats_rx.lock().unwrap().try_iter().collect();
        shard_stats.sort_by_key(|s| s.shard);
        let state = self.shared.lock();
        ServiceReport {
            completed: state.completed,
            uptime: self.started_at.elapsed(),
            shard_stats,
            window: state.window.stats(),
        }
    }
}

impl Drop for StreamingEngine {
    fn drop(&mut self) {
        // Dropping without an explicit shutdown still tears down gracefully
        // (drain, then join), so no thread outlives the engine.
        if !self.workers.is_empty() || self.isp.is_some() {
            let _ = self.stop_and_join();
        }
    }
}

/// Sets the shared poison flag if its thread unwinds: a dispatched position
/// that will never complete must turn `drain`/`shutdown` into a propagated
/// panic rather than a deadlock.
struct PanicGuard<'a>(&'a Shared);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            let mut state = self.0.lock();
            state.poisoned = true;
            drop(state);
            self.0.job_ready.notify_all();
            self.0.idle.notify_all();
        }
    }
}

/// One Step 1 worker: live-pops the shared queue, runs Step 1, and hands the
/// prepared sample to the in-SSD coordinator.
fn step1_worker(shared: &Shared, analyzer: &MegisAnalyzer, s1_tx: &SyncSender<PreparedJob>) {
    let _guard = PanicGuard(shared);
    loop {
        // The policy decision and the service-position assignment happen in
        // one critical section, so dispatch order is exactly policy order
        // over the jobs queued at this instant. The lookahead gate refuses
        // to dispatch more than `lookahead` positions ahead of the in-SSD
        // stage, bounding the coordinator's reorder buffer even when one
        // sample's Step 1 is far slower than the rest.
        let (job, start_position) = {
            let mut state = shared.lock();
            loop {
                if state.poisoned {
                    return;
                }
                if state.next_position < state.isp_served + state.lookahead {
                    if let Some(job) = state.queue.pop_next() {
                        let position = state.next_position;
                        state.next_position += 1;
                        state.in_flight += 1;
                        break (job, position);
                    }
                }
                if state.stopping && state.queue.is_empty() {
                    return;
                }
                // Woken by a submission, by the coordinator advancing the
                // gate, or by shutdown/poison.
                state = shared
                    .job_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let started = Instant::now();
        let step1 = analyzer.run_step1(&job.spec.sample);
        let prepared = PreparedJob {
            id: job.id,
            label: job.spec.label,
            priority: job.spec.priority,
            start_position,
            sample: job.spec.sample,
            submitted_at: job.submitted_at,
            queue_wait: started.duration_since(job.submitted_at),
            step1_time: started.elapsed(),
            step1,
        };
        if s1_tx.send(prepared).is_err() {
            return;
        }
    }
}

/// The in-SSD coordinator: reorders Step 1 completions back into dispatch
/// order, then fans each sample out to the shard workers, merges, and runs
/// taxID retrieval plus Step 3.
fn isp_coordinator(
    shared: &Shared,
    analyzer: &MegisAnalyzer,
    s1_rx: Receiver<PreparedJob>,
    shard_txs: Vec<mpsc::Sender<Arc<Vec<Kmer>>>>,
    resp_rx: &Receiver<(usize, Vec<Kmer>)>,
    shard_count: usize,
) {
    let _guard = PanicGuard(shared);
    // The reorder buffer behind the ordering guarantee: positions are dense
    // (assigned at pop time), so serving strictly ascending positions makes
    // in-SSD service order equal dispatch order — i.e. policy order — no
    // matter how Step 1 completions interleave across the worker pool.
    let mut next_to_serve = 0usize;
    let mut reorder: BTreeMap<usize, PreparedJob> = BTreeMap::new();
    // Counts actual hand-offs to the in-SSD stage, independently of the
    // positions used for reordering: the stamp recorded as `isp_position`.
    // With the reorder buffer it always equals `start_position`; without it
    // the stamp would record arrival rank, so the ordering regression tests
    // genuinely fail if the buffer is ever bypassed.
    let mut served = 0usize;
    for prepared in s1_rx {
        reorder.insert(prepared.start_position, prepared);
        while let Some(prepared) = reorder.remove(&next_to_serve) {
            next_to_serve += 1;
            serve(
                shared,
                analyzer,
                &shard_txs,
                resp_rx,
                shard_count,
                prepared,
                served,
            );
            served += 1;
        }
    }
    // On a clean shutdown every dispatched position was served and the
    // buffer is empty; if a Step 1 worker panicked, its position never
    // arrives and later arrivals stay buffered here — the poison flag, not
    // this loop, reports that failure.
    //
    // Dropping shard_txs here ends the shard workers, which then report
    // their lifetime stats.
}

/// Serves one prepared sample through the in-SSD stage and delivers the
/// result. `isp_position` is the coordinator's observed hand-off rank —
/// stamped independently of `start_position` so ordering tests compare the
/// actual service order against the dispatch order.
fn serve(
    shared: &Shared,
    analyzer: &MegisAnalyzer,
    shard_txs: &[mpsc::Sender<Arc<Vec<Kmer>>>],
    resp_rx: &Receiver<(usize, Vec<Kmer>)>,
    shard_count: usize,
    prepared: PreparedJob,
    isp_position: usize,
) {
    let isp_start = Instant::now();
    let queries = Arc::new(prepared.step1.sorted_kmers());
    for tx in shard_txs {
        tx.send(Arc::clone(&queries))
            .expect("shard worker alive while requests pend");
    }
    let mut parts: Vec<Vec<Kmer>> = vec![Vec::new(); shard_count];
    for _ in 0..shard_count {
        // A panicked shard worker can never respond (its siblings keep the
        // channel open), so poll the poison flag while waiting: the
        // coordinator then panics — poisoning teardown cleanly — instead of
        // blocking on the missing response forever.
        let (index, intersection) = loop {
            match resp_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(response) => break response,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    assert!(
                        !shared.lock().poisoned,
                        "shard worker panicked while a request was pending"
                    );
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("shard workers exited while a request was pending")
                }
            }
        };
        parts[index] = intersection;
    }
    let merged: Vec<Kmer> = parts.into_iter().flatten().collect();
    let step2 = analyzer.step2_from_intersection(merged);
    let step3 = analyzer.run_step3(&prepared.sample, &step2.presence);
    let output = MegisAnalyzer::assemble_output(&prepared.step1, &step2, step3);
    let result = JobResult {
        id: prepared.id,
        label: prepared.label,
        priority: prepared.priority,
        start_position: prepared.start_position,
        isp_position,
        output,
        queue_wait: prepared.queue_wait,
        step1_time: prepared.step1_time,
        isp_time: isp_start.elapsed(),
        latency: prepared.submitted_at.elapsed(),
    };
    // Deliver before signaling idle, all under the lock: a drain() returning
    // quiescent must imply every result has already reached its handle.
    let mut state = shared.lock();
    state.window.record(result.latency);
    state.completed += 1;
    state.in_flight -= 1;
    state.isp_served += 1;
    if let Some(tx) = state.senders.remove(&result.id.0) {
        let _ = tx.send(result);
    }
    drop(state);
    shared.idle.notify_all();
    // Advancing isp_served reopens the dispatch lookahead gate.
    shared.job_ready.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SchedPolicy;
    use megis::config::MegisConfig;
    use megis_genomics::sample::{CommunityConfig, Diversity};

    fn community() -> megis_genomics::sample::Community {
        CommunityConfig::preset(Diversity::Medium)
            .with_reads(100)
            .with_database_species(10)
            .build(23)
    }

    fn analyzer(c: &megis_genomics::sample::Community) -> MegisAnalyzer {
        MegisAnalyzer::build(c.references(), MegisConfig::small())
    }

    #[test]
    fn results_are_delivered_incrementally() {
        let c = community();
        let a = analyzer(&c);
        let expected = a.analyze(c.sample());
        let engine = StreamingEngine::new(a, EngineConfig::new().with_workers(2).with_shards(2));
        for i in 0..3 {
            let handle = engine
                .submit(JobSpec::new(format!("s{i}"), c.sample().clone()))
                .unwrap();
            // Each result arrives without any drain or batch boundary.
            let result = handle.wait().expect("job served while engine runs");
            assert_eq!(result.output, expected);
            assert_eq!(result.isp_position, result.start_position);
        }
        let snap = engine.snapshot();
        assert_eq!(snap.completed, 3);
        assert!(snap.accepting);
        assert_eq!(snap.window.count, 3);
        let report = engine.shutdown();
        assert_eq!(report.completed, 3);
        assert_eq!(report.shard_stats.len(), 2);
        for s in &report.shard_stats {
            assert_eq!(s.jobs, 3);
        }
    }

    #[test]
    fn drain_waits_for_quiescence() {
        let c = community();
        let engine = StreamingEngine::new(
            analyzer(&c),
            EngineConfig::new().with_workers(2).with_shards(2),
        );
        let handles: Vec<JobHandle> = (0..6)
            .map(|i| {
                engine
                    .submit(JobSpec::new(format!("s{i}"), c.sample().clone()))
                    .unwrap()
            })
            .collect();
        engine.drain();
        // After a drain every result must already be deliverable without
        // blocking.
        for handle in handles {
            assert!(handle.try_wait().is_some(), "drain implies delivery");
        }
        let snap = engine.snapshot();
        assert_eq!(snap.pending, 0);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.completed, 6);
    }

    #[test]
    fn admission_rejects_when_full_then_recovers() {
        let c = community();
        // One worker and a tiny queue: fill it faster than it drains.
        let engine = StreamingEngine::new(
            analyzer(&c),
            EngineConfig::new().with_workers(1).with_queue_capacity(1),
        );
        let mut rejected = false;
        let mut handles = Vec::new();
        for i in 0..64 {
            match engine.submit(JobSpec::new(format!("s{i}"), c.sample().clone())) {
                Ok(h) => handles.push(h),
                Err(AdmissionError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(rejected, "a 1-deep queue must reject a fast submitter");
        engine.drain();
        // Rejection is transient: capacity frees up as jobs dispatch.
        let handle = engine
            .submit(JobSpec::new("late", c.sample().clone()))
            .unwrap();
        assert!(handle.wait().is_some());
        for handle in handles {
            assert!(handle.wait().is_some(), "admitted jobs all complete");
        }
    }

    #[test]
    fn in_flight_never_exceeds_the_dispatch_lookahead() {
        // The lookahead gate bounds dispatched-but-unserved positions (and
        // with them the reorder buffer) at 2 * workers + 2, keeping peak
        // prepared-sample memory O(workers) instead of O(backlog).
        let c = community();
        let engine = StreamingEngine::new(
            analyzer(&c),
            EngineConfig::new().with_workers(2).with_shards(2),
        );
        let handles: Vec<JobHandle> = (0..24)
            .map(|i| {
                engine
                    .submit(JobSpec::new(format!("s{i}"), c.sample().clone()))
                    .unwrap()
            })
            .collect();
        let bound = 2 * 2 + 2;
        loop {
            let snap = engine.snapshot();
            assert!(
                snap.in_flight <= bound,
                "{} jobs in flight exceeds the lookahead bound {bound}",
                snap.in_flight
            );
            if snap.completed == 24 {
                break;
            }
            thread::sleep(Duration::from_micros(200));
        }
        for handle in handles {
            assert!(handle.wait().is_some());
        }
    }

    #[test]
    fn dropping_the_engine_serves_queued_jobs() {
        let c = community();
        let a = analyzer(&c);
        let expected = a.analyze(c.sample());
        let handles: Vec<JobHandle> = {
            let engine =
                StreamingEngine::new(a, EngineConfig::new().with_workers(2).with_shards(3));
            (0..4)
                .map(|i| {
                    engine
                        .submit(JobSpec::new(format!("s{i}"), c.sample().clone()))
                        .unwrap()
                })
                .collect()
            // Engine dropped here: drop performs a graceful drain + join.
        };
        for handle in handles {
            let result = handle.wait().expect("drop drains queued jobs");
            assert_eq!(result.output, expected);
        }
    }

    #[test]
    fn priority_submitted_mid_stream_overtakes_queued_normals() {
        let c = community();
        // One worker so the queue actually builds up behind the head job.
        let engine = StreamingEngine::new(
            analyzer(&c),
            EngineConfig::new()
                .with_workers(1)
                .with_policy(SchedPolicy::Priority),
        );
        let mut handles = Vec::new();
        for i in 0..5 {
            handles.push(
                engine
                    .submit(JobSpec::new(format!("normal-{i}"), c.sample().clone()))
                    .unwrap(),
            );
        }
        // Submitted last, while earlier normals are still queued: the live
        // pop must pick it next among whatever is waiting.
        let stat = engine
            .submit(JobSpec::new("stat", c.sample().clone()).with_priority(Priority::High))
            .unwrap();
        engine.drain();
        let stat_result = stat.try_wait().unwrap();
        let normal_positions: Vec<usize> = handles
            .into_iter()
            .map(|h| h.try_wait().unwrap().start_position)
            .collect();
        // Some head-of-line normals may already have been dispatched before
        // the high submission arrived (the lookahead gate allows up to
        // 2*1+2 = 4 positions ahead), but the live pop must schedule the
        // stat job before whatever is still queued. Requiring at least one
        // overtake keeps the assertion meaningful without racing the OS
        // scheduler: it can only fail if the submitting thread stalls for
        // several full service times mid-loop.
        let overtaken = normal_positions
            .iter()
            .filter(|p| **p > stat_result.start_position)
            .count();
        assert!(
            overtaken >= 1,
            "high priority must overtake the queued normals: stat at {}, normals {:?}",
            stat_result.start_position,
            normal_positions
        );
        assert_eq!(stat_result.isp_position, stat_result.start_position);
    }
}
