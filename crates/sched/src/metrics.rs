//! Operational metrics: latency percentiles, throughput, and per-shard
//! utilization for one batch run.

use std::time::Duration;

use crate::job::JobResult;
use crate::model::ModeledAccount;

/// Latency distribution over the completed jobs of a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples the statistics cover.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median (50th percentile, nearest-rank).
    pub p50: Duration,
    /// 99th percentile (nearest-rank).
    pub p99: Duration,
    /// Maximum observed latency.
    pub max: Duration,
}

impl LatencyStats {
    /// Computes the statistics from unordered latencies.
    pub fn from_latencies(latencies: &[Duration]) -> LatencyStats {
        if latencies.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        LatencyStats {
            count: sorted.len(),
            mean: total / sorted.len() as u32,
            p50: percentile(&sorted, 50.0),
            p99: percentile(&sorted, 99.0),
            max: *sorted.last().unwrap(),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `pct` is outside `(0, 100]`.
pub fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!(pct > 0.0 && pct <= 100.0, "percentile must be in (0, 100]");
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Busy-time accounting for one shard (simulated SSD) worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Shard index (lexicographic range order).
    pub shard: usize,
    /// Total time the shard's intersect worker spent computing.
    pub busy: Duration,
    /// Number of intersection requests served (one per job).
    pub jobs: u64,
}

/// Everything a batch run reports.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job results, sorted by [`crate::job::JobId`].
    pub results: Vec<JobResult>,
    /// Wall-clock time of the whole batch (first dispatch to last
    /// completion).
    pub wall_time: Duration,
    /// Latency distribution (submission to completion).
    pub latency: LatencyStats,
    /// Completed samples per wall-clock second.
    pub throughput: f64,
    /// Per-shard busy accounting.
    pub shard_stats: Vec<ShardStats>,
    /// Modeled-time account at paper scale for this batch shape
    /// (cross-checks `MegisTimingModel::multi_sample_breakdown`); `None`
    /// when the batch was empty and there is no shape to model.
    pub modeled: Option<ModeledAccount>,
}

impl BatchReport {
    /// Fraction of the batch wall time each shard's intersect worker was
    /// busy, in shard order.
    pub fn shard_utilization(&self) -> Vec<f64> {
        let wall = self.wall_time.as_secs_f64();
        self.shard_stats
            .iter()
            .map(|s| {
                if wall > 0.0 {
                    s.busy.as_secs_f64() / wall
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Renders a compact plain-text summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch: {} jobs in {:.3} s ({:.2} samples/s)",
            self.results.len(),
            self.wall_time.as_secs_f64(),
            self.throughput,
        );
        let _ = writeln!(
            out,
            "latency: mean {:.1} ms, p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
            self.latency.mean.as_secs_f64() * 1e3,
            self.latency.p50.as_secs_f64() * 1e3,
            self.latency.p99.as_secs_f64() * 1e3,
            self.latency.max.as_secs_f64() * 1e3,
        );
        let utils: Vec<String> = self
            .shard_utilization()
            .iter()
            .map(|u| format!("{:.0}%", u * 100.0))
            .collect();
        let _ = writeln!(out, "shard utilization: [{}]", utils.join(", "));
        match &self.modeled {
            Some(modeled) => {
                let _ = writeln!(
                    out,
                    "modeled ({} samples, {} shards): independent {:.1} s, pipelined {:.1} s \
                     ({:.2}x); per-shard db stream {:.1} s",
                    modeled.samples,
                    modeled.shards,
                    modeled.independent_total().as_secs(),
                    modeled.pipelined_total().as_secs(),
                    modeled.pipelining_speedup(),
                    modeled.shard_stream_time.as_secs(),
                );
            }
            None => {
                let _ = writeln!(out, "modeled: n/a (empty batch)");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 50.0), ms(50));
        assert_eq!(percentile(&sorted, 99.0), ms(99));
        assert_eq!(percentile(&sorted, 100.0), ms(100));
        assert_eq!(percentile(&[ms(7)], 50.0), ms(7));
    }

    #[test]
    fn latency_stats_from_unordered_input() {
        let stats = LatencyStats::from_latencies(&[ms(30), ms(10), ms(20)]);
        assert_eq!(stats.count, 3);
        assert_eq!(stats.mean, ms(20));
        assert_eq!(stats.p50, ms(20));
        assert_eq!(stats.max, ms(30));
    }

    #[test]
    fn empty_latencies_give_zeroes() {
        let stats = LatencyStats::from_latencies(&[]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.max, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }
}
