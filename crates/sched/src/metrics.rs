//! Operational metrics: latency percentiles, throughput, and per-shard
//! utilization for one batch run, plus the rolling window the streaming
//! service reports while it is live.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::job::{JobError, JobResult};
use crate::model::ModeledAccount;
use crate::trace::{StageBreakdown, StragglerReport, TraceLog};

/// Latency distribution over the completed jobs of a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples the statistics cover.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median (50th percentile, nearest-rank).
    pub p50: Duration,
    /// 90th percentile (nearest-rank).
    pub p90: Duration,
    /// 99th percentile (nearest-rank).
    pub p99: Duration,
    /// 99.9th percentile (nearest-rank) — separates a fat tail (p999 ≈ max)
    /// from a lone outlier.
    pub p999: Duration,
    /// Maximum observed latency.
    pub max: Duration,
}

impl LatencyStats {
    /// Computes the statistics from unordered latencies.
    pub fn from_latencies(latencies: &[Duration]) -> LatencyStats {
        if latencies.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort();
        // Mean via integer nanoseconds: `Duration / u32` would truncate the
        // count (and divide by zero) for batches beyond u32::MAX samples.
        let total: Duration = sorted.iter().sum();
        let mean = Duration::from_nanos((total.as_nanos() / sorted.len() as u128) as u64);
        LatencyStats {
            count: sorted.len(),
            mean,
            p50: percentile(&sorted, 50.0),
            p90: percentile(&sorted, 90.0),
            p99: percentile(&sorted, 99.0),
            p999: percentile(&sorted, 99.9),
            max: *sorted.last().unwrap(),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `pct` is outside `(0, 100]`.
pub fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!(pct > 0.0 && pct <= 100.0, "percentile must be in (0, 100]");
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Rolling window over the most recent job completions, for live metrics
/// while the streaming service runs.
///
/// The window keeps the last `capacity` completions (latency plus completion
/// instant); [`RollingWindow::stats`] and [`RollingWindow::throughput`]
/// describe only that window, so a long-running service reports its *recent*
/// behavior rather than an all-time average that a morning burst would skew
/// forever.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    capacity: usize,
    entries: VecDeque<(Instant, Duration)>,
    total: u64,
}

impl RollingWindow {
    /// Creates a window covering the last `capacity` completions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RollingWindow {
        assert!(capacity > 0, "window capacity must be positive");
        RollingWindow {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            total: 0,
        }
    }

    /// Records one completion (now) with the given end-to-end latency,
    /// evicting the oldest entry once the window is full.
    pub fn record(&mut self, latency: Duration) {
        self.record_at(Instant::now(), latency);
    }

    /// Records one completion at an explicit instant — the injectable form
    /// [`RollingWindow::record`] wraps, so [`RollingWindow::throughput`] is
    /// deterministically testable. Entries are expected in non-decreasing
    /// instant order (the engine records completions as they happen).
    pub fn record_at(&mut self, at: Instant, latency: Duration) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((at, latency));
        self.total += 1;
    }

    /// Number of completions currently inside the window.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has completed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Completions recorded over the window's whole lifetime (not just the
    /// entries still inside it).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Latency distribution of the completions inside the window.
    pub fn stats(&self) -> LatencyStats {
        let latencies: Vec<Duration> = self.entries.iter().map(|(_, l)| *l).collect();
        LatencyStats::from_latencies(&latencies)
    }

    /// Recent throughput: the unbiased inter-completion rate over the
    /// window — `len - 1` intervals divided by the span from the oldest to
    /// the newest windowed completion. (Dividing `len` events by the span
    /// would overestimate by `len / (len - 1)`.) Zero until the window
    /// holds at least two completions.
    pub fn throughput(&self) -> f64 {
        let (Some((oldest, _)), Some((newest, _))) = (self.entries.front(), self.entries.back())
        else {
            return 0.0;
        };
        if self.entries.len() < 2 {
            return 0.0;
        }
        let span = newest.duration_since(*oldest).as_secs_f64();
        (self.entries.len() - 1) as f64 / span.max(1e-9)
    }
}

/// Busy-time accounting for one shard (simulated SSD) worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Shard index (lexicographic range order).
    pub shard: usize,
    /// Total time the shard's worker spent computing (both command kinds).
    pub busy: Duration,
    /// Number of intersection commands served (one per job whose query
    /// slice was dispatched to this shard; zero for empty padding shards,
    /// which are never commanded).
    pub jobs: u64,
    /// Total query k-mers this shard scanned across all commands. With
    /// range-partitioned dispatch the per-job sum across shards equals the
    /// job's query count |Q| — not the N·|Q| a broadcast would cost.
    /// Coalescing does not change this: a shared command is charged every
    /// member's slice length, same as the commands it replaced.
    pub query_items: u64,
    /// Of [`ShardStats::jobs`], the intersect commands that carried more
    /// than one member sample — shared sweeps the cross-sample coalescing
    /// window formed. Zero with the window off (the default).
    pub coalesced_commands: u64,
    /// Total member samples across this shard's coalesced commands (each
    /// such command contributes its member count, ≥ 2). Together with
    /// [`ShardStats::coalesced_commands`] this gives the mean batch
    /// occupancy; `coalesced_members - coalesced_commands` is the number of
    /// database sweeps coalescing saved on this shard.
    pub coalesced_members: u64,
    /// Number of Step 3 commands served: one per job whose candidate
    /// partition assigned this device a non-empty range (zero when the job
    /// had fewer candidates than this device's rank, or none at all).
    pub step3_jobs: u64,
    /// Total candidate reference indexes this device merged into partial
    /// unified indexes across its Step 3 commands. With the contiguous
    /// candidate partition the per-job sum across shards equals the job's
    /// candidate count — each candidate is merged on exactly one device.
    pub step3_items: u64,
    /// Of [`ShardStats::step3_items`], the candidate items this device
    /// served from a *peer's* queue via work stealing (zero when stealing is
    /// disabled or the load was balanced). Stealing moves only the physical
    /// service: the result stays tagged with the shard-of-record, so merge
    /// accounting and reducer part positions are unchanged.
    pub stolen_items: u64,
    /// High-water mark of commands concurrently outstanding on this shard's
    /// NVMe-style queue (submitted, completion not yet reaped); bounded by
    /// [`crate::EngineConfig::queue_depth`]. A value ≥ 2 means several
    /// samples' commands were genuinely in flight on the device at once.
    pub peak_inflight: usize,
    /// Injected command faults this shard's worker reported (transient
    /// errors plus dead-shard rejections; zero without a
    /// [`crate::fault::FaultPlan`]).
    pub faults: u64,
    /// Commands re-issued after a transient failure or deadline expiry,
    /// charged to the command's shard-of-record. With a fully recoverable
    /// plan, `sum(retries) == sum(faults)` across shards.
    pub retries: u64,
    /// Re-issues routed to a *different* (surviving) shard because this
    /// shard-of-record was dead; a subset of [`ShardStats::retries`].
    pub failovers: u64,
    /// Whether the shard's worker died permanently during the run (fault
    /// plan shard death).
    pub dead: bool,
}

/// Named accessors for the counters other modules report into a
/// [`ShardStats`]. Mutating the counter fields directly outside this module
/// is a `megis-lint` diagnostic (`shardstats-accessor`): funneling every
/// write through a named method keeps the accounting invariants — which
/// counter means what, and who owns it — reviewable in one place.
impl ShardStats {
    /// Records the high-water mark of commands concurrently outstanding on
    /// this shard's queue ([`ShardStats::peak_inflight`]), taken from the
    /// dispatcher's shared gate state at teardown.
    pub fn set_peak_inflight(&mut self, peak: usize) {
        self.peak_inflight = peak;
    }

    /// Records the re-issues charged to this shard-of-record
    /// ([`ShardStats::retries`]), taken from the completer's shared ledger
    /// counters at teardown.
    pub fn set_retries(&mut self, retries: u64) {
        self.retries = retries;
    }

    /// Records the re-issues routed away from this dead shard-of-record
    /// ([`ShardStats::failovers`]), taken from the completer's shared
    /// ledger counters at teardown.
    pub fn set_failovers(&mut self, failovers: u64) {
        self.failovers = failovers;
    }
}

/// Everything a batch run reports.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job results, sorted by [`crate::job::JobId`].
    pub results: Vec<JobResult>,
    /// Jobs that failed in isolation (retry budget exhausted, worker panic,
    /// no live shard), sorted by job id; empty on a clean run. The engine
    /// kept serving the jobs in [`BatchReport::results`].
    pub failed: Vec<JobError>,
    /// Wall-clock time of the whole batch (first dispatch to last
    /// completion).
    pub wall_time: Duration,
    /// Latency distribution (submission to completion).
    pub latency: LatencyStats,
    /// Completed samples per wall-clock second.
    pub throughput: f64,
    /// Per-shard busy accounting.
    pub shard_stats: Vec<ShardStats>,
    /// Host heap bytes the engine's shard set keeps resident, counting the
    /// shared columnar storage once ([`crate::ShardSet::resident_bytes`]).
    /// With zero-copy shard views this is ≈ 1× the database regardless of
    /// the shard count — not the 2× a deep-copy partition would pin.
    pub resident_database_bytes: u64,
    /// Times a command of one in-SSD stage was submitted while a command of
    /// the *other* stage was outstanding somewhere on the device array —
    /// direct evidence that one sample's Step 3 mapping overlapped another
    /// sample's Step 2 intersection in the command queues.
    pub stage_overlap_events: u64,
    /// Modeled-time account at paper scale for this batch shape
    /// (cross-checks `MegisTimingModel::multi_sample_breakdown`); `None`
    /// when the batch was empty and there is no shape to model.
    pub modeled: Option<ModeledAccount>,
    /// Mean per-job stage breakdown over the jobs whose timelines the trace
    /// captured; `None` when tracing was disabled (the default) or no job's
    /// breakdown could be reconstructed.
    pub stage_breakdown: Option<StageBreakdown>,
    /// Per-device straggler analysis of the traced run; `None` when tracing
    /// was disabled.
    pub straggler: Option<StragglerReport>,
    /// The raw event log ([`TraceLog::to_json`] exports it); `None` when
    /// tracing was disabled.
    pub trace: Option<TraceLog>,
}

impl BatchReport {
    /// Fraction of the batch wall time each shard's intersect worker was
    /// busy, in shard order.
    pub fn shard_utilization(&self) -> Vec<f64> {
        let wall = self.wall_time.as_secs_f64();
        self.shard_stats
            .iter()
            .map(|s| {
                if wall > 0.0 {
                    s.busy.as_secs_f64() / wall
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Total reads mapped during Step 3 across the batch's results.
    pub fn mapped_reads(&self) -> u64 {
        self.results.iter().map(|r| r.output.mapped_reads).sum()
    }

    /// Renders a compact plain-text summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch: {} jobs in {:.3} s ({:.2} samples/s)",
            self.results.len(),
            self.wall_time.as_secs_f64(),
            self.throughput,
        );
        out.push_str(&latency_line(&self.latency));
        let utils: Vec<String> = self
            .shard_utilization()
            .iter()
            .map(|u| format!("{:.0}%", u * 100.0))
            .collect();
        let _ = writeln!(out, "shard utilization: [{}]", utils.join(", "));
        let peaks: Vec<String> = self
            .shard_stats
            .iter()
            .map(|s| s.peak_inflight.to_string())
            .collect();
        let _ = writeln!(
            out,
            "peak commands in flight per shard: [{}]",
            peaks.join(", ")
        );
        out.push_str(&residency_and_step3_lines(
            self.resident_database_bytes,
            &self.shard_stats,
            self.mapped_reads(),
            self.stage_overlap_events,
        ));
        if let Some(line) = coalescing_line(&self.shard_stats) {
            out.push_str(&line);
        }
        if let Some(line) = degraded_line(&self.shard_stats, self.failed.len() as u64) {
            out.push_str(&line);
        }
        out.push_str(&stage_breakdown_line(self.stage_breakdown.as_ref()));
        match &self.modeled {
            Some(modeled) => {
                let _ = writeln!(
                    out,
                    "modeled ({} samples, {} shards): independent {:.1} s, pipelined {:.1} s \
                     ({:.2}x); per-shard db stream {:.1} s, step3 index stream {:.1} s",
                    modeled.samples,
                    modeled.shards,
                    modeled.independent_total().as_secs(),
                    modeled.pipelined_total().as_secs(),
                    modeled.pipelining_speedup(),
                    modeled.shard_stream_time.as_secs(),
                    modeled.step3_stream_time.as_secs(),
                );
            }
            None => {
                let _ = writeln!(out, "modeled: n/a (empty batch)");
            }
        }
        out
    }
}

/// Renders the latency line shared verbatim by [`BatchReport::summary`] and
/// [`crate::service::ServiceReport::summary`].
pub(crate) fn latency_line(latency: &LatencyStats) -> String {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    format!(
        "latency: mean {:.1} ms, p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, \
         p999 {:.1} ms, max {:.1} ms\n",
        ms(latency.mean),
        ms(latency.p50),
        ms(latency.p90),
        ms(latency.p99),
        ms(latency.p999),
        ms(latency.max),
    )
}

/// Renders the mean stage-breakdown line shared verbatim by both report
/// summaries ("n/a" when tracing was disabled, so the line — and its golden
/// tests — exist in both modes).
pub(crate) fn stage_breakdown_line(breakdown: Option<&StageBreakdown>) -> String {
    match breakdown {
        Some(breakdown) => format!("stage breakdown (mean): {}\n", breakdown.summary_line()),
        None => "stage breakdown (mean): n/a (tracing disabled)\n".to_string(),
    }
}

/// Renders the resident-database and Step 3 summary lines shared verbatim
/// by [`BatchReport::summary`] and
/// [`crate::service::ServiceReport::summary`], so the two reports cannot
/// drift apart.
pub(crate) fn residency_and_step3_lines(
    resident_database_bytes: u64,
    shard_stats: &[ShardStats],
    mapped_reads: u64,
    stage_overlap_events: u64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "host-resident database: {:.2} MB across {} shard views (shared storage, \
         counted once)",
        resident_database_bytes as f64 / 1e6,
        shard_stats.len(),
    );
    let step3_items: Vec<String> = shard_stats
        .iter()
        .map(|s| s.step3_items.to_string())
        .collect();
    let _ = writeln!(
        out,
        "step 3: {mapped_reads} reads mapped; per-shard candidate items: [{}]; \
         stage overlap events: {stage_overlap_events}",
        step3_items.join(", "),
    );
    let stolen_items: Vec<String> = shard_stats
        .iter()
        .map(|s| s.stolen_items.to_string())
        .collect();
    let total_stolen: u64 = shard_stats.iter().map(|s| s.stolen_items).sum();
    let _ = writeln!(
        out,
        "work stealing: {total_stolen} candidate items served for peers; \
         per-device stolen items: [{}]",
        stolen_items.join(", "),
    );
    out
}

/// Renders the cross-sample coalescing summary line shared by both report
/// summaries — only when at least one shared sweep was formed, so runs with
/// the window off (the default) keep their summaries byte-identical to the
/// pre-coalescing format.
///
/// Mean batch occupancy counts every intersect command (singletons
/// included): it is the average number of samples one database sweep
/// served. Sweeps saved is the number of per-sample sweeps coalescing
/// avoided — the members that rode along on someone else's pass.
pub(crate) fn coalescing_line(shard_stats: &[ShardStats]) -> Option<String> {
    let coalesced: u64 = shard_stats.iter().map(|s| s.coalesced_commands).sum();
    if coalesced == 0 {
        return None;
    }
    let sweeps: u64 = shard_stats.iter().map(|s| s.jobs).sum();
    let coalesced_members: u64 = shard_stats.iter().map(|s| s.coalesced_members).sum();
    let member_slices = (sweeps - coalesced) + coalesced_members;
    let occupancy = member_slices as f64 / sweeps.max(1) as f64;
    let saved = member_slices - sweeps;
    Some(format!(
        "query coalescing: {coalesced} shared sweeps served {coalesced_members} member \
         slices; mean batch occupancy {occupancy:.2}, {saved} sweeps saved\n"
    ))
}

/// Renders the degraded-mode summary line shared by both report summaries —
/// only when there was fault activity (injected faults, retries, failovers,
/// dead shards, or failed jobs), so clean-run summaries are byte-identical
/// to the pre-fault-tolerance format.
pub(crate) fn degraded_line(shard_stats: &[ShardStats], failed_jobs: u64) -> Option<String> {
    let faults: u64 = shard_stats.iter().map(|s| s.faults).sum();
    let retries: u64 = shard_stats.iter().map(|s| s.retries).sum();
    let failovers: u64 = shard_stats.iter().map(|s| s.failovers).sum();
    let dead: Vec<String> = shard_stats
        .iter()
        .filter(|s| s.dead)
        .map(|s| s.shard.to_string())
        .collect();
    if faults == 0 && retries == 0 && failovers == 0 && dead.is_empty() && failed_jobs == 0 {
        return None;
    }
    let dead_text = if dead.is_empty() {
        "none".to_string()
    } else {
        format!("[{}]", dead.join(", "))
    };
    Some(format!(
        "degraded mode: {faults} command faults, {retries} retries ({failovers} failovers), \
         dead shards: {dead_text}, failed jobs: {failed_jobs}\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn degraded_line_appears_only_under_fault_activity() {
        let clean = vec![ShardStats::default(), ShardStats::default()];
        assert_eq!(degraded_line(&clean, 0), None);

        let mut stats = clean.clone();
        stats[1].shard = 1;
        stats[1].faults = 3;
        stats[1].retries = 3;
        stats[1].failovers = 1;
        stats[1].dead = true;
        let line = degraded_line(&stats, 2).expect("fault activity renders the line");
        assert!(line.contains("3 command faults"), "{line}");
        assert!(line.contains("3 retries (1 failovers)"), "{line}");
        assert!(line.contains("dead shards: [1]"), "{line}");
        assert!(line.contains("failed jobs: 2"), "{line}");

        let failed_only = degraded_line(&clean, 1).expect("failed jobs alone render the line");
        assert!(failed_only.contains("dead shards: none"), "{failed_only}");
    }

    #[test]
    fn coalescing_line_appears_only_when_sweeps_were_shared() {
        let mut stats = vec![ShardStats::default(), ShardStats::default()];
        stats[0].jobs = 4;
        stats[1].shard = 1;
        stats[1].jobs = 4;
        assert_eq!(
            coalescing_line(&stats),
            None,
            "window off: no coalesced commands, no line"
        );

        // Shard 0: 2 singleton sweeps + 2 coalesced sweeps carrying 3
        // members each; shard 1: 4 singletons. 8 sweeps served 12 member
        // slices: occupancy 12/8 = 1.50, 4 sweeps saved.
        stats[0].coalesced_commands = 2;
        stats[0].coalesced_members = 6;
        let line = coalescing_line(&stats).expect("shared sweeps render the line");
        assert!(
            line.contains("2 shared sweeps served 6 member slices"),
            "{line}"
        );
        assert!(line.contains("mean batch occupancy 1.50"), "{line}");
        assert!(line.contains("4 sweeps saved"), "{line}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 50.0), ms(50));
        assert_eq!(percentile(&sorted, 90.0), ms(90));
        assert_eq!(percentile(&sorted, 99.0), ms(99));
        assert_eq!(
            percentile(&sorted, 99.9),
            ms(100),
            "ceil(99.9) ranks last of 100"
        );
        assert_eq!(percentile(&sorted, 100.0), ms(100));
        assert_eq!(percentile(&[ms(7)], 50.0), ms(7));
    }

    #[test]
    fn tail_percentiles_populate_from_latencies() {
        let latencies: Vec<Duration> = (1..=1000).map(ms).collect();
        let stats = LatencyStats::from_latencies(&latencies);
        assert_eq!(stats.p90, ms(900));
        assert_eq!(stats.p99, ms(990));
        // 99.9/100 × 1000 lands a hair above 999.0 in f64, so the ceil rank
        // is 1000: p999 coincides with max at this sample count.
        assert_eq!(stats.p999, ms(1000));
        assert_eq!(stats.max, ms(1000));
        // At 10000 samples the p999/max distinction is real.
        let latencies: Vec<Duration> = (1..=10000).map(ms).collect();
        let stats = LatencyStats::from_latencies(&latencies);
        assert_eq!(stats.p999, ms(9991));
        assert_eq!(stats.max, ms(10000));
    }

    #[test]
    fn latency_stats_from_unordered_input() {
        let stats = LatencyStats::from_latencies(&[ms(30), ms(10), ms(20)]);
        assert_eq!(stats.count, 3);
        assert_eq!(stats.mean, ms(20));
        assert_eq!(stats.p50, ms(20));
        assert_eq!(stats.max, ms(30));
    }

    #[test]
    fn mean_is_exact_for_non_dividing_sums() {
        // 1ms + 2ms over 2 samples: the mean is 1.5ms exactly, computed in
        // integer nanoseconds rather than `Duration / u32`.
        let stats = LatencyStats::from_latencies(&[ms(1), ms(2)]);
        assert_eq!(stats.mean, Duration::from_micros(1500));
        // 7ns over 3 samples floors to 2ns — no panic, no precision loss
        // beyond the final integer nanosecond.
        let ns = |v: u64| Duration::from_nanos(v);
        let stats = LatencyStats::from_latencies(&[ns(1), ns(2), ns(4)]);
        assert_eq!(stats.mean, ns(2));
    }

    #[test]
    fn rolling_window_evicts_oldest_and_counts_lifetime() {
        let mut w = RollingWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.throughput(), 0.0);
        w.record(ms(10));
        assert_eq!(w.throughput(), 0.0, "one completion spans no interval");
        for v in [20, 30, 40] {
            w.record(ms(v));
        }
        assert_eq!(w.len(), 3, "window holds only the newest 3");
        assert_eq!(w.total_recorded(), 4);
        let stats = w.stats();
        assert_eq!(stats.count, 3);
        assert_eq!(stats.max, ms(40), "oldest entry was evicted");
        assert_eq!(stats.p50, ms(30));
        assert!(w.throughput() > 0.0);
    }

    #[test]
    fn record_at_makes_throughput_deterministic() {
        let mut w = RollingWindow::new(8);
        let epoch = Instant::now();
        // Four completions exactly 250 ms apart: 3 intervals over 750 ms is
        // exactly 4 completions/s — assertable only with injected instants.
        for i in 0..4u64 {
            w.record_at(epoch + Duration::from_millis(250 * i), ms(10));
        }
        let throughput = w.throughput();
        assert!(
            (throughput - 4.0).abs() < 1e-9,
            "expected exactly 4/s, got {throughput}"
        );
        assert_eq!(w.total_recorded(), 4);
        // Eviction keeps the unbiased estimator anchored on the oldest
        // *windowed* entry, not the all-time oldest.
        let mut w = RollingWindow::new(2);
        w.record_at(epoch, ms(1));
        w.record_at(epoch + Duration::from_secs(100), ms(1));
        w.record_at(epoch + Duration::from_secs(101), ms(1));
        assert!((w.throughput() - 1.0).abs() < 1e-9, "1 interval over 1 s");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_window_rejected() {
        RollingWindow::new(0);
    }

    #[test]
    fn empty_latencies_give_zeroes() {
        let stats = LatencyStats::from_latencies(&[]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.max, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }
}
