//! Sharded database layout: one disjoint partition of the sorted k-mer
//! database per simulated SSD, plus the range-partitioned query dispatch
//! that goes with it.
//!
//! Because the database is lexicographically sorted, splitting it into
//! contiguous ranges keeps every shard independently streamable, and the
//! shard-order concatenation of per-shard intersections equals the unsharded
//! intersection (Fig. 15 setup; also validated by the seed's partition
//! tests).
//!
//! **Zero-copy shards.** Each shard is a *view* over the database's shared
//! columnar storage ([`SortedKmerDatabase::partition`] returns range views
//! on one `Arc<DatabaseStorage>`), so building an N-shard [`ShardSet`]
//! allocates nothing beyond N view handles: the analyzer's database and all
//! of its shards together keep **one** resident copy of the k-mer/taxa
//! columns, where the old `chunk.to_vec()` partitioning kept two (the
//! analyzer's copy plus a full duplicate spread across the shards).
//! [`ShardSet::resident_bytes`] reports the deduplicated host footprint —
//! counting each distinct storage allocation once — and the `hotpath` bench
//! experiment asserts it stays ≈ 1× the database. Per-shard worker threads
//! still hold their shard behind an [`std::sync::Arc`] handle.
//!
//! The same sortedness cuts the *query* side: a shard holding keys in
//! `[lo, hi]` can only match the sub-slice of a sorted query list that
//! overlaps `[lo, hi]`, so [`ShardSet::slice_queries`] binary-searches the
//! per-shard cut points once per sample and each device sees only its slice.
//! The slices are disjoint and concatenate to the full query list, which
//! keeps total query-side work at O(|Q|) across all shards — broadcasting
//! the whole list instead would make it O(N·|Q|) and flatten the Fig. 15
//! scaling whenever queries dominate the merge.
//!
//! **Two command kinds per device.** Each simulated SSD runs a
//! `ShardWorker` consuming one tagged command queue. A worker serves both
//! pipeline stages of the in-SSD side: Step 2 `IntersectCommand`s
//! (intersect the device's database slice with the sample's overlapping
//! query sub-range) and Step 3 `Step3Command`s (merge the device's
//! contiguous range of the sample's candidate species into a partial
//! unified index and map all reads against it — §4.4's in-SSD index
//! generation plus mapping, partitioned by candidate). Because both kinds
//! flow through the same queue, one sample's Step 3 mapping overlaps the
//! next sample's Step 2 intersection on every device.
//!
//! **Step 3 commands are stealable.** An `IntersectCommand` is pinned to
//! its device — it intersects *that* shard's zero-copy database slice — but
//! a `Step3Command` resolves its candidate positions against the shared
//! analyzer's memoized per-species reference indexes, so *any* worker can
//! serve it. The engine exploits this: an idle device steals queued Step 3
//! commands from a loaded peer's queue (owner-LIFO / thief-FIFO deque
//! discipline, see `service.rs`), and the result stays tagged with the
//! shard-of-record so merge accounting is unchanged.
//!
//! **Failover serving.** Because the shards are zero-copy views over one
//! `Arc`-shared columnar storage, every worker holds the *whole*
//! [`ShardSet`] and an `IntersectCommand` names the shard range it must
//! intersect (its `shard` field). In normal operation a command
//! is only ever queued on its own shard, so the pinning discipline above is
//! unchanged — but when a device dies permanently (fault injection, see
//! `fault.rs`), a surviving worker can re-serve the dead shard's pinned
//! intersections against the still-resident range. Commands also carry an
//! `attempt` counter so retried completions are distinguishable from stale
//! ones, and a served command can fail with a `CommandFailure` instead of
//! an output when a fault plan is active.
//!
//! **Cross-sample query coalescing.** An `IntersectCommand` carries a
//! *member list*: one `(seq, query sub-range)` entry per co-resident sample
//! sharing the sweep. When the dispatcher's batching window is open (see
//! `service.rs`), several in-flight samples' slices for the same shard are
//! merged into one command served by a single galloping pass over that
//! shard's CSR range (`intersect_sorted_multi`), and the output carries one
//! hit list per member for the completer to demultiplex back to each
//! sample's merge state. A single-member command is byte-identical to the
//! uncoalesced path — same kernel, same output shape — so the window-off
//! default changes nothing, and the fault path's retry/failover machinery
//! treats a coalesced command as one unit keyed by its lead member's
//! sequence number.

use std::ops::Range;
use std::sync::Arc;

use megis::step3::{self, Step3Partial};
use megis::MegisAnalyzer;
use megis_genomics::database::ReferenceIndex;
use megis_genomics::database::SortedKmerDatabase;
use megis_genomics::kmer::Kmer;
use megis_genomics::sample::Sample;

use crate::trace::TraceStage;

/// One co-resident sample's share of a (possibly coalesced) Step 2 command:
/// the sample's dispatch sequence number plus its query sub-range for the
/// command's shard.
#[derive(Debug, Clone)]
pub(crate) struct IntersectMember {
    /// Dense in-SSD dispatch sequence number of the owning sample.
    pub seq: usize,
    /// The sample's full sorted query list (shared, not copied, across
    /// shards).
    pub queries: Arc<Vec<Kmer>>,
    /// The sub-range of `queries` overlapping this shard's key range.
    pub range: Range<usize>,
}

/// A Step 2 command: intersect one or more samples' query sub-ranges
/// against the device's database slice in a single sweep.
#[derive(Debug, Clone)]
pub(crate) struct IntersectCommand {
    /// The shard-of-record whose database range this command intersects.
    /// Failover never changes it: a survivor serving the command still
    /// intersects the dead shard's (still-resident) range.
    pub shard: usize,
    /// 0-based service attempt; bumped on every retry/failover re-issue so
    /// stale completions of superseded attempts are recognizable.
    pub attempt: u32,
    /// The samples sharing this sweep, in dispatch-sequence order. Always
    /// non-empty; a single entry is the uncoalesced (window-off) shape. The
    /// first entry is the *lead* member whose sequence number keys the
    /// command in the completer's ledger and the fault plan.
    pub members: Vec<IntersectMember>,
}

impl IntersectCommand {
    /// The dispatch sequence numbers of every member sample, in member
    /// order.
    pub(crate) fn member_seqs(&self) -> Vec<usize> {
        self.members.iter().map(|m| m.seq).collect()
    }

    /// Total query items dispatched with this command (sum of the member
    /// sub-range lengths) — the `ShardStats::query_items` contribution,
    /// unchanged by coalescing.
    pub(crate) fn query_items(&self) -> usize {
        self.members.iter().map(|m| m.range.len()).sum()
    }
}

/// A Step 3 command: merge this device's contiguous candidate range into a
/// partial unified index and map the sample's reads against it.
#[derive(Debug, Clone)]
pub(crate) struct Step3Command {
    /// Dense in-SSD dispatch sequence number the command belongs to.
    pub seq: usize,
    /// The shard-of-record the partial is merged under (partition/merge
    /// accounting slot; unchanged by stealing or failover).
    pub record_shard: usize,
    /// 0-based service attempt; bumped on every retry re-issue.
    pub attempt: u32,
    /// The sample whose reads are mapped (shared across the job's commands).
    pub sample: Arc<Sample>,
    /// Positions of *all* the job's candidate species within the analyzer's
    /// per-species reference indexes, in merge (ascending-taxid) order;
    /// shared across the job's per-device commands.
    pub candidates: Arc<Vec<usize>>,
    /// This device's sub-range of `candidates`.
    pub range: Range<usize>,
    /// Concatenated-reference-space offset where the range begins.
    pub base_offset: u64,
    /// Simulated device stream time for the range, in *normalized candidate
    /// units*: the part's modeled cost share of the job, rescaled so the
    /// job's units sum to its candidate count. Uniform candidate costs make
    /// this exactly `range.len()`, so the engine's per-candidate Step 3
    /// latency keeps its historical meaning; skewed costs stretch or shrink
    /// the simulated stream in proportion to the bytes the device actually
    /// streams.
    pub stream_units: f64,
}

/// One NVMe-style command on a device's tagged queue.
#[derive(Debug, Clone)]
pub(crate) enum ShardCommand {
    /// Step 2 intersection finding.
    Intersect(IntersectCommand),
    /// Step 3 partial unified-index generation plus read mapping.
    Step3(Step3Command),
}

impl ShardCommand {
    /// The dispatch sequence number the command is tagged with: the lead
    /// (first) member's for a coalesced intersection.
    pub(crate) fn seq(&self) -> usize {
        match self {
            ShardCommand::Intersect(c) => c.members[0].seq,
            ShardCommand::Step3(c) => c.seq,
        }
    }

    /// Every sample sequence number the command serves: all members of a
    /// (possibly coalesced) intersection, the single owner of a Step 3
    /// command.
    pub(crate) fn member_seqs(&self) -> Vec<usize> {
        match self {
            ShardCommand::Intersect(c) => c.member_seqs(),
            ShardCommand::Step3(c) => vec![c.seq],
        }
    }

    /// The shard-of-record: the merge/accounting slot the completion fills,
    /// regardless of which physical device serves the command.
    pub(crate) fn record_shard(&self) -> usize {
        match self {
            ShardCommand::Intersect(c) => c.shard,
            ShardCommand::Step3(c) => c.record_shard,
        }
    }

    /// The 0-based service attempt of this issue.
    pub(crate) fn attempt(&self) -> u32 {
        match self {
            ShardCommand::Intersect(c) => c.attempt,
            ShardCommand::Step3(c) => c.attempt,
        }
    }

    /// Increments the attempt counter for a retry/failover re-issue.
    pub(crate) fn bump_attempt(&mut self) {
        match self {
            ShardCommand::Intersect(c) => c.attempt += 1,
            ShardCommand::Step3(c) => c.attempt += 1,
        }
    }

    /// The pipeline stage the command belongs to (trace/fault keying).
    pub(crate) fn stage(&self) -> TraceStage {
        match self {
            ShardCommand::Intersect(_) => TraceStage::Intersect,
            ShardCommand::Step3(_) => TraceStage::Step3,
        }
    }
}

/// Result payload of one served command.
#[derive(Debug)]
pub(crate) enum CommandOutput {
    /// The intersecting k-mers of an [`IntersectCommand`]: one hit list per
    /// member, in member order, for the completer to demultiplex. A
    /// single-member (uncoalesced) command carries exactly one list.
    Intersection(Vec<Vec<Kmer>>),
    /// The partial index plus per-read hits of a [`Step3Command`].
    Step3(Step3Partial),
}

/// Why a command's service failed (fault injection, see `fault.rs`): the
/// `Err` side of a completion. The completer decides retry vs failover vs
/// per-job failure from the kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CommandFailure {
    /// A transient device error: retry against the budget.
    Transient,
    /// The worker panicked serving the command (caught at the seam): fails
    /// the owning job, never retried.
    Panicked,
    /// The serving shard died permanently: fail over to a survivor.
    ShardDead,
}

/// One simulated device: the full shard set's zero-copy database views
/// (Step 2 intersects the command's shard-of-record range — its own in
/// normal operation, a dead peer's range under failover) plus a handle on
/// the analyzer whose memoized per-species reference indexes back Step 3
/// partials. Consumes commands of either kind from its queue.
#[derive(Debug)]
pub(crate) struct ShardWorker {
    shards: ShardSet,
    analyzer: Arc<MegisAnalyzer>,
}

impl ShardWorker {
    pub(crate) fn new(shards: ShardSet, analyzer: Arc<MegisAnalyzer>) -> ShardWorker {
        ShardWorker { shards, analyzer }
    }

    /// Serves one command functionally (device timing is simulated by the
    /// caller).
    pub(crate) fn serve(&self, command: &ShardCommand) -> CommandOutput {
        match command {
            ShardCommand::Intersect(c) => {
                let shard = &self.shards.shards()[c.shard];
                // Device-side bound check, per member: the dispatcher's
                // partition charges gap queries (values between shard key
                // ranges) to the preceding shard, but nothing below this
                // shard's first key or above its last can match, so the
                // merge runs only over each overlapping sub-range.
                let overlaps: Vec<&[Kmer]> = c
                    .members
                    .iter()
                    .map(|m| {
                        let slice = &m.queries[m.range.clone()];
                        &slice[shard.overlapping_query_range(slice)]
                    })
                    .collect();
                // One member takes the plain galloping merge; several share
                // a single coalesced sweep over the same database range.
                let hits = match overlaps.as_slice() {
                    [only] => vec![shard.intersect_sorted(only)],
                    many => shard.intersect_sorted_multi(many),
                };
                CommandOutput::Intersection(hits)
            }
            ShardCommand::Step3(c) => {
                let indexes = self.analyzer.reference_indexes();
                let candidates: Vec<&ReferenceIndex> = c.candidates[c.range.clone()]
                    .iter()
                    .map(|&position| &indexes[position])
                    .collect();
                CommandOutput::Step3(step3::run_partial(
                    c.sample.reads(),
                    &candidates,
                    c.base_offset,
                    self.analyzer.config().mapping_k,
                ))
            }
        }
    }
}

/// The database partitioned across `N` simulated SSDs.
#[derive(Debug, Clone)]
pub struct ShardSet {
    shards: Vec<Arc<SortedKmerDatabase>>,
}

impl ShardSet {
    /// Partitions `database` into `shards` contiguous ranges of near-equal
    /// entry counts.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn build(database: &SortedKmerDatabase, shards: usize) -> ShardSet {
        assert!(shards > 0, "at least one shard is required");
        ShardSet {
            shards: database
                .partition(shards)
                .into_iter()
                .map(Arc::new)
                .collect(),
        }
    }

    /// Number of shards (simulated SSDs).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in lexicographic range order.
    pub fn shards(&self) -> &[Arc<SortedKmerDatabase>] {
        &self.shards
    }

    /// Total number of database entries across shards.
    pub fn total_entries(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Database bytes resident on each shard (the quantity each simulated
    /// SSD streams during Step 2).
    pub fn shard_bytes(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.encoded_bytes()).collect()
    }

    /// Host-resident heap bytes held by this shard set, counting each
    /// distinct columnar storage allocation **once**: the shards are
    /// zero-copy views, so for a set built from one database this equals
    /// that database's [`heap bytes`](megis_genomics::database::DatabaseStorage::heap_bytes)
    /// — ≈ 1× the database, not the 2× a deep-copy partition would hold
    /// alongside the analyzer's copy.
    pub fn resident_bytes(&self) -> u64 {
        let mut seen: Vec<*const megis_genomics::database::DatabaseStorage> = Vec::new();
        let mut total = 0u64;
        for shard in &self.shards {
            let id = Arc::as_ptr(shard.storage());
            if !seen.contains(&id) {
                seen.push(id);
                total += shard.storage().heap_bytes();
            }
        }
        total
    }

    /// Per-shard key-range bounds `(first, last)` in shard order; `None` for
    /// empty shards (the trailing padding [`SortedKmerDatabase::partition`]
    /// emits when there are more shards than entries).
    pub fn bounds(&self) -> Vec<Option<(Kmer, Kmer)>> {
        self.shards
            .iter()
            .map(|s| Some((s.first_kmer()?, s.last_kmer()?)))
            .collect()
    }

    /// Splits a sorted query list into one sub-range per shard: the slice a
    /// device actually needs to see, found by binary search on the shard key
    /// bounds.
    ///
    /// The returned ranges are disjoint, ascending, and concatenate to
    /// `0..sorted_queries.len()` — every query belongs to exactly one shard,
    /// so total query-side work across shards is O(|Q|), not O(N·|Q|). The
    /// cut between shard `i` and shard `i + 1` sits at the first query `>=`
    /// shard `i + 1`'s smallest key; queries falling in the gap between two
    /// shard ranges (or below the first shard's range) match nothing and are
    /// charged to the earlier shard. Empty trailing shards get empty ranges.
    ///
    /// `shard.intersect_sorted(&queries[range])`, concatenated in shard
    /// order, is byte-identical to intersecting the unsharded database with
    /// the full query list (asserted by the seeded property tests below).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `sorted_queries` is not sorted.
    pub fn slice_queries(&self, sorted_queries: &[Kmer]) -> Vec<Range<usize>> {
        debug_assert!(sorted_queries.windows(2).all(|w| w[0] <= w[1]));
        let bounds = self.bounds();
        let n = bounds.len();
        // cuts[i] = first query index belonging to shard i. Walk backward so
        // empty shards inherit the next shard's cut (an empty range).
        let mut cuts = vec![0usize; n + 1];
        cuts[n] = sorted_queries.len();
        for i in (1..n).rev() {
            cuts[i] = match bounds[i] {
                Some((lo, _)) => sorted_queries.partition_point(|q| *q < lo).min(cuts[i + 1]),
                None => cuts[i + 1],
            };
        }
        (0..n).map(|i| cuts[i]..cuts[i + 1]).collect()
    }

    /// Serial reference intersection: every shard against its own query
    /// sub-slice (the same range-partitioned dispatch the engine performs),
    /// merged in shard order. Identical to intersecting the unsharded
    /// database with the full query list.
    pub fn intersect(&self, sorted_queries: &[Kmer]) -> Vec<Kmer> {
        let mut merged = Vec::new();
        for (shard, range) in self.shards.iter().zip(self.slice_queries(sorted_queries)) {
            merged.extend(shard.intersect_sorted(&sorted_queries[range]));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::reference::ReferenceCollection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn db() -> SortedKmerDatabase {
        let refs = ReferenceCollection::synthetic(6, 500, 17);
        SortedKmerDatabase::build(&refs, 21)
    }

    #[test]
    fn sharded_intersection_matches_unsharded() {
        let database = db();
        let queries: Vec<Kmer> = database.kmers().step_by(3).collect();
        let whole = database.intersect_sorted(&queries);
        for shards in [1usize, 2, 4, 8] {
            let set = ShardSet::build(&database, shards);
            assert_eq!(set.shard_count(), shards);
            assert_eq!(set.intersect(&queries), whole, "{shards} shards");
        }
    }

    #[test]
    fn query_slices_partition_the_list_and_preserve_the_intersection() {
        // Property-style seeded sweep (the offline stand-in for a proptest
        // suite): for random query mixtures — database hits, foreign misses,
        // neither, both — and shard counts {1, 2, 4, 8}, the per-shard query
        // slices are disjoint, concatenate to the full sorted list, scan
        // each query exactly once in total (O(|Q|), not O(N·|Q|)), and the
        // sliced sharded intersection is byte-identical to the unsharded
        // merge.
        let database = db();
        let db_kmers: Vec<Kmer> = database.kmers().collect();
        let foreign = ReferenceCollection::synthetic(3, 500, 4040);
        let foreign_db = SortedKmerDatabase::build(&foreign, 21);
        let foreign_kmers: Vec<Kmer> = foreign_db.kmers().collect();

        let mut rng = StdRng::seed_from_u64(2718);
        for case in 0..24 {
            let mut queries: Vec<Kmer> = Vec::new();
            let hits = rng.gen_range(0..db_kmers.len());
            let misses = rng.gen_range(0..foreign_kmers.len());
            for _ in 0..hits {
                queries.push(db_kmers[rng.gen_range(0..db_kmers.len())]);
            }
            for _ in 0..misses {
                queries.push(foreign_kmers[rng.gen_range(0..foreign_kmers.len())]);
            }
            queries.sort();
            queries.dedup();
            let whole = database.intersect_sorted(&queries);

            for shards in [1usize, 2, 4, 8] {
                let set = ShardSet::build(&database, shards);
                let slices = set.slice_queries(&queries);
                assert_eq!(slices.len(), shards);
                // Disjoint, ascending, and covering: consecutive ranges abut.
                assert_eq!(slices[0].start, 0, "case {case}, {shards} shards");
                assert_eq!(slices[shards - 1].end, queries.len());
                for w in slices.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "case {case}, {shards} shards");
                }
                // Work accounting: every query is scanned exactly once.
                let scanned: usize = slices.iter().map(|r| r.len()).sum();
                assert_eq!(scanned, queries.len(), "case {case}, {shards} shards");
                // Byte-identical sliced intersection.
                let mut merged = Vec::new();
                for (shard, range) in set.shards().iter().zip(&slices) {
                    merged.extend(shard.intersect_sorted(&queries[range.clone()]));
                }
                assert_eq!(merged, whole, "case {case}, {shards} shards");
            }
        }
    }

    #[test]
    fn slices_assign_every_query_even_outside_all_bounds() {
        // Queries entirely below the first shard's range and above the last
        // shard's range still land in a slice (and match nothing).
        let database = db();
        let set = ShardSet::build(&database, 4);
        let queries: Vec<Kmer> = database.kmers().collect();
        let slices = set.slice_queries(&queries);
        let scanned: usize = slices.iter().map(|r| r.len()).sum();
        assert_eq!(scanned, queries.len());
        // An empty query list yields empty slices for every shard.
        for range in set.slice_queries(&[]) {
            assert!(range.is_empty());
        }
    }

    #[test]
    fn empty_trailing_shards_get_empty_slices() {
        let database = db();
        // Far more shards than entries would be slow to build here; instead
        // partition a tiny sub-database so trailing shards are empty.
        let tiny = database.view(0..3);
        let set = ShardSet::build(&tiny, 8);
        assert_eq!(set.shard_count(), 8);
        let bounds = set.bounds();
        assert!(bounds[..3].iter().all(Option::is_some));
        assert!(bounds[3..].iter().all(Option::is_none));
        let queries: Vec<Kmer> = database.kmers().collect();
        let slices = set.slice_queries(&queries);
        for (i, range) in slices.iter().enumerate().skip(3) {
            assert!(range.is_empty(), "empty shard {i} must see no queries");
        }
        let scanned: usize = slices.iter().map(|r| r.len()).sum();
        assert_eq!(scanned, queries.len());
        assert_eq!(set.intersect(&queries), tiny.intersect_sorted(&queries));
    }

    #[test]
    fn bounds_are_disjoint_and_ascending() {
        let set = ShardSet::build(&db(), 5);
        let bounds: Vec<(Kmer, Kmer)> = set.bounds().into_iter().flatten().collect();
        for (lo, hi) in &bounds {
            assert!(lo <= hi);
        }
        for w in bounds.windows(2) {
            assert!(w[0].1 < w[1].0, "shard ranges must be disjoint and sorted");
        }
    }

    #[test]
    fn shards_cover_all_entries() {
        let database = db();
        let set = ShardSet::build(&database, 5);
        assert_eq!(set.total_entries(), database.len());
        let bytes: u64 = set.shard_bytes().iter().sum();
        assert_eq!(bytes, database.encoded_bytes());
    }

    #[test]
    fn shard_sizes_are_balanced() {
        let database = db();
        let set = ShardSet::build(&database, 4);
        let sizes: Vec<usize> = set.shards().iter().map(|s| s.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        // Ceiling-sized contiguous chunks: only the last shard may run
        // short, by at most parts - 1 entries.
        assert!(max - min < 4, "unbalanced shards: {sizes:?}");
    }

    #[test]
    fn shards_are_zero_copy_views_of_one_storage() {
        let database = db();
        let single_copy = database.storage().heap_bytes();
        assert!(single_copy > 0);
        for shards in [1usize, 2, 4, 8, 32] {
            let set = ShardSet::build(&database, shards);
            for shard in set.shards() {
                assert!(
                    shard.shares_storage_with(&database),
                    "shard must view the database's storage, not copy it"
                );
            }
            // Deduplicated host footprint: one copy of the columns no
            // matter how many shards view them.
            assert_eq!(set.resident_bytes(), single_copy, "{shards} shards");
        }
    }

    #[test]
    fn resident_bytes_counts_distinct_storages_once_each() {
        // A set whose shards come from two different databases must charge
        // both storages (each once) — the dedup is by allocation, not by
        // shard count.
        let a = db();
        let b = SortedKmerDatabase::build(&ReferenceCollection::synthetic(4, 400, 99), 21);
        let mixed = ShardSet {
            shards: a
                .partition(3)
                .into_iter()
                .chain(b.partition(2))
                .map(Arc::new)
                .collect(),
        };
        assert_eq!(
            mixed.resident_bytes(),
            a.storage().heap_bytes() + b.storage().heap_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardSet::build(&db(), 0);
    }
}
