//! Sharded database layout: one disjoint partition of the sorted k-mer
//! database per simulated SSD.
//!
//! Because the database is lexicographically sorted, splitting it into
//! contiguous ranges keeps every shard independently streamable, and the
//! shard-order concatenation of per-shard intersections equals the unsharded
//! intersection (Fig. 15 setup; also validated by the seed's partition
//! tests). Each shard is wrapped in an [`std::sync::Arc`] so per-shard worker
//! threads can hold the data without copying it.

use std::sync::Arc;

use megis_genomics::database::SortedKmerDatabase;
use megis_genomics::kmer::Kmer;

/// The database partitioned across `N` simulated SSDs.
#[derive(Debug, Clone)]
pub struct ShardSet {
    shards: Vec<Arc<SortedKmerDatabase>>,
}

impl ShardSet {
    /// Partitions `database` into `shards` contiguous ranges of near-equal
    /// entry counts.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn build(database: &SortedKmerDatabase, shards: usize) -> ShardSet {
        assert!(shards > 0, "at least one shard is required");
        ShardSet {
            shards: database
                .partition(shards)
                .into_iter()
                .map(Arc::new)
                .collect(),
        }
    }

    /// Number of shards (simulated SSDs).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in lexicographic range order.
    pub fn shards(&self) -> &[Arc<SortedKmerDatabase>] {
        &self.shards
    }

    /// Total number of database entries across shards.
    pub fn total_entries(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Database bytes resident on each shard (the quantity each simulated
    /// SSD streams during Step 2).
    pub fn shard_bytes(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.encoded_bytes()).collect()
    }

    /// Serial reference intersection: every shard against the same sorted
    /// query list, merged in shard order. Identical to intersecting the
    /// unsharded database; the engine runs the same computation with one
    /// worker thread per shard.
    pub fn intersect(&self, sorted_queries: &[Kmer]) -> Vec<Kmer> {
        let mut merged = Vec::new();
        for shard in &self.shards {
            merged.extend(shard.intersect_sorted(sorted_queries));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megis_genomics::reference::ReferenceCollection;

    fn db() -> SortedKmerDatabase {
        let refs = ReferenceCollection::synthetic(6, 500, 17);
        SortedKmerDatabase::build(&refs, 21)
    }

    #[test]
    fn sharded_intersection_matches_unsharded() {
        let database = db();
        let queries: Vec<Kmer> = database.kmers().step_by(3).collect();
        let whole = database.intersect_sorted(&queries);
        for shards in [1usize, 2, 4, 8] {
            let set = ShardSet::build(&database, shards);
            assert_eq!(set.shard_count(), shards);
            assert_eq!(set.intersect(&queries), whole, "{shards} shards");
        }
    }

    #[test]
    fn shards_cover_all_entries() {
        let database = db();
        let set = ShardSet::build(&database, 5);
        assert_eq!(set.total_entries(), database.len());
        let bytes: u64 = set.shard_bytes().iter().sum();
        assert_eq!(bytes, database.encoded_bytes());
    }

    #[test]
    fn shard_sizes_are_balanced() {
        let database = db();
        let set = ShardSet::build(&database, 4);
        let sizes: Vec<usize> = set.shards().iter().map(|s| s.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        // Ceiling-sized contiguous chunks: only the last shard may run
        // short, by at most parts - 1 entries.
        assert!(max - min < 4, "unbalanced shards: {sizes:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardSet::build(&db(), 0);
    }
}
