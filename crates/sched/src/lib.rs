//! `megis-sched`: a multi-sample scheduler with sharded multi-SSD execution
//! for the MegIS reproduction — closed batches or a continuously scheduled
//! streaming service.
//!
//! The MegIS paper gets its largest end-to-end wins from two scheduling
//! ideas: overlapping host-side Step 1 of sample *i + 1* with the in-SSD
//! Steps 2–3 of sample *i* (§4.7, Fig. 21), and partitioning the sorted
//! k-mer database disjointly across several SSDs (Fig. 15). This crate turns
//! both from analytic models into a running analysis engine:
//!
//! * [`job`] — what clients submit ([`JobSpec`] with a [`Priority`]) and get
//!   back ([`JobResult`]: the analysis output plus per-job wait/latency
//!   accounting),
//! * [`queue`] — bounded admission and deterministic service order
//!   ([`SchedPolicy::Fifo`] or [`SchedPolicy::Priority`]),
//! * [`shard`] — the database partitioned into contiguous sorted ranges,
//!   one per simulated SSD ([`ShardSet`]), the range-partitioned query
//!   dispatch ([`ShardSet::slice_queries`]): each device only ever sees the
//!   sub-slice of a sample's sorted query list overlapping its key range —
//!   plus the per-device workers, which serve both command kinds: Step 2
//!   intersections and Step 3 partial unified-index generation + read
//!   mapping over a contiguous range of the sample's candidate species,
//! * [`service`] — the streaming executor ([`StreamingEngine`]): a pool of
//!   host Step 1 worker threads live-popping a shared queue and feeding an
//!   in-SSD stage of NVMe-style bounded per-shard command queues (tagged
//!   commands, configurable [`EngineConfig::queue_depth`], out-of-order
//!   completion with in-dispatch-order delivery), built on std threads and
//!   channels. Steps 2 *and* 3 both flow through the queues: the completer
//!   partitions each sample's candidates across the device array and
//!   reduces the per-device partials, so one sample's read mapping
//!   overlaps the next sample's intersection
//!   ([`ServiceReport::stage_overlap_events`] counts the observations),
//! * [`engine`] — the closed-batch front end ([`BatchEngine`]), a thin
//!   wrapper that hands each batch to the same executor,
//! * [`fault`] — deterministic seeded fault injection ([`FaultPlan`]):
//!   transient command failures, latency spikes, permanent shard death, and
//!   targeted worker panics, decided purely from `(seed, command identity)`
//!   so chaos runs replay exactly. The executor's recovery machinery —
//!   per-command retry with capped backoff, command deadlines, shard
//!   failover, per-job failure isolation ([`JobError`]) — lives in
//!   [`service`] and is exercised by the seeded chaos suite
//!   (`tests/fault_tolerance.rs`),
//! * [`metrics`] — operational metrics ([`BatchReport`]: latency p50/p99,
//!   throughput in samples/sec, per-shard utilization; [`RollingWindow`]
//!   for live service-mode metrics),
//! * [`model`] — the paper-scale modeled-time account ([`ModeledAccount`]),
//!   cross-checking the executed batch shape against
//!   `MegisTimingModel::multi_sample_breakdown` and the Fig. 15 shard
//!   scaling series, plus the command-queue model ([`QueueModel`]): how much
//!   of the host submission/completion round trip a given queue depth hides,
//! * [`trace`] — the pipeline tracing subsystem ([`TraceSink`],
//!   [`StageBreakdown`], [`StragglerReport`]): per-command lifecycle events
//!   and the analyses built on them (see *Observability* below).
//!
//! # Batch mode vs. service mode
//!
//! [`BatchEngine`] is the drain-once front end: submit a closed set of
//! jobs, call [`BatchEngine::run`], get a [`BatchReport`]. Use it for
//! cohort studies and experiments where the workload is known up front.
//!
//! [`StreamingEngine`] is the long-running service: `submit` from any
//! thread **while it runs** (it takes `&self`; share it behind an `Arc`),
//! get a [`JobHandle`] that delivers the result the moment the job
//! completes, watch live behavior through [`ServiceSnapshot`]'s rolling
//! window, and stop with a graceful [`StreamingEngine::drain`] /
//! [`StreamingEngine::shutdown`]. Scheduling decisions happen at dispatch
//! time with a live `pop_next` on the shared queue, so a high-priority job
//! submitted mid-stream overtakes everything still queued. Both modes run
//! the exact same executor: `BatchEngine::run` is submit-all + drain over a
//! fresh [`StreamingEngine`].
//!
//! **Ordering guarantee:** the in-SSD stage serves samples in dispatch
//! order — which is policy order over the queue at each dispatch instant —
//! regardless of the Step 1 worker count. Step 1 completions are reordered
//! through a buffer keyed on service position before the in-SSD hand-off,
//! so a low-priority sample can never have its Steps 2–3 served ahead of a
//! high-priority sample that entered service first ([`JobResult`] records
//! both positions; `isp_position == start_position` always).
//!
//! **Determinism contract:** scheduling decides only *when* work happens,
//! never *what* is computed. Every job's output is byte-identical to
//! `MegisAnalyzer::analyze` on the same sample, for any worker count, shard
//! count, admission policy, or submission concurrency (enforced by the
//! workspace integration tests).
//!
//! # Observability
//!
//! Enable pipeline tracing with [`EngineConfig::with_tracing`]. Every
//! pipeline thread then records timestamped lifecycle events into one
//! bounded, multi-producer [`TraceSink`]: job admission, Step 1 start/end,
//! per-`(seq, shard)` command issued/started/completed for both in-SSD
//! command kinds, reduce start/end, delivery. Two analyses are built on the
//! event log and surfaced on [`JobResult`], [`BatchReport`], and
//! [`ServiceReport`]:
//!
//! * [`StageBreakdown`] — each job's submission→delivery wall clock,
//!   partitioned into telescoping stage segments (queue wait, Step 1,
//!   per-stage queue wait vs. device service, reduce barrier, reduce), so
//!   the segments sum to the job's end-to-end latency;
//! * [`StragglerReport`] — per-device busy/stall/idle fractions, per-device
//!   Step 3 busy time with the max/min skew, and the device whose last
//!   Step 3 completion gated each job's reduce — the measurement the
//!   cost-aware-partitioning roadmap item consumes.
//!
//! **Overhead contract:** tracing is disabled by default;
//! [`trace::TraceSink::disabled`] records through a single inlined branch
//! (no lock, no clock read, no allocation), so instrumented hot paths cost
//! nothing when tracing is off. The `trace_overhead` bench experiment
//! measures and CI gates this (< 2% engine overhead vs. a no-trace
//! baseline).
//!
//! # Machine-checked invariants
//!
//! The concurrency rules this crate lives by are enforced by the in-tree
//! `megis-lint` pass (`crates/lint`), which CI runs over every workspace
//! source file. Each rule encodes an incident class from this crate's own
//! history:
//!
//! * **poison-safety** — never `.lock().unwrap()` / `.lock().expect(..)` on
//!   a pipeline mutex. A worker panic poisons the mutexes it held; the
//!   engine reports that through its own poison flag and keeps shutting
//!   down. An `unwrap` on a poisoned lock reached *during that unwind*
//!   (e.g. `Drop` → `stop_and_join`) panics-within-panic and aborts the
//!   process instead of delivering the failure report. Locks here recover
//!   with `.lock().unwrap_or_else(PoisonError::into_inner)` or go through
//!   the named accessors (`Shared::lock`, `CommandQueues::lock`). The
//!   incident: the shutdown path's stats reap did exactly this on
//!   `stats_rx` — see `shutdown_reaps_stats_through_a_poisoned_stats_mutex`
//!   in `service.rs` for the regression test.
//!
//! * **guard-across-blocking** — never hold a `MutexGuard` across
//!   `send`/`recv`/`recv_timeout`/`join`/`thread::sleep`. Blocking while
//!   holding a pipeline lock is the completer-deadlock class from the PR 5
//!   sharding work (completer parked on a bounded channel while holding
//!   the state every worker needs to make progress). `Condvar::wait`
//!   releases the lock while parked and is the sanctioned way to block
//!   with a guard. One deliberate exception lives in `finalize`: result
//!   delivery sends under the state lock, annotated in-source with why an
//!   unbounded-channel send cannot block.
//!
//! * **clock-injection** — `trace.rs` reads the clock only in its
//!   designated seams, and no `record_at(..)` call site passes an inline
//!   `Instant::now()`/`.elapsed()`; stamps flow through the injectable
//!   seam so disabled tracing never pays a clock read (the overhead
//!   contract above).
//!
//! * **panic-hygiene** — any panic site inside a `thread::spawn` body
//!   (`unwrap`, `expect`, panicking macros, indexing channel results) must
//!   carry an inline `lint:allow(panic-hygiene, reason)` annotation: a
//!   pipeline-thread panic starts poison propagation, so it has to be
//!   visibly deliberate.
//!
//! * **bounded-send** — a plain `.send(..)` on a *bounded* channel sender
//!   (`mpsc::sync_channel` / `SyncSender`) must either use the
//!   non-blocking/timeout variants or carry a reasoned
//!   `lint:allow(bounded-send, ..)`: a bounded send that blocks forever is
//!   the stuck-pipeline class the command-deadline machinery exists for,
//!   and every such block must argue its drain story in-source (see the
//!   Step 1 hand-off in `service.rs` for the canonical annotation).
//!
//! Suppressions are never silent: each needs a
//! `// lint:allow(rule, reason)` with a mandatory reason, and the lint
//! report lists every one in effect.
//!
//! # Example
//!
//! ```
//! use megis::config::MegisConfig;
//! use megis::MegisAnalyzer;
//! use megis_genomics::sample::{CommunityConfig, Diversity};
//! use megis_sched::{BatchEngine, EngineConfig, JobSpec};
//!
//! let community = CommunityConfig::preset(Diversity::Low)
//!     .with_reads(80)
//!     .with_database_species(8)
//!     .build(7);
//! let analyzer = MegisAnalyzer::build(community.references(), MegisConfig::small());
//! let expected = analyzer.analyze(community.sample());
//!
//! let mut engine = BatchEngine::new(
//!     analyzer,
//!     EngineConfig::new().with_workers(2).with_shards(2),
//! );
//! for i in 0..4 {
//!     engine
//!         .submit(JobSpec::new(format!("sample-{i}"), community.sample().clone()))
//!         .unwrap();
//! }
//! let report = engine.run();
//! assert_eq!(report.results.len(), 4);
//! assert!(report.results.iter().all(|r| r.output == expected));
//! assert!(report.modeled.unwrap().pipelining_speedup() > 1.0);
//! ```

// The whole workspace is safe Rust ([workspace.lints] forbids it too);
// this attribute keeps the guarantee visible at the crate root.
#![forbid(unsafe_code)]
pub mod engine;
pub mod fault;
pub mod job;
pub mod metrics;
pub mod model;
pub mod queue;
pub mod service;
pub mod shard;
pub mod trace;

pub use engine::{BatchEngine, EngineConfig, PartialAdmission};
pub use fault::{FaultDecision, FaultPlan};
pub use job::{JobError, JobId, JobResult, JobSpec, Priority};
pub use metrics::{BatchReport, LatencyStats, RollingWindow, ShardStats};
pub use model::{ModeledAccount, QueueModel};
pub use queue::{AdmissionError, JobQueue, SchedPolicy};
pub use service::{JobHandle, ServiceReport, ServiceSnapshot, StreamingEngine};
pub use shard::ShardSet;
pub use trace::{
    DeviceUsage, StageBreakdown, StragglerReport, TraceEvent, TraceEventKind, TraceLog, TraceSink,
    TraceStage,
};
