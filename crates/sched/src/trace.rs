//! Pipeline tracing: per-command lifecycle events, per-job stage-latency
//! breakdowns, and the straggler analyzer for the device array.
//!
//! The engine's aggregate metrics ([`crate::metrics::ShardStats`],
//! end-to-end latency) say *that* the 8-device Step 3 sweep regresses, not
//! *why*: they cannot distinguish a command waiting in a queue from a device
//! streaming its candidate range from a reduce barriering on one slow
//! partial. This module records what GenStore-style in-storage accounting
//! records inside the device — the lifecycle of every command — and turns it
//! back into answers:
//!
//! * [`TraceSink`] — a cheap, bounded, multi-producer ring buffer of
//!   timestamped [`TraceEvent`]s. Every pipeline thread (submitters, Step 1
//!   workers, the dispatcher, the shard workers, the completer) holds a
//!   clone and records the events it owns: admission, Step 1 start/end, per
//!   `(seq, shard)` command issued/started/completed for both command
//!   kinds, reduce start/end, delivery. The sink is **zero-cost when
//!   disabled**: [`TraceSink::disabled`] carries no buffer at all, and
//!   [`TraceSink::record`] is an inlined `None` check — the `trace_overhead`
//!   bench measures the disabled path per call and the whole-engine overhead
//!   and CI gates both.
//! * [`StageBreakdown`] — the analysis layer's per-job answer: the job's
//!   submission→delivery wall clock partitioned into consecutive stage
//!   segments (queue wait, Step 1, per-stage queue wait vs. device service,
//!   reduce barrier, reduce). The segments are differences of consecutive
//!   timeline points reconstructed from the job's events, so they
//!   **telescope**: their sum is exactly the traced admission→delivery span,
//!   which matches the independently measured [`crate::JobResult::latency`]
//!   to well under 1% whenever admission was traced (streaming submissions).
//! * [`StragglerReport`] — the analysis layer's per-device answer: busy /
//!   stall / idle fractions per device over the run, per-device Step 3 busy
//!   time with the max/min skew, and, per job, the device whose last Step 3
//!   completion gated the reduce — the direct input to the cost-aware
//!   partitioning item on the roadmap.
//!
//! Events are stamped as [`Duration`]s since the sink's epoch (the engine's
//! start), so a whole trace serializes losslessly with
//! [`TraceLog::to_json`].

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Sequence key used for events recorded before the job has an in-SSD
/// dispatch position (admission happens before the scheduler assigns one).
pub const NO_SEQ: usize = usize::MAX;

/// Default ring-buffer capacity of an enabled sink (events, not bytes; a
/// `TraceEvent` is a few machine words).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Which in-SSD command kind a device-side event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceStage {
    /// Step 2 intersection finding.
    Intersect,
    /// Step 3 partial unified-index generation plus read mapping.
    Step3,
}

impl TraceStage {
    /// Short label for reports and the JSON export.
    pub fn label(self) -> &'static str {
        match self {
            TraceStage::Intersect => "intersect",
            TraceStage::Step3 => "step3",
        }
    }
}

/// What happened. Each producer records only the variants it owns; the
/// payloads carry exactly what that producer knows at that instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A job was admitted ([`crate::StreamingEngine::submit`] or the batch
    /// hand-off). Keyed by job id: no dispatch position exists yet.
    Admitted {
        /// The admitted job's id ([`crate::JobId`] payload).
        job: u64,
    },
    /// A Step 1 worker popped the job and started host-side Step 1; binds
    /// the job id to its dispatch sequence for the analysis join.
    Step1Started {
        /// The job's id.
        job: u64,
    },
    /// Host-side Step 1 finished; the prepared sample heads to the in-SSD
    /// dispatcher.
    Step1Finished,
    /// A command was issued onto a shard's NVMe-style queue (dispatcher for
    /// intersections, completer backlog for Step 3).
    CommandIssued {
        /// Command kind.
        stage: TraceStage,
        /// Target device.
        shard: usize,
    },
    /// The device began serving the command (simulated stream + functional
    /// work). `started - issued` is the command's in-queue wait.
    CommandStarted {
        /// Command kind.
        stage: TraceStage,
        /// Serving device.
        shard: usize,
    },
    /// The device finished the command and reported its completion.
    CommandCompleted {
        /// Command kind.
        stage: TraceStage,
        /// Serving device.
        shard: usize,
    },
    /// The completer began reducing the job's Step 3 partials (all partials
    /// reaped *and* every earlier sequence delivered — the in-order
    /// barrier).
    ReduceStarted,
    /// The reduce finished and the output was assembled.
    ReduceFinished,
    /// The result left on the job's handle.
    Delivered {
        /// The job's id.
        job: u64,
    },
    /// A device failed the command (injected transient error, dead shard,
    /// or caught worker panic) instead of completing it.
    Fault {
        /// Command kind.
        stage: TraceStage,
        /// Shard-of-record of the failed command.
        shard: usize,
    },
    /// The completer re-issued a failed command against its retry budget.
    Retry {
        /// Command kind.
        stage: TraceStage,
        /// Shard-of-record of the retried command.
        shard: usize,
        /// The re-issue's attempt number (1 for the first retry).
        attempt: u32,
    },
    /// A retry was routed to a different device because the shard-of-record
    /// is dead (zero-copy failover: every worker holds the shared storage).
    Failover {
        /// Command kind.
        stage: TraceStage,
        /// The dead shard-of-record.
        from: usize,
        /// The surviving device the command was re-issued to.
        to: usize,
    },
    /// A device served one *coalesced* intersect command: a single galloping
    /// sweep over its database range shared by several co-resident samples'
    /// query slices ([`crate::EngineConfig::with_coalescing_window`]). Keyed
    /// by the lead member's sequence; singleton commands record nothing, so
    /// runs with the window off carry no such events.
    CoalescedSweep {
        /// Serving device.
        shard: usize,
        /// Member samples the one sweep served (always ≥ 2).
        members: usize,
    },
}

/// One timestamped lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Time since the sink's epoch.
    pub at: Duration,
    /// In-SSD dispatch sequence (= `start_position`) the event belongs to;
    /// [`NO_SEQ`] for admission events, which precede dispatch.
    pub seq: usize,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Bounded ring of recorded events plus the count evicted once full.
#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug)]
struct SinkInner {
    epoch: Instant,
    ring: Mutex<Ring>,
}

/// A cheap, bounded, multi-producer trace sink.
///
/// Clone it into every producer thread; clones share one ring buffer. The
/// disabled sink ([`TraceSink::disabled`]) holds nothing and records
/// nothing: [`TraceSink::record`] is then a single inlined branch, so the
/// engine pays ~zero for the instrumentation points it never uses (the
/// `trace_overhead` experiment measures exactly this path).
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl TraceSink {
    /// The no-op sink: records nothing, allocates nothing.
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// An enabled sink whose ring keeps the most recent `capacity` events
    /// (oldest evicted first; [`TraceSink::dropped`] counts evictions).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> TraceSink {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                epoch: Instant::now(),
                ring: Mutex::new(Ring {
                    events: VecDeque::with_capacity(capacity.min(4096)),
                    capacity,
                    dropped: 0,
                }),
            })),
        }
    }

    /// Whether events are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Time since the sink's epoch (zero for a disabled sink).
    pub fn now(&self) -> Duration {
        self.inner
            .as_ref()
            .map(|inner| inner.epoch.elapsed())
            .unwrap_or(Duration::ZERO)
    }

    /// Records one event stamped now. On a disabled sink this is a single
    /// branch — no lock, no clock read, no allocation.
    #[inline]
    pub fn record(&self, seq: usize, kind: TraceEventKind) {
        if let Some(inner) = &self.inner {
            let at = inner.epoch.elapsed();
            Self::push(inner, TraceEvent { at, seq, kind });
        }
    }

    /// Records one event with an explicit timestamp (a [`TraceSink::now`]
    /// the caller already took, so a derived computation and its event agree
    /// on the instant).
    #[inline]
    pub fn record_at(&self, at: Duration, seq: usize, kind: TraceEventKind) {
        if let Some(inner) = &self.inner {
            Self::push(inner, TraceEvent { at, seq, kind });
        }
    }

    fn push(inner: &SinkInner, event: TraceEvent) {
        let mut ring = inner.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| {
                inner
                    .ring
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .dropped
            })
            .unwrap_or(0)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map(|inner| {
                inner
                    .ring
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .events
                    .len()
            })
            .unwrap_or(0)
    }

    /// Returns `true` if no events are held (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every held event, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map(|inner| {
                inner
                    .ring
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .events
                    .iter()
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Snapshot of one job's events: everything keyed on `seq`, plus the
    /// admission event keyed on `job` (admission precedes the sequence
    /// assignment). Record order is preserved.
    pub fn events_for(&self, seq: usize, job: u64) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .events
            .iter()
            .filter(|e| {
                e.seq == seq || matches!(e.kind, TraceEventKind::Admitted { job: j } if j == job)
            })
            .copied()
            .collect()
    }
}

/// The full trace of one engine run: the surviving events plus the count the
/// bounded ring evicted (a nonzero `dropped` means early events are missing
/// and whole-run analyses under-count).
#[derive(Debug, Clone)]
pub struct TraceLog {
    /// Recorded events in record order.
    pub events: Vec<TraceEvent>,
    /// Events the ring evicted before this snapshot.
    pub dropped: u64,
}

impl TraceLog {
    /// Serializes the trace as a JSON document (one object per event;
    /// timestamps in microseconds since the engine's epoch).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\n  \"trace\": \"megis-sched\",\n  \"events\": {},\n  \"dropped\": {},",
            self.events.len(),
            self.dropped,
        );
        out.push_str("  \"records\": [\n");
        for (i, event) in self.events.iter().enumerate() {
            let at_us = event.at.as_secs_f64() * 1e6;
            let seq = if event.seq == NO_SEQ {
                "null".to_string()
            } else {
                event.seq.to_string()
            };
            let body = match event.kind {
                TraceEventKind::Admitted { job } => {
                    format!("\"kind\": \"admitted\", \"job\": {job}")
                }
                TraceEventKind::Step1Started { job } => {
                    format!("\"kind\": \"step1_started\", \"job\": {job}")
                }
                TraceEventKind::Step1Finished => "\"kind\": \"step1_finished\"".to_string(),
                TraceEventKind::CommandIssued { stage, shard } => format!(
                    "\"kind\": \"command_issued\", \"stage\": \"{}\", \"shard\": {shard}",
                    stage.label()
                ),
                TraceEventKind::CommandStarted { stage, shard } => format!(
                    "\"kind\": \"command_started\", \"stage\": \"{}\", \"shard\": {shard}",
                    stage.label()
                ),
                TraceEventKind::CommandCompleted { stage, shard } => format!(
                    "\"kind\": \"command_completed\", \"stage\": \"{}\", \"shard\": {shard}",
                    stage.label()
                ),
                TraceEventKind::ReduceStarted => "\"kind\": \"reduce_started\"".to_string(),
                TraceEventKind::ReduceFinished => "\"kind\": \"reduce_finished\"".to_string(),
                TraceEventKind::Delivered { job } => {
                    format!("\"kind\": \"delivered\", \"job\": {job}")
                }
                TraceEventKind::Fault { stage, shard } => format!(
                    "\"kind\": \"fault\", \"stage\": \"{}\", \"shard\": {shard}",
                    stage.label()
                ),
                TraceEventKind::Retry {
                    stage,
                    shard,
                    attempt,
                } => format!(
                    "\"kind\": \"retry\", \"stage\": \"{}\", \"shard\": {shard}, \"attempt\": {attempt}",
                    stage.label()
                ),
                TraceEventKind::Failover { stage, from, to } => format!(
                    "\"kind\": \"failover\", \"stage\": \"{}\", \"from\": {from}, \"to\": {to}",
                    stage.label()
                ),
                TraceEventKind::CoalescedSweep { shard, members } => format!(
                    "\"kind\": \"coalesced_sweep\", \"shard\": {shard}, \"members\": {members}"
                ),
            };
            let _ = write!(
                out,
                "    {{ \"at_us\": {at_us:.3}, \"seq\": {seq}, {body} }}"
            );
            out.push_str(if i + 1 == self.events.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One job's submission→delivery wall clock, partitioned into consecutive
/// stage segments reconstructed from its trace events.
///
/// The segments are differences of consecutive timeline points, so they
/// telescope: [`StageBreakdown::total`] equals the traced
/// admission→delivery span exactly, and matches the independently measured
/// [`crate::JobResult::latency`] to well under 1% for streaming submissions
/// (batch mode preserves submission times from *before* the engine — and
/// its trace epoch — existed, so there the traced span starts at the batch
/// hand-off instead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Admission → Step 1 start: time queued under the admission policy.
    pub queue_wait: Duration,
    /// Step 1 start → end: host-side k-mer extraction, sorting, exclusion.
    pub step1: Duration,
    /// Step 1 end → first intersect command *started*: the dispatch reorder
    /// wait plus time queued behind other commands on the devices.
    pub step2_wait: Duration,
    /// First intersect started → last intersect completed: the window the
    /// device array spent serving this job's Step 2 commands.
    pub step2_service: Duration,
    /// Last intersect completed → first Step 3 command started: host-side
    /// taxID retrieval plus backlog and queue wait for the Step 3 commands.
    pub step3_wait: Duration,
    /// First Step 3 started → last Step 3 completed: the window the device
    /// array spent generating partial unified indexes and mapping reads.
    pub step3_service: Duration,
    /// Last Step 3 completed → reduce start: the in-order delivery barrier
    /// (waiting on earlier sequences still in flight).
    pub reduce_barrier: Duration,
    /// Reduce start → delivery: partial recombination, best-hit resolution,
    /// output assembly, handle send.
    pub reduce: Duration,
    /// The device whose Step 3 completion arrived last — the straggler that
    /// gated this job's reduce (`None` when the job had no Step 3 commands).
    pub gating_device: Option<usize>,
}

impl StageBreakdown {
    /// Reconstructs the breakdown from one job's events ([`TraceSink::events_for`])
    /// plus the delivery timestamp. Returns `None` when the events are too
    /// sparse to anchor a timeline (no admission or Step 1 events — e.g. a
    /// disabled sink, or a ring that evicted the job's early events).
    pub fn from_events(events: &[TraceEvent], delivered_at: Duration) -> Option<StageBreakdown> {
        let mut admitted = None;
        let mut step1_start = None;
        let mut step1_end = None;
        let mut first_intersect_start = None;
        let mut last_intersect_done = None;
        let mut first_step3_start = None;
        let mut last_step3_done: Option<(Duration, usize)> = None;
        let mut reduce_start = None;
        for event in events {
            match event.kind {
                TraceEventKind::Admitted { .. } => admitted = Some(event.at),
                TraceEventKind::Step1Started { .. } => step1_start = Some(event.at),
                TraceEventKind::Step1Finished => step1_end = Some(event.at),
                TraceEventKind::CommandStarted { stage, .. } => match stage {
                    TraceStage::Intersect => {
                        if first_intersect_start.is_none() {
                            first_intersect_start = Some(event.at);
                        }
                    }
                    TraceStage::Step3 => {
                        if first_step3_start.is_none() {
                            first_step3_start = Some(event.at);
                        }
                    }
                },
                TraceEventKind::CommandCompleted { stage, shard } => match stage {
                    TraceStage::Intersect => last_intersect_done = Some(event.at),
                    TraceStage::Step3 => {
                        if last_step3_done
                            .map(|(at, _)| event.at >= at)
                            .unwrap_or(true)
                        {
                            last_step3_done = Some((event.at, shard));
                        }
                    }
                },
                TraceEventKind::ReduceStarted => reduce_start = Some(event.at),
                TraceEventKind::CommandIssued { .. }
                | TraceEventKind::ReduceFinished
                | TraceEventKind::Delivered { .. }
                | TraceEventKind::Fault { .. }
                | TraceEventKind::Retry { .. }
                | TraceEventKind::Failover { .. }
                | TraceEventKind::CoalescedSweep { .. } => {}
            }
        }
        // Batch-mode hand-offs may never trace an admission (submitted
        // before the engine existed); anchor on Step 1 with a zero queue
        // wait in that case.
        let start = admitted.or(step1_start)?;
        let step1_start = step1_start?;
        // Walk a monotone cursor through the timeline; stages the job never
        // entered (no candidates, empty query list) collapse to zero-width
        // segments instead of breaking the telescoping sum.
        let mut cursor = start;
        let mut advance = |to: Option<Duration>| -> Duration {
            let Some(to) = to else {
                return Duration::ZERO;
            };
            let to = to.max(cursor);
            let width = to - cursor;
            cursor = to;
            width
        };
        let queue_wait = advance(Some(step1_start));
        let step1 = advance(step1_end);
        let step2_wait = advance(first_intersect_start);
        let step2_service = advance(last_intersect_done);
        let step3_wait = advance(first_step3_start);
        let step3_service = advance(last_step3_done.map(|(at, _)| at));
        let reduce_barrier = advance(reduce_start);
        let reduce = advance(Some(delivered_at));
        Some(StageBreakdown {
            queue_wait,
            step1,
            step2_wait,
            step2_service,
            step3_wait,
            step3_service,
            reduce_barrier,
            reduce,
            gating_device: last_step3_done.map(|(_, shard)| shard),
        })
    }

    /// Sum of every segment — the traced admission→delivery span.
    pub fn total(&self) -> Duration {
        self.queue_wait
            + self.step1
            + self.step2_wait
            + self.step2_service
            + self.step3_wait
            + self.step3_service
            + self.reduce_barrier
            + self.reduce
    }

    /// Adds another breakdown segment-wise (for aggregation); the gating
    /// device, a per-job notion, is cleared.
    pub fn accumulate(&mut self, other: &StageBreakdown) {
        self.queue_wait += other.queue_wait;
        self.step1 += other.step1;
        self.step2_wait += other.step2_wait;
        self.step2_service += other.step2_service;
        self.step3_wait += other.step3_wait;
        self.step3_service += other.step3_service;
        self.reduce_barrier += other.reduce_barrier;
        self.reduce += other.reduce;
        self.gating_device = None;
    }

    /// Divides every segment by `count`: the mean of `count` accumulated
    /// breakdowns. Returns the zero breakdown for `count == 0`.
    pub fn mean_of(mut self, count: usize) -> StageBreakdown {
        if count == 0 {
            return StageBreakdown::default();
        }
        let n = count as u32;
        self.queue_wait /= n;
        self.step1 /= n;
        self.step2_wait /= n;
        self.step2_service /= n;
        self.step3_wait /= n;
        self.step3_service /= n;
        self.reduce_barrier /= n;
        self.reduce /= n;
        self
    }

    /// One-line rendering used by both report summaries.
    pub fn summary_line(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            "queue {:.1} ms | step1 {:.1} ms | step2 wait {:.1} + svc {:.1} ms | \
             step3 wait {:.1} + svc {:.1} ms | reduce barrier {:.1} + reduce {:.1} ms",
            ms(self.queue_wait),
            ms(self.step1),
            ms(self.step2_wait),
            ms(self.step2_service),
            ms(self.step3_wait),
            ms(self.step3_service),
            ms(self.reduce_barrier),
            ms(self.reduce),
        )
    }
}

/// Busy / stall / idle accounting for one device over a traced run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceUsage {
    /// Device (shard) index.
    pub device: usize,
    /// Commands the device served (both kinds).
    pub commands: u64,
    /// Time the device spent serving commands (simulated stream plus
    /// functional work), both kinds together.
    pub busy: Duration,
    /// Busy time attributable to Step 3 commands alone — the quantity whose
    /// per-device skew gates the reduce.
    pub step3_busy: Duration,
    /// Busy time attributable to intersect commands alone.
    pub intersect_busy: Duration,
    /// Time at least one command was issued-but-unserved on the device's
    /// queue while the device was *not* serving anything: head-of-line wait
    /// the device could not hide.
    pub stall: Duration,
    /// Run span minus (busy-or-pending) time: the device had nothing to do.
    pub idle: Duration,
}

/// Per-device and per-job straggler analysis of one traced run.
///
/// Built by [`StragglerReport::from_events`] from a whole-run event
/// snapshot. Identifies, for every job that ran Step 3 on the array, the
/// device whose last Step 3 completion gated the job's reduce, and accounts
/// each device's busy/stall/idle split over the run — the observability the
/// roadmap's cost-aware-partitioning item needs as its input.
#[derive(Debug, Clone)]
pub struct StragglerReport {
    /// Wall-clock span the events cover (first to last event).
    pub span: Duration,
    /// Per-device accounting, in device order.
    pub devices: Vec<DeviceUsage>,
    /// `(seq, gating device)` per job that ran Step 3, in sequence order.
    pub gating: Vec<(usize, usize)>,
    /// Jobs gated per device (`histogram[d]` = jobs whose reduce waited on
    /// device `d` last), in device order.
    pub histogram: Vec<u64>,
    /// Injected or real command faults per device (shard-of-record), in
    /// device order. All zero on a clean run.
    pub faults: Vec<u64>,
    /// Commands re-issued per device (shard-of-record), in device order.
    pub retries: Vec<u64>,
    /// Retries routed away from a dead shard-of-record, per (dead) device,
    /// in device order.
    pub failovers: Vec<u64>,
    /// Coalesced intersect sweeps served per device — physical commands
    /// whose single database pass was shared by ≥ 2 samples — in device
    /// order. All zero with the coalescing window off.
    pub coalesced_sweeps: Vec<u64>,
    /// Total member samples across each device's coalesced sweeps, in
    /// device order; `coalesced_members[d] / coalesced_sweeps[d]` is device
    /// `d`'s mean batch occupancy over its shared sweeps.
    pub coalesced_members: Vec<u64>,
}

impl StragglerReport {
    /// Reconstructs the analysis from a whole-run event snapshot.
    pub fn from_events(events: &[TraceEvent], devices: usize) -> StragglerReport {
        let span = match (events.first(), events.last()) {
            (Some(first), Some(last)) => last.at.saturating_sub(first.at),
            _ => Duration::ZERO,
        };
        // Per-device interval sets. The devices serve serially, so service
        // intervals never overlap and sum directly; pending intervals
        // (issued→completed) do overlap and need a union. Commands are
        // matched FIFO per `(seq, stage)` rather than per device: with work
        // stealing a Step 3 command can complete on a different device than
        // it was issued to, so a per-device pairing would orphan the
        // issue timestamp. A job's same-stage commands are issued together,
        // so the within-key FIFO mismatch is negligible, and the
        // `.min(started)` clamp keeps every pending interval covering its
        // service interval (busy + stall + idle always closes to the span).
        let mut usage: Vec<DeviceUsage> = (0..devices)
            .map(|device| DeviceUsage {
                device,
                ..DeviceUsage::default()
            })
            .collect();
        let mut service: Vec<Vec<(Duration, Duration)>> = vec![Vec::new(); devices];
        let mut pending: Vec<Vec<(Duration, Duration)>> = vec![Vec::new(); devices];
        let mut issued_fifo: HashMap<(usize, TraceStage), VecDeque<Duration>> = HashMap::new();
        let mut started_at: Vec<Option<Duration>> = vec![None; devices];
        let mut last_step3: Vec<Option<(Duration, usize)>> = Vec::new();
        let mut step3_seqs: Vec<usize> = Vec::new();
        let mut faults = vec![0u64; devices];
        let mut retries = vec![0u64; devices];
        let mut failovers = vec![0u64; devices];
        let mut coalesced_sweeps = vec![0u64; devices];
        let mut coalesced_members = vec![0u64; devices];
        for event in events {
            match event.kind {
                TraceEventKind::Fault { shard, .. } if shard < devices => {
                    faults[shard] += 1;
                }
                TraceEventKind::Retry { shard, .. } if shard < devices => {
                    retries[shard] += 1;
                }
                TraceEventKind::Failover { from, .. } if from < devices => {
                    failovers[from] += 1;
                }
                TraceEventKind::CoalescedSweep { shard, members } if shard < devices => {
                    coalesced_sweeps[shard] += 1;
                    coalesced_members[shard] += members as u64;
                }
                TraceEventKind::CommandIssued { stage, shard } if shard < devices => {
                    issued_fifo
                        .entry((event.seq, stage))
                        .or_default()
                        .push_back(event.at);
                }
                TraceEventKind::CommandStarted { shard, .. } if shard < devices => {
                    started_at[shard] = Some(event.at);
                }
                TraceEventKind::CommandCompleted { stage, shard } if shard < devices => {
                    let started = started_at[shard].take().unwrap_or(event.at);
                    service[shard].push((started, event.at));
                    let issued = issued_fifo
                        .get_mut(&(event.seq, stage))
                        .and_then(|q| q.pop_front())
                        .unwrap_or(started)
                        .min(started);
                    pending[shard].push((issued, event.at));
                    usage[shard].commands += 1;
                    let width = event.at.saturating_sub(started);
                    usage[shard].busy += width;
                    match stage {
                        TraceStage::Intersect => usage[shard].intersect_busy += width,
                        TraceStage::Step3 => {
                            usage[shard].step3_busy += width;
                            let slot = match step3_seqs.iter().position(|&s| s == event.seq) {
                                Some(slot) => slot,
                                None => {
                                    step3_seqs.push(event.seq);
                                    last_step3.push(None);
                                    step3_seqs.len() - 1
                                }
                            };
                            if last_step3[slot]
                                .map(|(at, _)| event.at >= at)
                                .unwrap_or(true)
                            {
                                last_step3[slot] = Some((event.at, shard));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        let mut histogram = vec![0u64; devices];
        let mut gating: Vec<(usize, usize)> = step3_seqs
            .iter()
            .zip(&last_step3)
            .filter_map(|(&seq, last)| last.map(|(_, device)| (seq, device)))
            .collect();
        gating.sort_unstable();
        for &(_, device) in &gating {
            histogram[device] += 1;
        }
        for device in 0..devices {
            let occupied = union_len(&mut pending[device]);
            let busy = union_len(&mut service[device]);
            usage[device].stall = occupied.saturating_sub(busy);
            usage[device].idle = span.saturating_sub(occupied);
        }
        StragglerReport {
            span,
            devices: usage,
            gating,
            histogram,
            faults,
            retries,
            failovers,
            coalesced_sweeps,
            coalesced_members,
        }
    }

    /// Mean member samples per coalesced sweep across the array (`None`
    /// when no sweep was shared — the coalescing window was off or no
    /// samples were co-resident).
    pub fn mean_batch_occupancy(&self) -> Option<f64> {
        let sweeps: u64 = self.coalesced_sweeps.iter().sum();
        if sweeps == 0 {
            return None;
        }
        let members: u64 = self.coalesced_members.iter().sum();
        Some(members as f64 / sweeps as f64)
    }

    /// Max over min per-device Step 3 busy time, across devices that served
    /// any Step 3 work — the skew that gates the reduce under equal-count
    /// partitioning. `1.0` when at most one device served Step 3.
    pub fn step3_busy_skew(&self) -> f64 {
        let busy: Vec<f64> = self
            .devices
            .iter()
            .filter(|d| !d.step3_busy.is_zero())
            .map(|d| d.step3_busy.as_secs_f64())
            .collect();
        if busy.len() < 2 {
            return 1.0;
        }
        let max = busy.iter().cloned().fold(f64::MIN, f64::max);
        let min = busy.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }

    /// Flatness of the gating-device histogram: max over mean of
    /// `histogram`, across all devices. `1.0` is perfectly flat (every
    /// device gates its fair share of reduces — the cost-aware-partition
    /// goal); the worst case is the device count (one device gates every
    /// job — the equal-count cliff). Returns `1.0` when no job ran Step 3
    /// or there are no devices, so "no evidence of skew" reads as flat.
    pub fn gating_histogram_flatness(&self) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 || self.histogram.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.histogram.len() as f64;
        let max = *self.histogram.iter().max().unwrap() as f64;
        max / mean
    }

    /// The device gating the most jobs, with its count (`None` when no job
    /// ran Step 3).
    pub fn dominant_gater(&self) -> Option<(usize, u64)> {
        self.histogram
            .iter()
            .enumerate()
            .max_by_key(|(_, count)| **count)
            .filter(|(_, count)| **count > 0)
            .map(|(device, count)| (device, *count))
    }

    /// Renders the analysis. The first line is the stable, greppable
    /// header CI keys on.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "straggler report: per-device busy/stall/idle and per-job step-3 gating"
        );
        let span = self.span.as_secs_f64().max(1e-9);
        for d in &self.devices {
            let _ = writeln!(
                out,
                "  device {}: {} cmds; busy {:5.1}% ({:8.1} ms: step3 {:8.1} ms, \
                 intersect {:8.1} ms), stall {:5.1}%, idle {:5.1}%",
                d.device,
                d.commands,
                d.busy.as_secs_f64() / span * 100.0,
                d.busy.as_secs_f64() * 1e3,
                d.step3_busy.as_secs_f64() * 1e3,
                d.intersect_busy.as_secs_f64() * 1e3,
                d.stall.as_secs_f64() / span * 100.0,
                d.idle.as_secs_f64() / span * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "  step 3 busy skew across devices (max/min): {:.2}x",
            self.step3_busy_skew()
        );
        let gating: Vec<String> = self
            .gating
            .iter()
            .map(|(seq, device)| format!("job seq {seq} -> device {device}"))
            .collect();
        let _ = writeln!(out, "  reduce gated by: [{}]", gating.join(", "));
        let _ = writeln!(
            out,
            "  gating-device histogram: [{}]{}",
            self.histogram
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            match self.dominant_gater() {
                Some((device, count)) => format!(" — device {device} gated {count} job(s)"),
                None => " — no job ran step 3".to_string(),
            },
        );
        // Fault lines appear only when the run actually degraded, so clean
        // reports stay byte-identical to the pre-fault-injection renderer.
        if self.faults.iter().any(|&n| n > 0) || self.retries.iter().any(|&n| n > 0) {
            let _ = writeln!(
                out,
                "  command faults per device: [{}]; retries per device: [{}]",
                self.faults
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
                self.retries
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        if self.failovers.iter().any(|&n| n > 0) {
            let _ = writeln!(
                out,
                "  failovers away from dead shards: [{}]",
                self.failovers
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        // The coalescing line appears only when a sweep was actually
        // shared, keeping window-off reports byte-identical.
        if let Some(occupancy) = self.mean_batch_occupancy() {
            let _ = writeln!(
                out,
                "  coalesced sweeps per device: [{}]; mean members per shared sweep: \
                 {occupancy:.2}",
                self.coalesced_sweeps
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        out
    }
}

/// Total length of a union of (possibly overlapping) intervals; sorts in
/// place.
fn union_len(intervals: &mut [(Duration, Duration)]) -> Duration {
    intervals.sort_unstable();
    let mut total = Duration::ZERO;
    let mut current: Option<(Duration, Duration)> = None;
    for &(start, end) in intervals.iter() {
        match current {
            Some((_, cur_end)) if start <= cur_end => {
                let (cur_start, cur_end) = current.take().unwrap();
                current = Some((cur_start, cur_end.max(end)));
            }
            Some((cur_start, cur_end)) => {
                total += cur_end - cur_start;
                current = Some((start, end));
            }
            None => current = Some((start, end)),
        }
    }
    if let Some((start, end)) = current {
        total += end - start;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn disabled_sink_records_nothing_and_reports_empty() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        for i in 0..1000 {
            sink.record(i, TraceEventKind::Step1Finished);
        }
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
        assert!(sink.events().is_empty());
        assert!(sink.events_for(3, 3).is_empty());
        assert_eq!(sink.now(), Duration::ZERO);
    }

    #[test]
    fn bounded_ring_evicts_oldest_and_counts_drops() {
        let sink = TraceSink::bounded(4);
        for seq in 0..6 {
            sink.record_at(ms(seq as u64), seq, TraceEventKind::ReduceStarted);
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 2);
        let events = sink.events();
        assert_eq!(events.first().unwrap().seq, 2, "oldest evicted first");
        assert_eq!(events.last().unwrap().seq, 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_sink_rejected() {
        TraceSink::bounded(0);
    }

    #[test]
    fn events_for_joins_seq_events_with_the_admission_by_job_id() {
        let sink = TraceSink::bounded(64);
        sink.record_at(ms(0), NO_SEQ, TraceEventKind::Admitted { job: 7 });
        sink.record_at(ms(1), NO_SEQ, TraceEventKind::Admitted { job: 8 });
        sink.record_at(ms(2), 0, TraceEventKind::Step1Started { job: 7 });
        sink.record_at(ms(3), 1, TraceEventKind::Step1Started { job: 8 });
        let events = sink.events_for(0, 7);
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0].kind,
            TraceEventKind::Admitted { job: 7 }
        ));
        assert_eq!(events[1].seq, 0);
    }

    /// A complete single-job timeline across two devices.
    fn fixture_events() -> Vec<TraceEvent> {
        use TraceEventKind::*;
        use TraceStage::*;
        let e = |at, seq, kind| TraceEvent {
            at: ms(at),
            seq,
            kind,
        };
        vec![
            e(0, NO_SEQ, Admitted { job: 1 }),
            e(2, 0, Step1Started { job: 1 }),
            e(5, 0, Step1Finished),
            e(
                5,
                0,
                CommandIssued {
                    stage: Intersect,
                    shard: 0,
                },
            ),
            e(
                5,
                0,
                CommandIssued {
                    stage: Intersect,
                    shard: 1,
                },
            ),
            e(
                6,
                0,
                CommandStarted {
                    stage: Intersect,
                    shard: 0,
                },
            ),
            e(
                7,
                0,
                CommandStarted {
                    stage: Intersect,
                    shard: 1,
                },
            ),
            e(
                9,
                0,
                CommandCompleted {
                    stage: Intersect,
                    shard: 0,
                },
            ),
            e(
                11,
                0,
                CommandCompleted {
                    stage: Intersect,
                    shard: 1,
                },
            ),
            e(
                12,
                0,
                CommandIssued {
                    stage: Step3,
                    shard: 0,
                },
            ),
            e(
                12,
                0,
                CommandIssued {
                    stage: Step3,
                    shard: 1,
                },
            ),
            e(
                13,
                0,
                CommandStarted {
                    stage: Step3,
                    shard: 0,
                },
            ),
            e(
                13,
                0,
                CommandStarted {
                    stage: Step3,
                    shard: 1,
                },
            ),
            e(
                16,
                0,
                CommandCompleted {
                    stage: Step3,
                    shard: 0,
                },
            ),
            e(
                20,
                0,
                CommandCompleted {
                    stage: Step3,
                    shard: 1,
                },
            ),
            e(21, 0, ReduceStarted),
            e(22, 0, ReduceFinished),
            e(22, 0, Delivered { job: 1 }),
        ]
    }

    #[test]
    fn breakdown_segments_telescope_to_the_delivery_span() {
        let breakdown = StageBreakdown::from_events(&fixture_events(), ms(22)).unwrap();
        assert_eq!(breakdown.queue_wait, ms(2));
        assert_eq!(breakdown.step1, ms(3));
        assert_eq!(breakdown.step2_wait, ms(1), "step1 end 5 -> first start 6");
        assert_eq!(
            breakdown.step2_service,
            ms(5),
            "first start 6 -> last done 11"
        );
        assert_eq!(
            breakdown.step3_wait,
            ms(2),
            "last intersect 11 -> step3 start 13"
        );
        assert_eq!(breakdown.step3_service, ms(7), "13 -> 20");
        assert_eq!(breakdown.reduce_barrier, ms(1), "20 -> reduce 21");
        assert_eq!(breakdown.reduce, ms(1), "21 -> delivered 22");
        assert_eq!(breakdown.total(), ms(22), "segments telescope exactly");
        assert_eq!(
            breakdown.gating_device,
            Some(1),
            "device 1 finished step 3 last"
        );
    }

    #[test]
    fn breakdown_collapses_stages_the_job_never_entered() {
        use TraceEventKind::*;
        let e = |at, seq, kind| TraceEvent {
            at: ms(at),
            seq,
            kind,
        };
        // No intersect or step3 commands at all (empty query list, no
        // candidates): the middle segments are zero and the sum still
        // telescopes.
        let events = vec![
            e(0, NO_SEQ, Admitted { job: 2 }),
            e(1, 3, Step1Started { job: 2 }),
            e(4, 3, Step1Finished),
            e(6, 3, ReduceStarted),
            e(7, 3, Delivered { job: 2 }),
        ];
        let b = StageBreakdown::from_events(&events, ms(7)).unwrap();
        assert_eq!(b.queue_wait, ms(1));
        assert_eq!(b.step1, ms(3));
        assert_eq!(b.step2_wait + b.step2_service, Duration::ZERO);
        assert_eq!(b.step3_wait + b.step3_service, Duration::ZERO);
        assert_eq!(b.reduce_barrier, ms(2));
        assert_eq!(b.reduce, ms(1));
        assert_eq!(b.total(), ms(7));
        assert_eq!(b.gating_device, None);
    }

    #[test]
    fn breakdown_without_admission_anchors_on_step1() {
        // Batch hand-offs trace no admission; the breakdown starts at Step 1
        // with zero queue wait rather than returning None.
        let events: Vec<TraceEvent> = fixture_events()
            .into_iter()
            .filter(|e| !matches!(e.kind, TraceEventKind::Admitted { .. }))
            .collect();
        let b = StageBreakdown::from_events(&events, ms(22)).unwrap();
        assert_eq!(b.queue_wait, Duration::ZERO);
        assert_eq!(b.total(), ms(20), "anchored at step1 start (2) -> 22");
    }

    #[test]
    fn breakdown_of_no_events_is_none() {
        assert!(StageBreakdown::from_events(&[], ms(5)).is_none());
    }

    #[test]
    fn breakdown_aggregation_means_segment_wise() {
        let b = StageBreakdown::from_events(&fixture_events(), ms(22)).unwrap();
        let mut sum = StageBreakdown::default();
        sum.accumulate(&b);
        sum.accumulate(&b);
        assert_eq!(sum.step2_service, ms(10));
        let mean = sum.mean_of(2);
        assert_eq!(mean.step2_service, b.step2_service);
        assert_eq!(mean.total(), b.total());
        assert_eq!(
            StageBreakdown::default().mean_of(0),
            StageBreakdown::default()
        );
        let line = mean.summary_line();
        assert!(line.contains("step2 wait"));
        assert!(line.contains("reduce barrier"));
    }

    #[test]
    fn straggler_report_accounts_devices_and_names_gaters() {
        let report = StragglerReport::from_events(&fixture_events(), 2);
        assert_eq!(report.span, ms(22));
        assert_eq!(report.devices.len(), 2);
        // Device 0: intersect 6..9 (3 ms) + step3 13..16 (3 ms).
        assert_eq!(report.devices[0].busy, ms(6));
        assert_eq!(report.devices[0].intersect_busy, ms(3));
        assert_eq!(report.devices[0].step3_busy, ms(3));
        assert_eq!(report.devices[0].commands, 2);
        // Device 1: intersect 7..11 (4 ms) + step3 13..20 (7 ms).
        assert_eq!(report.devices[1].step3_busy, ms(7));
        // Device 0 stall: intersect issued at 5, started 6 (1 ms); step3
        // issued 12, started 13 (1 ms).
        assert_eq!(report.devices[0].stall, ms(2));
        // Device 0 idle: span 22 - pending union (5..9 + 12..16 = 8 ms).
        assert_eq!(report.devices[0].idle, ms(14));
        assert_eq!(report.gating, vec![(0, 1)]);
        assert_eq!(report.histogram, vec![0, 1]);
        assert_eq!(report.dominant_gater(), Some((1, 1)));
        let skew = report.step3_busy_skew();
        assert!((skew - 7.0 / 3.0).abs() < 1e-9, "skew 7/3, got {skew}");
        let text = report.report();
        assert!(text.starts_with("straggler report:"));
        assert!(text.contains("step 3 busy skew"));
        assert!(text.contains("job seq 0 -> device 1"));
        assert!(text.contains("gating-device histogram"));
    }

    #[test]
    fn straggler_report_of_empty_trace_is_empty_but_valid() {
        let report = StragglerReport::from_events(&[], 3);
        assert_eq!(report.span, Duration::ZERO);
        assert_eq!(report.devices.len(), 3);
        assert!(report.gating.is_empty());
        assert_eq!(report.step3_busy_skew(), 1.0);
        assert_eq!(report.dominant_gater(), None);
        assert_eq!(report.gating_histogram_flatness(), 1.0);
        assert!(report.report().contains("no job ran step 3"));
    }

    #[test]
    fn gating_histogram_flatness_is_max_over_mean() {
        let base = StragglerReport::from_events(&[], 4);
        // One device gates everything: worst case = device count.
        let mut worst = base.clone();
        worst.histogram = vec![8, 0, 0, 0];
        assert!((worst.gating_histogram_flatness() - 4.0).abs() < 1e-9);
        // Perfectly flat split: 1.0.
        let mut flat = base.clone();
        flat.histogram = vec![2, 2, 2, 2];
        assert!((flat.gating_histogram_flatness() - 1.0).abs() < 1e-9);
        // Mild skew: max 3 over mean 2.
        let mut mild = base;
        mild.histogram = vec![3, 2, 2, 1];
        assert!((mild.gating_histogram_flatness() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn union_len_merges_overlaps() {
        let mut intervals = vec![
            (ms(5), ms(9)),
            (ms(0), ms(2)),
            (ms(8), ms(12)),
            (ms(1), ms(2)),
        ];
        assert_eq!(union_len(&mut intervals), ms(9), "2 + 7");
        assert_eq!(union_len(&mut []), Duration::ZERO);
    }

    #[test]
    fn trace_log_serializes_every_event_kind() {
        let log = TraceLog {
            events: fixture_events(),
            dropped: 0,
        };
        let json = log.to_json();
        for kind in [
            "admitted",
            "step1_started",
            "step1_finished",
            "command_issued",
            "command_started",
            "command_completed",
            "reduce_started",
            "reduce_finished",
            "delivered",
        ] {
            assert!(json.contains(kind), "missing {kind} in:\n{json}");
        }
        assert!(json.contains("\"seq\": null"), "NO_SEQ serializes as null");
        assert!(json.contains("\"stage\": \"step3\""));
        assert!(json.contains("\"dropped\": 0"));
    }

    #[test]
    fn fault_retry_and_failover_events_serialize_and_are_counted() {
        use TraceEventKind::*;
        use TraceStage::*;
        let e = |at, seq, kind| TraceEvent {
            at: ms(at),
            seq,
            kind,
        };
        let events = vec![
            e(
                1,
                0,
                Fault {
                    stage: Intersect,
                    shard: 1,
                },
            ),
            e(
                2,
                0,
                Retry {
                    stage: Intersect,
                    shard: 1,
                    attempt: 1,
                },
            ),
            e(
                3,
                0,
                Failover {
                    stage: Step3,
                    from: 1,
                    to: 0,
                },
            ),
        ];
        let json = TraceLog {
            events: events.clone(),
            dropped: 0,
        }
        .to_json();
        for needle in [
            "\"kind\": \"fault\"",
            "\"kind\": \"retry\"",
            "\"attempt\": 1",
            "\"kind\": \"failover\"",
            "\"from\": 1, \"to\": 0",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        let report = StragglerReport::from_events(&events, 2);
        assert_eq!(report.faults, vec![0, 1]);
        assert_eq!(report.retries, vec![0, 1]);
        assert_eq!(report.failovers, vec![0, 1]);
        let text = report.report();
        assert!(text
            .starts_with("straggler report: per-device busy/stall/idle and per-job step-3 gating"));
        assert!(text.contains("command faults per device: [0, 1]"));
        assert!(text.contains("failovers away from dead shards: [0, 1]"));
        // The new kinds never perturb a job's stage breakdown.
        let mut with_faults = fixture_events();
        with_faults.extend(events);
        let clean = StageBreakdown::from_events(&fixture_events(), ms(22)).unwrap();
        let faulted = StageBreakdown::from_events(&with_faults, ms(22)).unwrap();
        assert_eq!(clean, faulted);
    }

    #[test]
    fn clean_straggler_report_renders_no_fault_lines() {
        let report = StragglerReport::from_events(&fixture_events(), 2);
        assert_eq!(report.faults, vec![0, 0]);
        let text = report.report();
        assert!(!text.contains("command faults"));
        assert!(!text.contains("failovers"));
    }

    #[test]
    fn sink_timestamps_are_monotone_per_producer() {
        let sink = TraceSink::bounded(16);
        sink.record(0, TraceEventKind::Step1Finished);
        sink.record(0, TraceEventKind::ReduceStarted);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(events[1].at >= events[0].at);
    }
}
