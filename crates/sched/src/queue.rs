//! Admission queue and scheduling policy.
//!
//! The queue decides two things: whether a job is admitted at all (bounded
//! queue depth, so a saturated service degrades by rejecting instead of
//! growing without bound) and in what order admitted jobs enter service.
//! Ordering is deterministic: FIFO follows submission order; the priority
//! policy orders by (priority desc, submission order asc).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

use crate::job::{JobId, JobSpec};

/// Order in which admitted jobs enter service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict submission order.
    #[default]
    Fifo,
    /// Higher [`crate::job::Priority`] first; ties in submission order.
    Priority,
}

impl SchedPolicy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Priority => "priority",
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is at capacity; the client should retry later.
    QueueFull {
        /// The configured capacity that was exceeded.
        capacity: usize,
    },
    /// The service has begun a graceful shutdown and no longer accepts jobs.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            AdmissionError::ShuttingDown => {
                write!(f, "service is shutting down; submissions are closed")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One queued entry.
#[derive(Debug, Clone)]
pub(crate) struct QueuedJob {
    pub id: JobId,
    pub spec: JobSpec,
    pub submitted_at: Instant,
}

/// Max-heap entry for the priority policy: higher [`crate::job::Priority`]
/// wins; ties go to the earlier submission (smaller id).
#[derive(Debug)]
struct PriorityEntry(QueuedJob);

impl Ord for PriorityEntry {
    fn cmp(&self, other: &PriorityEntry) -> Ordering {
        self.0
            .spec
            .priority
            .cmp(&other.0.spec.priority)
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

impl PartialOrd for PriorityEntry {
    fn partial_cmp(&self, other: &PriorityEntry) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for PriorityEntry {
    fn eq(&self, other: &PriorityEntry) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for PriorityEntry {}

/// Policy-specific backing store: a deque for FIFO (O(1) pops), a binary
/// heap for the priority policy (O(log n) pops). `pop_next` is the service
/// executor's per-dispatch hot path and runs under the global service lock,
/// so a linear scan there would serialize submitters behind every dispatch.
#[derive(Debug)]
enum Pending {
    Fifo(VecDeque<QueuedJob>),
    Priority(BinaryHeap<PriorityEntry>),
}

impl Pending {
    fn len(&self) -> usize {
        match self {
            Pending::Fifo(queue) => queue.len(),
            Pending::Priority(heap) => heap.len(),
        }
    }

    fn push(&mut self, job: QueuedJob) {
        match self {
            Pending::Fifo(queue) => queue.push_back(job),
            Pending::Priority(heap) => heap.push(PriorityEntry(job)),
        }
    }
}

/// The admission queue.
#[derive(Debug)]
pub struct JobQueue {
    policy: SchedPolicy,
    capacity: usize,
    next_id: u64,
    pending: Pending,
}

impl JobQueue {
    /// Creates a queue with the given policy and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(policy: SchedPolicy, capacity: usize) -> JobQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            policy,
            capacity,
            next_id: 0,
            pending: match policy {
                SchedPolicy::Fifo => Pending::Fifo(VecDeque::new()),
                SchedPolicy::Priority => Pending::Priority(BinaryHeap::new()),
            },
        }
    }

    /// The scheduling policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// The configured admission capacity.
    ///
    /// A standalone queue bounds only *queued* jobs; the streaming service
    /// additionally counts in-flight work against this capacity (see
    /// [`crate::StreamingEngine::submit`]), so a job occupies its slot from
    /// admission to delivery.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of jobs waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.len() == 0
    }

    /// Admits a job, or rejects it if the queue is full.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        if self.pending.len() >= self.capacity {
            return Err(AdmissionError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.pending.push(QueuedJob {
            id,
            spec,
            submitted_at: Instant::now(),
        });
        Ok(id)
    }

    /// Re-enqueues a job that was already admitted elsewhere (its id and
    /// submission time are preserved), bypassing the capacity check. Used by
    /// the batch wrapper to hand admitted jobs to the service executor.
    pub(crate) fn enqueue_admitted(&mut self, job: QueuedJob) {
        self.next_id = self.next_id.max(job.id.0 + 1);
        self.pending.push(job);
    }

    /// Removes and returns the next job to serve under the policy.
    ///
    /// This is the live dispatch path of the service executor: the decision
    /// is taken at pop time over whatever is queued *now*, so jobs submitted
    /// while the engine runs compete under the policy immediately. O(1) for
    /// FIFO, O(log n) under the priority policy.
    /// [`JobQueue::drain_ordered`] must produce the same sequence for a
    /// closed queue (asserted by the unit tests).
    pub(crate) fn pop_next(&mut self) -> Option<QueuedJob> {
        match &mut self.pending {
            Pending::Fifo(queue) => queue.pop_front(),
            Pending::Priority(heap) => heap.pop().map(|entry| entry.0),
        }
    }

    /// Removes all waiting jobs in service order. Equivalent to repeated
    /// [`JobQueue::pop_next`] calls (the heap's explicit id tie-break keeps
    /// submission order within each priority).
    pub(crate) fn drain_ordered(&mut self) -> Vec<QueuedJob> {
        match &mut self.pending {
            Pending::Fifo(queue) => std::mem::take(queue).into(),
            Pending::Priority(heap) => {
                // `into_sorted_vec` is ascending under `Ord` (service order
                // reversed); flip it to get highest priority first.
                let mut entries = std::mem::take(heap).into_sorted_vec();
                entries.reverse();
                entries.into_iter().map(|entry| entry.0).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use megis_genomics::read::ReadSet;
    use megis_genomics::sample::Sample;

    fn spec(label: &str, priority: Priority) -> JobSpec {
        JobSpec::new(label, Sample::from_reads(ReadSet::new())).with_priority(priority)
    }

    #[test]
    fn fifo_preserves_submission_order() {
        let mut q = JobQueue::new(SchedPolicy::Fifo, 8);
        for (label, p) in [
            ("a", Priority::Low),
            ("b", Priority::High),
            ("c", Priority::Normal),
        ] {
            q.submit(spec(label, p)).unwrap();
        }
        let order: Vec<String> = q
            .drain_ordered()
            .into_iter()
            .map(|j| j.spec.label)
            .collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn priority_policy_orders_by_priority_then_submission() {
        let mut q = JobQueue::new(SchedPolicy::Priority, 8);
        for (label, p) in [
            ("a", Priority::Low),
            ("b", Priority::Normal),
            ("c", Priority::High),
            ("d", Priority::Normal),
            ("e", Priority::High),
        ] {
            q.submit(spec(label, p)).unwrap();
        }
        let order: Vec<String> = q
            .drain_ordered()
            .into_iter()
            .map(|j| j.spec.label)
            .collect();
        assert_eq!(order, ["c", "e", "b", "d", "a"]);
    }

    #[test]
    fn admission_rejects_when_full() {
        let mut q = JobQueue::new(SchedPolicy::Fifo, 2);
        q.submit(spec("a", Priority::Normal)).unwrap();
        q.submit(spec("b", Priority::Normal)).unwrap();
        let err = q.submit(spec("c", Priority::Normal)).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { capacity: 2 });
        // Draining frees capacity again.
        q.pop_next().unwrap();
        assert!(q.submit(spec("c", Priority::Normal)).is_ok());
    }

    #[test]
    fn drain_matches_repeated_pop_next() {
        let jobs = [
            ("a", Priority::Low),
            ("b", Priority::High),
            ("c", Priority::Normal),
            ("d", Priority::High),
            ("e", Priority::Low),
            ("f", Priority::Normal),
        ];
        for policy in [SchedPolicy::Fifo, SchedPolicy::Priority] {
            let mut drained = JobQueue::new(policy, 16);
            let mut popped = JobQueue::new(policy, 16);
            for (label, p) in jobs {
                drained.submit(spec(label, p)).unwrap();
                popped.submit(spec(label, p)).unwrap();
            }
            let via_drain: Vec<JobId> = drained.drain_ordered().iter().map(|j| j.id).collect();
            let mut via_pop = Vec::new();
            while let Some(job) = popped.pop_next() {
                via_pop.push(job.id);
            }
            assert_eq!(via_drain, via_pop, "{policy:?}");
        }
    }

    #[test]
    fn job_ids_are_monotonic_across_policies() {
        let mut q = JobQueue::new(SchedPolicy::Priority, 8);
        let a = q.submit(spec("a", Priority::Low)).unwrap();
        let b = q.submit(spec("b", Priority::High)).unwrap();
        assert!(a < b, "ids follow submission order, not service order");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        JobQueue::new(SchedPolicy::Fifo, 0);
    }
}
