//! Admission queue and scheduling policy.
//!
//! The queue decides two things: whether a job is admitted at all (bounded
//! queue depth, so a saturated service degrades by rejecting instead of
//! growing without bound) and in what order admitted jobs enter service.
//! Ordering is deterministic: FIFO follows submission order; the priority
//! policy orders by (priority desc, submission order asc).

use std::collections::VecDeque;
use std::time::Instant;

use crate::job::{JobId, JobSpec};

/// Order in which admitted jobs enter service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict submission order.
    #[default]
    Fifo,
    /// Higher [`crate::job::Priority`] first; ties in submission order.
    Priority,
}

impl SchedPolicy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Priority => "priority",
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is at capacity; the client should retry later.
    QueueFull {
        /// The configured capacity that was exceeded.
        capacity: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One queued entry.
#[derive(Debug, Clone)]
pub(crate) struct QueuedJob {
    pub id: JobId,
    pub spec: JobSpec,
    pub submitted_at: Instant,
}

/// The admission queue.
#[derive(Debug)]
pub struct JobQueue {
    policy: SchedPolicy,
    capacity: usize,
    next_id: u64,
    pending: VecDeque<QueuedJob>,
}

impl JobQueue {
    /// Creates a queue with the given policy and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(policy: SchedPolicy, capacity: usize) -> JobQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            policy,
            capacity,
            next_id: 0,
            pending: VecDeque::new(),
        }
    }

    /// The scheduling policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Number of jobs waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admits a job, or rejects it if the queue is full.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        if self.pending.len() >= self.capacity {
            return Err(AdmissionError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(QueuedJob {
            id,
            spec,
            submitted_at: Instant::now(),
        });
        Ok(id)
    }

    /// Removes and returns the next job to serve under the policy.
    ///
    /// Reference implementation of the service order; [`JobQueue::drain_ordered`]
    /// must produce the same sequence (asserted by the unit tests).
    #[cfg(test)]
    pub(crate) fn pop_next(&mut self) -> Option<QueuedJob> {
        let idx = match self.policy {
            SchedPolicy::Fifo => 0,
            SchedPolicy::Priority => {
                // Highest priority; ties broken by smallest id (stable since
                // the deque holds jobs in submission order).
                let mut best = 0;
                for i in 1..self.pending.len() {
                    if self.pending[i].spec.priority > self.pending[best].spec.priority {
                        best = i;
                    }
                }
                best
            }
        };
        self.pending.remove(idx)
    }

    /// Removes all waiting jobs in service order. Equivalent to repeated
    /// [`JobQueue::pop_next`] calls, but O(n log n) under the priority
    /// policy (the stable sort preserves submission order within each
    /// priority, matching pop_next's tie-breaking).
    pub(crate) fn drain_ordered(&mut self) -> Vec<QueuedJob> {
        let mut out: Vec<QueuedJob> = std::mem::take(&mut self.pending).into();
        if self.policy == SchedPolicy::Priority {
            out.sort_by_key(|job| std::cmp::Reverse(job.spec.priority));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use megis_genomics::read::ReadSet;
    use megis_genomics::sample::Sample;

    fn spec(label: &str, priority: Priority) -> JobSpec {
        JobSpec::new(label, Sample::from_reads(ReadSet::new())).with_priority(priority)
    }

    #[test]
    fn fifo_preserves_submission_order() {
        let mut q = JobQueue::new(SchedPolicy::Fifo, 8);
        for (label, p) in [
            ("a", Priority::Low),
            ("b", Priority::High),
            ("c", Priority::Normal),
        ] {
            q.submit(spec(label, p)).unwrap();
        }
        let order: Vec<String> = q
            .drain_ordered()
            .into_iter()
            .map(|j| j.spec.label)
            .collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn priority_policy_orders_by_priority_then_submission() {
        let mut q = JobQueue::new(SchedPolicy::Priority, 8);
        for (label, p) in [
            ("a", Priority::Low),
            ("b", Priority::Normal),
            ("c", Priority::High),
            ("d", Priority::Normal),
            ("e", Priority::High),
        ] {
            q.submit(spec(label, p)).unwrap();
        }
        let order: Vec<String> = q
            .drain_ordered()
            .into_iter()
            .map(|j| j.spec.label)
            .collect();
        assert_eq!(order, ["c", "e", "b", "d", "a"]);
    }

    #[test]
    fn admission_rejects_when_full() {
        let mut q = JobQueue::new(SchedPolicy::Fifo, 2);
        q.submit(spec("a", Priority::Normal)).unwrap();
        q.submit(spec("b", Priority::Normal)).unwrap();
        let err = q.submit(spec("c", Priority::Normal)).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { capacity: 2 });
        // Draining frees capacity again.
        q.pop_next().unwrap();
        assert!(q.submit(spec("c", Priority::Normal)).is_ok());
    }

    #[test]
    fn drain_matches_repeated_pop_next() {
        let jobs = [
            ("a", Priority::Low),
            ("b", Priority::High),
            ("c", Priority::Normal),
            ("d", Priority::High),
            ("e", Priority::Low),
            ("f", Priority::Normal),
        ];
        for policy in [SchedPolicy::Fifo, SchedPolicy::Priority] {
            let mut drained = JobQueue::new(policy, 16);
            let mut popped = JobQueue::new(policy, 16);
            for (label, p) in jobs {
                drained.submit(spec(label, p)).unwrap();
                popped.submit(spec(label, p)).unwrap();
            }
            let via_drain: Vec<JobId> = drained.drain_ordered().iter().map(|j| j.id).collect();
            let mut via_pop = Vec::new();
            while let Some(job) = popped.pop_next() {
                via_pop.push(job.id);
            }
            assert_eq!(via_drain, via_pop, "{policy:?}");
        }
    }

    #[test]
    fn job_ids_are_monotonic_across_policies() {
        let mut q = JobQueue::new(SchedPolicy::Priority, 8);
        let a = q.submit(spec("a", Priority::Low)).unwrap();
        let b = q.submit(spec("b", Priority::High)).unwrap();
        assert!(a < b, "ids follow submission order, not service order");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        JobQueue::new(SchedPolicy::Fifo, 0);
    }
}
