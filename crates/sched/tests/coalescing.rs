//! Cross-sample query coalescing: byte-parity matrix and fault-path
//! interaction tests.
//!
//! The coalescing window is a pure scheduling knob: it changes how many
//! galloping sweeps the shard workers run, never what any sample computes.
//! The oracle for every test here is therefore the same as the engine's
//! own: [`MegisAnalyzer::analyze`] per sample. The matrix test drives the
//! window across worker/shard/queue-depth combinations and checks the
//! outputs and the query-item accounting against an uncoalesced twin run;
//! the fault tests point a seeded [`FaultPlan`] at shared commands and
//! check that retry and failover treat a multi-member command as one unit.

use std::time::Duration;

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::sample::{Community, CommunityConfig, Diversity};
use megis_sched::{BatchEngine, BatchReport, EngineConfig, FaultPlan, JobSpec, ShardStats};

fn community() -> Community {
    CommunityConfig::preset(Diversity::Medium)
        .with_reads(120)
        .with_database_species(12)
        .build(91)
}

fn analyzer(c: &Community) -> MegisAnalyzer {
    MegisAnalyzer::build(c.references(), MegisConfig::small())
}

fn specs(c: &Community, n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec::new(format!("sample-{i}"), c.sample().clone()))
        .collect()
}

fn run(c: &Community, config: EngineConfig, jobs: usize) -> BatchReport {
    let mut engine = BatchEngine::new(analyzer(c), config);
    engine.submit_all(specs(c, jobs)).unwrap();
    engine.run()
}

/// A generous window: it only delays dispatch while the group is still
/// filling, and with as many jobs as the group cap the wait ends as soon
/// as the last Step 1 finishes — so "generous" costs milliseconds, not the
/// window, while making the grouping deterministic even on a loaded CI
/// host.
const WINDOW: Duration = Duration::from_secs(2);

fn step2_commands(stats: &[ShardStats]) -> u64 {
    stats.iter().map(|s| s.jobs).sum()
}

fn query_items(stats: &[ShardStats]) -> u64 {
    stats.iter().map(|s| s.query_items).sum()
}

fn coalesced_commands(stats: &[ShardStats]) -> u64 {
    stats.iter().map(|s| s.coalesced_commands).sum()
}

fn coalesced_members(stats: &[ShardStats]) -> u64 {
    stats.iter().map(|s| s.coalesced_members).sum()
}

/// Member slices served across the array: singleton commands carry one
/// each, shared commands carry their member count. Coalescing must
/// conserve this — every (sample, shard) slice is swept exactly once.
fn member_slices(stats: &[ShardStats]) -> u64 {
    (step2_commands(stats) - coalesced_commands(stats)) + coalesced_members(stats)
}

/// Tentpole oracle: for every worker × shard × queue-depth corner, the
/// coalesced engine's outputs are byte-identical to the uncoalesced twin
/// and to the sequential analyzer, and the per-shard query-item accounting
/// (how many query k-mers crossed the array) is unchanged — coalescing
/// amortizes sweeps, it does not reshape the query-side work.
#[test]
fn window_matrix_is_byte_identical_to_uncoalesced_runs() {
    let c = community();
    let expected = analyzer(&c).analyze(c.sample());
    let jobs = 5;
    for workers in [1, 2] {
        for shards in [1, 3] {
            for depth in [1, 4] {
                let base = EngineConfig::new()
                    .with_workers(workers)
                    .with_shards(shards)
                    .with_queue_depth(depth);
                let off = run(&c, base.clone(), jobs);
                let on = run(&c, base.with_coalescing_window(WINDOW), jobs);
                let corner = format!("workers={workers} shards={shards} depth={depth}");
                assert!(off.failed.is_empty() && on.failed.is_empty(), "{corner}");
                assert_eq!(on.results.len(), jobs, "{corner}");
                for (a, b) in off.results.iter().zip(&on.results) {
                    assert_eq!(a.id, b.id, "{corner}");
                    assert_eq!(a.output, expected, "{corner}: uncoalesced diverged");
                    assert_eq!(b.output, expected, "{corner}: coalesced diverged");
                }
                assert_eq!(
                    query_items(&off.shard_stats),
                    query_items(&on.shard_stats),
                    "{corner}: coalescing changed the query-item accounting"
                );
                assert_eq!(
                    member_slices(&on.shard_stats),
                    step2_commands(&off.shard_stats),
                    "{corner}: a member slice was dropped or swept twice"
                );
                assert_eq!(
                    coalesced_commands(&off.shard_stats),
                    0,
                    "{corner}: the default engine must never share a sweep"
                );
            }
        }
    }
}

/// With a window and room in the queue, co-resident samples genuinely
/// share sweeps: fewer physical Step 2 commands than member slices, and
/// the ShardStats occupancy counters surface it.
#[test]
fn co_resident_samples_share_sweeps() {
    let c = community();
    let jobs = 4;
    let config = EngineConfig::new()
        .with_workers(2)
        .with_shards(2)
        .with_queue_depth(jobs)
        .with_coalescing_window(WINDOW);
    let report = run(&c, config, jobs);
    assert!(report.failed.is_empty());
    let stats = &report.shard_stats;
    assert!(
        coalesced_commands(stats) >= 1,
        "no sweep was shared despite a {WINDOW:?} window: {stats:?}"
    );
    assert!(
        step2_commands(stats) < member_slices(stats),
        "sharing saved no sweeps: {stats:?}"
    );
    let summary = report.summary();
    assert!(
        summary.contains("query coalescing:"),
        "summary is missing the coalescing line:\n{summary}"
    );
}

/// A transient fault on a shared command retries the whole command as one
/// unit: results stay byte-identical, every member's hits come back from
/// the retried sweep, and the `faults == retries` exactness the seeded
/// plan guarantees for singleton commands survives coalescing (both count
/// physical commands, not members).
#[test]
fn transient_fault_retries_a_shared_command_whole() {
    let c = community();
    let expected = analyzer(&c).analyze(c.sample());
    let jobs = 4;
    let config = EngineConfig::new()
        .with_workers(2)
        .with_shards(2)
        .with_queue_depth(jobs)
        .with_coalescing_window(WINDOW)
        .with_fault_plan(FaultPlan::seeded(7).with_transient_rate(1.0));
    let report = run(&c, config, jobs);
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert_eq!(report.results.len(), jobs);
    for r in &report.results {
        assert_eq!(r.output, expected, "{} diverged after retry", r.label);
    }
    let stats = &report.shard_stats;
    let faults: u64 = stats.iter().map(|s| s.faults).sum();
    let retries: u64 = stats.iter().map(|s| s.retries).sum();
    assert!(faults > 0, "the plan fails every command once: {stats:?}");
    assert_eq!(
        faults, retries,
        "a recovered shared command must count one fault and one retry: {stats:?}"
    );
    assert!(
        coalesced_commands(stats) >= 1,
        "the fault path never saw a shared command: {stats:?}"
    );
}

/// Killing a shard while shared commands are in flight fails over the
/// coalesced backlog to survivors *without splitting members*: with all
/// four jobs grouped per shard, the array still serves exactly one shared
/// sweep per shard — the adopted command keeps its full member list — and
/// every sample's output is byte-identical.
#[test]
fn dead_shard_failover_adopts_shared_commands_whole() {
    let c = community();
    let expected = analyzer(&c).analyze(c.sample());
    let jobs = 4;
    let shards = 3;
    let config = EngineConfig::new()
        .with_workers(2)
        .with_shards(shards)
        .with_queue_depth(jobs)
        .with_coalescing_window(WINDOW)
        .with_fault_plan(FaultPlan::seeded(11).with_shard_death(0, 0));
    let report = run(&c, config, jobs);
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    for r in &report.results {
        assert_eq!(r.output, expected, "{} diverged after failover", r.label);
    }
    let stats = &report.shard_stats;
    let failovers: u64 = stats.iter().map(|s| s.failovers).sum();
    assert!(
        failovers >= 1,
        "the dead shard never failed over: {stats:?}"
    );
    assert!(stats[0].dead, "shard 0 should be marked dead: {stats:?}");
    // Every job overlaps every shard's key range in this community, so
    // grouping all four jobs yields one 4-member command per shard. The
    // adopted command must arrive at its survivor intact: one shared sweep
    // per shard-of-record, each carrying all four members.
    assert_eq!(
        coalesced_commands(stats),
        shards as u64,
        "a shared command was split across re-issues: {stats:?}"
    );
    assert_eq!(
        coalesced_members(stats),
        (shards * jobs) as u64,
        "the failed-over command lost members: {stats:?}"
    );
}
