//! Sequencing reads and read sets.
//!
//! A metagenomic *sample read set* is the collection of basecalled reads
//! produced by sequencing one sample (§2.1 of the paper). The species of
//! origin of each read is unknown to the analysis tools; for synthetic samples
//! we additionally keep the ground-truth taxon so accuracy can be scored.

use std::fmt;

use crate::dna::PackedSequence;
use crate::kmer::{Kmer, KmerExtractor};
use crate::taxonomy::TaxId;

/// A single sequencing read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Read {
    id: String,
    sequence: PackedSequence,
    truth: Option<TaxId>,
}

impl Read {
    /// Creates a read with an identifier and sequence.
    pub fn new(id: impl Into<String>, sequence: PackedSequence) -> Read {
        Read {
            id: id.into(),
            sequence,
            truth: None,
        }
    }

    /// Creates a read that carries its ground-truth taxon (synthetic data).
    pub fn with_truth(id: impl Into<String>, sequence: PackedSequence, truth: TaxId) -> Read {
        Read {
            id: id.into(),
            sequence,
            truth: Some(truth),
        }
    }

    /// The read identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The read sequence.
    pub fn sequence(&self) -> &PackedSequence {
        &self.sequence
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Returns `true` if the read has zero length.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Ground-truth taxon for synthetic reads, if recorded.
    pub fn truth(&self) -> Option<TaxId> {
        self.truth
    }

    /// Extracts all k-mers of length `k` from this read.
    pub fn kmers(&self, k: usize) -> KmerExtractor<'_> {
        KmerExtractor::new(&self.sequence, k)
    }
}

impl fmt::Display for Read {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ">{}\n{}", self.id, self.sequence)
    }
}

/// An ordered collection of reads (one sequenced sample).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadSet {
    reads: Vec<Read>,
}

impl ReadSet {
    /// Creates an empty read set.
    pub fn new() -> ReadSet {
        ReadSet::default()
    }

    /// Creates a read set from a vector of reads.
    pub fn from_reads(reads: Vec<Read>) -> ReadSet {
        ReadSet { reads }
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Returns `true` if the set contains no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Appends a read.
    pub fn push(&mut self, read: Read) {
        self.reads.push(read);
    }

    /// The reads as a slice.
    pub fn reads(&self) -> &[Read] {
        &self.reads
    }

    /// Iterates over the reads.
    pub fn iter(&self) -> std::slice::Iter<'_, Read> {
        self.reads.iter()
    }

    /// Total number of bases across all reads.
    pub fn total_bases(&self) -> usize {
        self.reads.iter().map(Read::len).sum()
    }

    /// Total number of k-mers all reads yield for the given `k`.
    pub fn total_kmers(&self, k: usize) -> usize {
        self.reads
            .iter()
            .map(|r| r.len().saturating_sub(k - 1).min(r.len()))
            .map(|n| if n > 0 && k < n + k { n } else { 0 })
            .sum()
    }

    /// Extracts every k-mer from every read (unsorted, duplicates preserved).
    pub fn extract_kmers(&self, k: usize) -> Vec<Kmer> {
        let mut out = Vec::new();
        for r in &self.reads {
            out.extend(r.kmers(k));
        }
        out
    }

    /// Size of the read set in the 2-bit encoding, in bytes (sequence payload
    /// only). Used by the performance model for host-side transfer estimates.
    pub fn encoded_bytes(&self) -> usize {
        self.reads.iter().map(|r| (2 * r.len()).div_ceil(8)).sum()
    }

    /// Parses a FASTA-formatted byte buffer into a read set.
    ///
    /// Ambiguous bases (anything outside `ACGTacgt`) terminate the current
    /// record's usable sequence, mirroring how k-mer based tools skip k-mers
    /// spanning `N`s. Header lines start with `>`.
    ///
    /// # Errors
    ///
    /// Returns an error message if the buffer does not start with a header.
    pub fn from_fasta(buf: &[u8]) -> Result<ReadSet, String> {
        let text = String::from_utf8_lossy(buf);
        let mut reads = Vec::new();
        let mut current_id: Option<String> = None;
        let mut current_seq = PackedSequence::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('>') {
                if let Some(id) = current_id.take() {
                    reads.push(Read::new(id, std::mem::take(&mut current_seq)));
                }
                current_id = Some(header.to_string());
            } else {
                if current_id.is_none() {
                    return Err("FASTA data must start with a '>' header line".to_string());
                }
                for c in line.bytes() {
                    if let Some(b) = crate::dna::Base::from_ascii(c) {
                        current_seq.push(b);
                    }
                }
            }
        }
        if let Some(id) = current_id {
            reads.push(Read::new(id, current_seq));
        }
        Ok(ReadSet { reads })
    }

    /// Serializes the read set to FASTA.
    pub fn to_fasta(&self) -> String {
        let mut out = String::new();
        for r in &self.reads {
            out.push('>');
            out.push_str(r.id());
            out.push('\n');
            out.push_str(&r.sequence().to_string());
            out.push('\n');
        }
        out
    }
}

impl FromIterator<Read> for ReadSet {
    fn from_iter<I: IntoIterator<Item = Read>>(iter: I) -> ReadSet {
        ReadSet {
            reads: iter.into_iter().collect(),
        }
    }
}

impl Extend<Read> for ReadSet {
    fn extend<I: IntoIterator<Item = Read>>(&mut self, iter: I) {
        self.reads.extend(iter);
    }
}

impl<'a> IntoIterator for &'a ReadSet {
    type Item = &'a Read;
    type IntoIter = std::slice::Iter<'a, Read>;

    fn into_iter(self) -> Self::IntoIter {
        self.reads.iter()
    }
}

impl IntoIterator for ReadSet {
    type Item = Read;
    type IntoIter = std::vec::IntoIter<Read>;

    fn into_iter(self) -> Self::IntoIter {
        self.reads.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::PackedSequence;

    fn read(id: &str, seq: &str) -> Read {
        Read::new(id, PackedSequence::from_ascii(seq.as_bytes()).unwrap())
    }

    #[test]
    fn read_kmers_and_length() {
        let r = read("r1", "ACGTACGT");
        assert_eq!(r.len(), 8);
        assert_eq!(r.kmers(5).count(), 4);
        assert!(r.truth().is_none());
    }

    #[test]
    fn read_with_truth_carries_taxid() {
        let r = Read::with_truth(
            "r1",
            PackedSequence::from_ascii(b"ACGT").unwrap(),
            TaxId(42),
        );
        assert_eq!(r.truth(), Some(TaxId(42)));
    }

    #[test]
    fn readset_totals() {
        let rs = ReadSet::from_reads(vec![read("a", "ACGTACGT"), read("b", "ACGT")]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.total_bases(), 12);
        assert_eq!(rs.extract_kmers(4).len(), 5 + 1);
        assert_eq!(rs.encoded_bytes(), 2 + 1);
    }

    #[test]
    fn fasta_roundtrip() {
        let rs = ReadSet::from_reads(vec![
            read("read/1", "ACGTACGTAC"),
            read("read/2", "TTTTGGGG"),
        ]);
        let fasta = rs.to_fasta();
        let parsed = ReadSet::from_fasta(fasta.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.reads()[0].sequence(), rs.reads()[0].sequence());
        assert_eq!(parsed.reads()[1].id(), "read/2");
    }

    #[test]
    fn fasta_skips_ambiguous_bases() {
        let parsed = ReadSet::from_fasta(b">r1\nACGNNNTT\n").unwrap();
        assert_eq!(parsed.reads()[0].sequence().to_string(), "ACGTT");
    }

    #[test]
    fn fasta_requires_header() {
        assert!(ReadSet::from_fasta(b"ACGT\n").is_err());
    }

    #[test]
    fn readset_collect_and_extend() {
        let mut rs: ReadSet = vec![read("a", "ACGT")].into_iter().collect();
        rs.extend(vec![read("b", "GGCC")]);
        assert_eq!(rs.len(), 2);
        let ids: Vec<&str> = rs.iter().map(Read::id).collect();
        assert_eq!(ids, vec!["a", "b"]);
    }
}
