//! Genomics substrate for the MegIS reproduction.
//!
//! This crate provides every genomics-domain building block that the MegIS
//! in-storage-processing system (ISCA 2024) and its baselines depend on:
//!
//! * 2-bit packed DNA sequences ([`dna`]) — the encoding MegIS uses for both
//!   its databases and its in-flight query k-mers (§4.2 of the paper),
//! * k-mer extraction and canonicalization ([`kmer`]),
//! * sequencing reads and read sets ([`read`]),
//! * a taxonomy tree with lowest-common-ancestor queries ([`taxonomy`]),
//! * reference genomes and reference collections ([`mod@reference`]),
//! * synthetic metagenomic communities and read simulation, with presets that
//!   mirror the CAMI low/medium/high-diversity query sets used in the paper
//!   ([`sample`]),
//! * sorted k-mer databases and per-species reference k-mer indexes
//!   ([`database`]),
//! * sketch databases (small representative k-mer subsets per taxon, in the
//!   style of CMash/Metalign) ([`sketch`]),
//! * presence/absence and abundance result types ([`profile`]), and
//! * accuracy metrics (precision/recall/F1 and L1 abundance error)
//!   ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use megis_genomics::sample::{CommunityConfig, Diversity};
//! use megis_genomics::kmer::KmerExtractor;
//!
//! let community = CommunityConfig::preset(Diversity::Low)
//!     .with_species(8)
//!     .with_reads(200)
//!     .build(42);
//! let sample = community.sample();
//! let k = 31;
//! let kmers: usize = sample
//!     .reads()
//!     .iter()
//!     .map(|r| KmerExtractor::new(r.sequence(), k).count())
//!     .sum();
//! assert!(kmers > 0);
//! ```

// The whole workspace is safe Rust ([workspace.lints] forbids it too);
// this attribute keeps the guarantee visible at the crate root.
#![forbid(unsafe_code)]
pub mod database;
pub mod dna;
pub mod kmer;
pub mod metrics;
pub mod profile;
pub mod read;
pub mod reference;
pub mod sample;
pub mod sketch;
pub mod taxonomy;

pub use database::{
    DatabaseStorage, KmerEntry, KmerEntryRef, PartialUnifiedIndex, ReadMapHit, ReferenceIndex,
    SortedKmerDatabase, UnifiedReferenceIndex, MIN_MAPPING_VOTES,
};
pub use dna::{Base, PackedSequence};
pub use kmer::{CanonicalKmerExtractor, Kmer, KmerExtractor};
pub use metrics::{AbundanceError, ClassificationMetrics};
pub use profile::{AbundanceAccumulator, AbundanceProfile, PresenceResult};
pub use read::{Read, ReadSet};
pub use reference::{ReferenceCollection, ReferenceGenome};
pub use sample::{Community, CommunityConfig, Diversity, Sample};
pub use sketch::{SketchConfig, SketchDatabase};
pub use taxonomy::{TaxId, Taxonomy};
