//! 2-bit packed DNA sequences.
//!
//! MegIS encodes all database and query sequences with two bits per nucleotide
//! (`A`, `C`, `G`, `T`) during offline database generation and after Step 1 of
//! its pipeline (§4.2 of the paper). [`PackedSequence`] is that encoding: a
//! growable, random-access sequence of [`Base`]s stored four to a byte.

use std::fmt;

/// A single DNA nucleotide.
///
/// The numeric values (`A = 0`, `C = 1`, `G = 2`, `T = 3`) define the 2-bit
/// encoding used throughout the workspace and make the lexicographic order of
/// packed k-mers identical to the numeric order of their bit patterns.
///
/// # Example
///
/// ```
/// use megis_genomics::dna::Base;
/// assert_eq!(Base::from_ascii(b'g'), Some(Base::G));
/// assert_eq!(Base::G.complement(), Base::C);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in encoding order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Decodes a 2-bit value into a base.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            _ => unreachable!(),
        }
    }

    /// Returns the 2-bit encoding of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses an ASCII nucleotide character (case-insensitive).
    ///
    /// Returns `None` for ambiguous or invalid characters (e.g. `N`), which
    /// callers typically treat as k-mer breakpoints.
    #[inline]
    pub fn from_ascii(c: u8) -> Option<Base> {
        match c {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Returns the ASCII character for this base.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Returns the Watson–Crick complement of this base.
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

/// A DNA sequence stored with two bits per base (four bases per byte).
///
/// This is the storage format MegIS assumes for its k-mer databases and for
/// query k-mers after format conversion in Step 1. It supports random access,
/// append, reverse complement, and conversion to/from ASCII.
///
/// # Example
///
/// ```
/// use megis_genomics::dna::PackedSequence;
/// let seq = PackedSequence::from_ascii(b"ACGTACGT").unwrap();
/// assert_eq!(seq.len(), 8);
/// assert_eq!(seq.to_string(), "ACGTACGT");
/// assert_eq!(seq.reverse_complement().to_string(), "ACGTACGT");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PackedSequence {
    data: Vec<u8>,
    len: usize,
}

impl PackedSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        PackedSequence::default()
    }

    /// Creates an empty sequence with capacity for `bases` nucleotides.
    pub fn with_capacity(bases: usize) -> Self {
        PackedSequence {
            data: Vec::with_capacity(bases.div_ceil(4)),
            len: 0,
        }
    }

    /// Parses an ASCII sequence.
    ///
    /// # Errors
    ///
    /// Returns the byte offset of the first character that is not one of
    /// `ACGTacgt`.
    pub fn from_ascii(ascii: &[u8]) -> Result<Self, usize> {
        let mut seq = PackedSequence::with_capacity(ascii.len());
        for (i, &c) in ascii.iter().enumerate() {
            match Base::from_ascii(c) {
                Some(b) => seq.push(b),
                None => return Err(i),
            }
        }
        Ok(seq)
    }

    /// Builds a sequence from an iterator of bases.
    pub fn from_bases<I: IntoIterator<Item = Base>>(bases: I) -> Self {
        let iter = bases.into_iter();
        let mut seq = PackedSequence::with_capacity(iter.size_hint().0);
        for b in iter {
            seq.push(b);
        }
        seq
    }

    /// Number of bases in the sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the sequence contains no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bytes used by the packed representation.
    #[inline]
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Appends a base to the end of the sequence.
    #[inline]
    pub fn push(&mut self, base: Base) {
        let bit_offset = (self.len % 4) * 2;
        if bit_offset == 0 {
            self.data.push(base.code());
        } else {
            let last = self.data.last_mut().expect("non-empty data");
            *last |= base.code() << bit_offset;
        }
        self.len += 1;
    }

    /// Returns the base at position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn get(&self, index: usize) -> Base {
        assert!(
            index < self.len,
            "index {index} out of bounds (len {})",
            self.len
        );
        let byte = self.data[index / 4];
        let bit_offset = (index % 4) * 2;
        Base::from_code((byte >> bit_offset) & 0b11)
    }

    /// Iterates over the bases of the sequence.
    pub fn iter(&self) -> Bases<'_> {
        Bases { seq: self, pos: 0 }
    }

    /// Returns the reverse complement of the sequence.
    pub fn reverse_complement(&self) -> PackedSequence {
        let mut out = PackedSequence::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.get(i).complement());
        }
        out
    }

    /// Returns a contiguous subsequence `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn subsequence(&self, start: usize, len: usize) -> PackedSequence {
        assert!(start + len <= self.len, "subsequence out of bounds");
        let mut out = PackedSequence::with_capacity(len);
        for i in start..start + len {
            out.push(self.get(i));
        }
        out
    }

    /// Converts the sequence to an ASCII byte vector.
    pub fn to_ascii(&self) -> Vec<u8> {
        self.iter().map(Base::to_ascii).collect()
    }

    /// Appends all bases of `other` to `self`.
    pub fn extend_from(&mut self, other: &PackedSequence) {
        for b in other.iter() {
            self.push(b);
        }
    }
}

impl fmt::Display for PackedSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<Base> for PackedSequence {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        PackedSequence::from_bases(iter)
    }
}

impl Extend<Base> for PackedSequence {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

/// Iterator over the bases of a [`PackedSequence`], created by
/// [`PackedSequence::iter`].
#[derive(Debug, Clone)]
pub struct Bases<'a> {
    seq: &'a PackedSequence,
    pos: usize,
}

impl Iterator for Bases<'_> {
    type Item = Base;

    fn next(&mut self) -> Option<Base> {
        if self.pos < self.seq.len() {
            let b = self.seq.get(self.pos);
            self.pos += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.seq.len() - self.pos;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Bases<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_roundtrip_codes() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
        }
    }

    #[test]
    fn base_complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn base_rejects_ambiguous_characters() {
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'-'), None);
        assert_eq!(Base::from_ascii(b'U'), None);
    }

    #[test]
    fn packed_sequence_push_and_get() {
        let mut seq = PackedSequence::new();
        let bases = [
            Base::A,
            Base::C,
            Base::G,
            Base::T,
            Base::T,
            Base::G,
            Base::C,
        ];
        for b in bases {
            seq.push(b);
        }
        assert_eq!(seq.len(), 7);
        for (i, b) in bases.iter().enumerate() {
            assert_eq!(seq.get(i), *b);
        }
        assert_eq!(seq.packed_bytes(), 2);
    }

    #[test]
    fn packed_sequence_from_ascii_roundtrip() {
        let s = b"ACGTTGCAACGT";
        let seq = PackedSequence::from_ascii(s).unwrap();
        assert_eq!(seq.to_ascii(), s.to_vec());
        assert_eq!(seq.to_string(), "ACGTTGCAACGT");
    }

    #[test]
    fn packed_sequence_rejects_invalid() {
        assert_eq!(PackedSequence::from_ascii(b"ACGNXT"), Err(3));
    }

    #[test]
    fn reverse_complement_matches_manual() {
        let seq = PackedSequence::from_ascii(b"AACGT").unwrap();
        assert_eq!(seq.reverse_complement().to_string(), "ACGTT");
    }

    #[test]
    fn reverse_complement_is_involution() {
        let seq = PackedSequence::from_ascii(b"ACGGTTACAGTAGCTAGCT").unwrap();
        assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn subsequence_extracts_window() {
        let seq = PackedSequence::from_ascii(b"ACGTACGTAC").unwrap();
        assert_eq!(seq.subsequence(2, 4).to_string(), "GTAC");
        assert_eq!(seq.subsequence(0, 0).len(), 0);
    }

    #[test]
    fn extend_and_collect() {
        let a = PackedSequence::from_ascii(b"ACG").unwrap();
        let b = PackedSequence::from_ascii(b"TTT").unwrap();
        let mut c = a.clone();
        c.extend_from(&b);
        assert_eq!(c.to_string(), "ACGTTT");
        let collected: PackedSequence = a.iter().chain(b.iter()).collect();
        assert_eq!(collected, c);
    }

    #[test]
    fn iterator_is_exact_size() {
        let seq = PackedSequence::from_ascii(b"ACGTACG").unwrap();
        let mut it = seq.iter();
        assert_eq!(it.len(), 7);
        it.next();
        assert_eq!(it.len(), 6);
    }
}
