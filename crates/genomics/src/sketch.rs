//! Sketch databases: small representative k-mer subsets per taxon.
//!
//! After intersection finding, the S-Qry flow (and MegIS's Step 2) retrieves
//! the taxIDs of intersecting k-mers by looking them up in a pre-built *sketch
//! database* — a small, representative subset of k-mers per taxon, in the
//! style of CMash/Metalign (§2.1.1, §4.3.2). Sketches contain **variable-sized
//! k-mers**: long k-mers (k = k_max) are highly specific, and shorter k-mers
//! (looked up as prefixes of the long query k-mers) recover additional matches
//! and raise the true-positive rate.
//!
//! This module provides the logical sketch content ([`SketchDatabase`]) in the
//! "flat table" representation of Fig. 7(a): one sorted table per k-mer size,
//! with explicit k-mers and taxID lists. The baselines' ternary-search-tree
//! representation (Fig. 7(b)) lives in `megis-tools`, and MegIS's K-mer Sketch
//! Streaming representation (Fig. 7(c)) lives in the `megis` core crate; both
//! are built from this logical content, which is what makes the paper's size
//! comparison (KSS ≈ 7.5× smaller than flat tables, ≈ 2.1× larger than the
//! tree) reproducible.

use std::collections::BTreeMap;

use crate::kmer::{Kmer, KmerExtractor};
use crate::reference::ReferenceCollection;
use crate::taxonomy::TaxId;

/// Configuration of sketch construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Largest (most specific) k-mer size stored in the sketch (60 in the
    /// paper's Metalign/CMash configuration).
    pub k_max: usize,
    /// Smallest k-mer size stored (prefix lookups go down to this size).
    pub k_min: usize,
    /// Step between consecutive k-mer sizes.
    pub k_step: usize,
    /// Fraction of a taxon's k-mers selected into its sketch (MinHash-style
    /// bottom-fraction selection).
    pub fraction: f64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            k_max: 45,
            k_min: 25,
            k_step: 10,
            fraction: 0.05,
        }
    }
}

impl SketchConfig {
    /// A small configuration suitable for unit tests (short genomes).
    pub fn small() -> SketchConfig {
        SketchConfig {
            k_max: 31,
            k_min: 21,
            k_step: 5,
            fraction: 0.2,
        }
    }

    /// The k-mer sizes stored in the sketch, largest first.
    pub fn k_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::new();
        let mut k = self.k_max;
        while k >= self.k_min {
            sizes.push(k);
            if k < self.k_min + self.k_step {
                break;
            }
            k -= self.k_step;
        }
        sizes
    }
}

/// Deterministic 64-bit mix used for MinHash-style sketch selection.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Hash of a k-mer used for sketch selection.
pub fn sketch_hash(kmer: Kmer) -> u64 {
    let bits = kmer.bits();
    mix64((bits as u64) ^ mix64((bits >> 64) as u64) ^ (kmer.k() as u64).wrapping_mul(0x9e37_79b9))
}

/// One sorted sketch table: kmer → sorted taxa.
type SketchTable = Vec<(Kmer, Vec<TaxId>)>;

/// The sketch database in its flat-table (Fig. 7(a)) representation.
#[derive(Debug, Clone, Default)]
pub struct SketchDatabase {
    config: Option<SketchConfig>,
    /// One sorted table per k size (largest k first).
    tables: Vec<(usize, SketchTable)>,
}

impl SketchDatabase {
    /// Builds the sketch database from a reference collection.
    ///
    /// For every taxon and every configured k size, the k-mers whose
    /// [`sketch_hash`] falls in the bottom `fraction` of the hash space are
    /// selected as that taxon's sketch.
    pub fn build(references: &ReferenceCollection, config: SketchConfig) -> SketchDatabase {
        let threshold = (config.fraction.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        let mut tables = Vec::new();
        for k in config.k_sizes() {
            let mut map: BTreeMap<Kmer, Vec<TaxId>> = BTreeMap::new();
            for genome in references.genomes() {
                if genome.len() < k {
                    continue;
                }
                for kmer in KmerExtractor::new(genome.sequence(), k) {
                    let canon = kmer.canonical();
                    if sketch_hash(canon) <= threshold {
                        let taxa = map.entry(canon).or_default();
                        if !taxa.contains(&genome.taxid()) {
                            taxa.push(genome.taxid());
                        }
                    }
                }
            }
            let table: Vec<(Kmer, Vec<TaxId>)> = map
                .into_iter()
                .map(|(kmer, mut taxa)| {
                    taxa.sort();
                    (kmer, taxa)
                })
                .collect();
            tables.push((k, table));
        }
        SketchDatabase {
            config: Some(config),
            tables,
        }
    }

    /// The configuration this database was built with, if built via
    /// [`SketchDatabase::build`].
    pub fn config(&self) -> Option<SketchConfig> {
        self.config
    }

    /// The k sizes present, largest first.
    pub fn k_sizes(&self) -> Vec<usize> {
        self.tables.iter().map(|(k, _)| *k).collect()
    }

    /// The largest k size in the database.
    pub fn k_max(&self) -> Option<usize> {
        self.tables.first().map(|(k, _)| *k)
    }

    /// The sorted table for a given k size.
    pub fn table(&self, k: usize) -> Option<&[(Kmer, Vec<TaxId>)]> {
        self.tables
            .iter()
            .find(|(tk, _)| *tk == k)
            .map(|(_, t)| t.as_slice())
    }

    /// Total number of (k-mer, taxon) associations across all tables.
    pub fn total_associations(&self) -> usize {
        self.tables
            .iter()
            .map(|(_, t)| t.iter().map(|(_, taxa)| taxa.len()).sum::<usize>())
            .sum()
    }

    /// Total number of sketch k-mers across all tables.
    pub fn total_kmers(&self) -> usize {
        self.tables.iter().map(|(_, t)| t.len()).sum()
    }

    /// Returns `true` if no sketch k-mers were selected.
    pub fn is_empty(&self) -> bool {
        self.total_kmers() == 0
    }

    /// Taxa of an exact sketch k-mer of size `kmer.k()`, if present.
    pub fn lookup_exact(&self, kmer: Kmer) -> Option<&[TaxId]> {
        let table = self.table(kmer.k())?;
        table
            .binary_search_by(|(k, _)| k.cmp(&kmer))
            .ok()
            .map(|i| table[i].1.as_slice())
    }

    /// Retrieves the taxa matched by a query k-mer of size `k_max`:
    /// the exact match plus matches of its prefixes at every smaller sketch
    /// k size (the variable-size lookup of §4.3.2). Returns a sorted,
    /// deduplicated list; empty if nothing matches.
    pub fn lookup_with_prefixes(&self, query: Kmer) -> Vec<TaxId> {
        let mut taxa = Vec::new();
        for (k, _) in &self.tables {
            if *k > query.k() {
                continue;
            }
            let prefix = query.prefix(*k);
            if let Some(t) = self.lookup_exact(prefix) {
                taxa.extend_from_slice(t);
            }
        }
        taxa.sort();
        taxa.dedup();
        taxa
    }

    /// Size of the flat-table representation in bytes (Fig. 7(a)): every
    /// k-mer stored explicitly in 2-bit encoding plus 4 bytes per taxID
    /// association. This is the baseline KSS is compared against.
    pub fn flat_table_bytes(&self) -> u64 {
        self.tables
            .iter()
            .map(|(_, t)| {
                t.iter()
                    .map(|(kmer, taxa)| (kmer.encoded_bytes() + 4 * taxa.len()) as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Number of sketch k-mers (across all k sizes) associated with a taxon —
    /// the denominator of the containment index used for presence calling.
    pub fn sketch_size_of(&self, taxid: TaxId) -> usize {
        self.tables
            .iter()
            .map(|(_, t)| t.iter().filter(|(_, taxa)| taxa.contains(&taxid)).count())
            .sum()
    }

    /// Calls presence from per-taxon sketch-match support counts using a
    /// containment-index threshold: a taxon is reported present when at least
    /// `min_containment` of its sketch k-mers were matched (and at least
    /// `min_support` matches were seen).
    ///
    /// Both the S-Qry baseline (ternary-tree retrieval) and MegIS (KSS
    /// retrieval) produce the same support counts for the same sample, so
    /// sharing this final step is what makes their accuracy identical — the
    /// property the paper relies on (§5, "MegIS's end-to-end accuracy matches
    /// the accuracy of A-Opt").
    pub fn presence_from_support(
        &self,
        support: &std::collections::HashMap<TaxId, u32>,
        min_containment: f64,
        min_support: u32,
    ) -> crate::profile::PresenceResult {
        crate::profile::PresenceResult::from_taxa(support.iter().filter_map(|(taxid, count)| {
            let sketch_size = self.sketch_size_of(*taxid);
            if sketch_size == 0 {
                return None;
            }
            let containment = *count as f64 / sketch_size as f64;
            (containment >= min_containment && *count >= min_support).then_some(*taxid)
        }))
    }

    /// All taxa that appear anywhere in the sketch database.
    pub fn taxa(&self) -> Vec<TaxId> {
        let mut taxa: Vec<TaxId> = self
            .tables
            .iter()
            .flat_map(|(_, t)| t.iter().flat_map(|(_, taxa)| taxa.iter().copied()))
            .collect();
        taxa.sort();
        taxa.dedup();
        taxa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs() -> ReferenceCollection {
        ReferenceCollection::synthetic(8, 800, 3)
    }

    #[test]
    fn k_sizes_descend_from_kmax() {
        let cfg = SketchConfig {
            k_max: 45,
            k_min: 25,
            k_step: 10,
            fraction: 0.1,
        };
        assert_eq!(cfg.k_sizes(), vec![45, 35, 25]);
    }

    #[test]
    fn sketch_selects_a_fraction() {
        let r = refs();
        let db = SketchDatabase::build(&r, SketchConfig::small());
        assert!(!db.is_empty());
        // The sketch must be far smaller than the full k-mer content.
        let full_kmers: usize = r
            .genomes()
            .iter()
            .map(|g| g.len().saturating_sub(31 - 1))
            .sum();
        assert!(db.total_kmers() < full_kmers / 2);
    }

    #[test]
    fn every_taxon_is_represented() {
        let r = refs();
        let db = SketchDatabase::build(&r, SketchConfig::small());
        let sketch_taxa = db.taxa();
        for taxid in r.species() {
            assert!(
                sketch_taxa.contains(&taxid),
                "taxon {taxid} has no sketch k-mers"
            );
        }
    }

    #[test]
    fn exact_lookup_finds_selected_kmers() {
        let r = refs();
        let db = SketchDatabase::build(&r, SketchConfig::small());
        let (k, table) = (&db.tables[0].0, &db.tables[0].1);
        let (kmer, taxa) = &table[table.len() / 2];
        assert_eq!(kmer.k(), *k);
        assert_eq!(db.lookup_exact(*kmer), Some(taxa.as_slice()));
    }

    #[test]
    fn prefix_lookup_unions_smaller_k_matches() {
        let r = refs();
        let db = SketchDatabase::build(&r, SketchConfig::small());
        // Take a genome k_max-mer that is in the sketch, look it up with
        // prefixes, and check the exact-match taxa are included.
        let kmax = db.k_max().unwrap();
        let table = db.table(kmax).unwrap();
        let (kmer, taxa) = &table[0];
        let with_prefixes = db.lookup_with_prefixes(*kmer);
        for t in taxa {
            assert!(with_prefixes.contains(t));
        }
    }

    #[test]
    fn flat_table_bytes_counts_all_entries() {
        let db = SketchDatabase::build(&refs(), SketchConfig::small());
        let bytes = db.flat_table_bytes();
        assert!(bytes as usize >= db.total_kmers() * 6);
    }

    #[test]
    fn sketch_hash_is_deterministic_and_spread() {
        let a = Kmer::from_ascii(b"ACGTACGTACGTACGTACGTA").unwrap();
        let b = Kmer::from_ascii(b"ACGTACGTACGTACGTACGTC").unwrap();
        assert_eq!(sketch_hash(a), sketch_hash(a));
        assert_ne!(sketch_hash(a), sketch_hash(b));
    }
}
