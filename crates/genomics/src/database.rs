//! k-mer databases and reference indexes, in a columnar (CSR) layout.
//!
//! The streaming-access (S-Qry) analysis flow that MegIS builds on keeps its
//! database as a *lexicographically sorted* list of k-mers, each associated
//! with the taxa whose reference genomes contain it (§2.1.1, §4.2). MegIS
//! stores this database sequentially across SSD channels and streams through
//! it once per sample, intersecting it with the (also sorted) query k-mers.
//!
//! # Columnar storage and zero-copy views
//!
//! The host-side reproduction mirrors that flat on-flash layout in memory.
//! [`DatabaseStorage`] holds three dense arrays in CSR
//! (compressed-sparse-row) form:
//!
//! * `kmers` — the sorted k-mer column,
//! * `taxa_offsets` — one `u32` boundary per k-mer (plus a trailing
//!   sentinel), indexing into
//! * `taxa` — every k-mer→taxon association, concatenated in k-mer order.
//!
//! Entry `i`'s taxa are `taxa[taxa_offsets[i]..taxa_offsets[i + 1]]`, so the
//! whole database is three allocations instead of one heap-allocated
//! `Vec<TaxId>` per entry — the innermost intersection loop walks a plain
//! `&[Kmer]` exactly like MegIS's per-channel Intersect units walk the flash
//! stream (§4.3.1).
//!
//! A [`SortedKmerDatabase`] is a *view*: an [`Arc`]-shared handle on one
//! [`DatabaseStorage`] plus a contiguous entry range. Cloning a database or
//! [partitioning](SortedKmerDatabase::partition) it across simulated SSDs
//! produces more views over the *same* storage — an N-shard deployment holds
//! one copy of the database, not two. Borrowed entries are exposed as
//! [`KmerEntryRef`] (a k-mer plus a `&[TaxId]` slice); the owned
//! [`KmerEntry`] remains as builder input for
//! [`SortedKmerDatabase::from_sorted_entries`].
//!
//! # Intersection
//!
//! [`SortedKmerDatabase::intersect_sorted`] runs a galloping
//! (exponential-search) merge that advances on whichever stream is behind —
//! in the realistic regime one shard's database slice is far longer than the
//! query slice that overlaps it, so the merge skips database runs in
//! `O(log gap)` instead of touching every element. The element-at-a-time
//! two-pointer merge is kept as
//! [`SortedKmerDatabase::intersect_sorted_two_pointer`], the reference
//! oracle for the property tests and the baseline the `hotpath` bench
//! experiment measures against.
//!
//! For read-mapping-based abundance estimation, each species additionally has
//! a [`ReferenceIndex`] mapping k-mers to their genome locations; MegIS's Step
//! 3 merges the indexes of the candidate species into a
//! [`UnifiedReferenceIndex`] inside the SSD (Fig. 9 of the paper). The merge
//! is *partitionable*: a contiguous range of the candidate list can be merged
//! into a [`PartialUnifiedIndex`] on one device (given the range's base
//! offset in the concatenated reference space), and
//! [`UnifiedReferenceIndex::merge_partials`] recombines per-device partials
//! into an index byte-identical to merging every candidate in one pass —
//! what lets Step 3's index generation and read mapping shard across the
//! same device array that serves Step 2.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

use crate::kmer::{Kmer, KmerExtractor};
use crate::reference::{ReferenceCollection, ReferenceGenome};
use crate::taxonomy::TaxId;

/// One owned entry of a sorted k-mer database: a k-mer and the taxa it
/// occurs in. Used as builder input
/// ([`SortedKmerDatabase::from_sorted_entries`]) and for detached copies
/// ([`KmerEntryRef::to_owned`]); the database itself stores entries
/// columnarly, not as a `Vec<KmerEntry>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmerEntry {
    /// The indexed k-mer.
    pub kmer: Kmer,
    /// Sorted, deduplicated taxa whose genomes contain the k-mer.
    pub taxa: Vec<TaxId>,
}

/// A borrowed view of one database entry: the k-mer plus its taxa slice
/// inside the shared columnar storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmerEntryRef<'a> {
    /// The indexed k-mer.
    pub kmer: Kmer,
    /// Sorted, deduplicated taxa whose genomes contain the k-mer.
    pub taxa: &'a [TaxId],
}

impl KmerEntryRef<'_> {
    /// Detaches the entry from the storage it borrows.
    pub fn to_owned(&self) -> KmerEntry {
        KmerEntry {
            kmer: self.kmer,
            taxa: self.taxa.to_vec(),
        }
    }
}

/// The shared columnar (CSR) backing store of a [`SortedKmerDatabase`].
///
/// Three dense arrays: the sorted k-mer column, the per-entry taxa
/// boundaries, and the concatenated taxa column. All views produced by
/// [`SortedKmerDatabase::partition`] / [`SortedKmerDatabase::view`] share
/// one `Arc<DatabaseStorage>`; [`DatabaseStorage::heap_bytes`] is the
/// resident cost that sharing amortizes.
#[derive(Debug)]
pub struct DatabaseStorage {
    kmers: Vec<Kmer>,
    /// `kmers.len() + 1` boundaries; entry `i`'s taxa span
    /// `taxa[taxa_offsets[i] as usize..taxa_offsets[i + 1] as usize]`.
    taxa_offsets: Vec<u32>,
    taxa: Vec<TaxId>,
}

impl Default for DatabaseStorage {
    fn default() -> DatabaseStorage {
        DatabaseStorage {
            kmers: Vec::new(),
            taxa_offsets: vec![0],
            taxa: Vec::new(),
        }
    }
}

impl DatabaseStorage {
    /// Builds the CSR arrays from sorted, deduplicated `(kmer, taxid)`
    /// association pairs (grouped by k-mer; taxa of one k-mer already
    /// sorted).
    fn from_grouped_pairs(pairs: Vec<(Kmer, TaxId)>) -> DatabaseStorage {
        assert!(
            pairs.len() < u32::MAX as usize,
            "taxa column exceeds u32 offsets"
        );
        let mut kmers: Vec<Kmer> = Vec::new();
        let mut taxa_offsets: Vec<u32> = vec![0];
        let mut taxa: Vec<TaxId> = Vec::with_capacity(pairs.len());
        for (kmer, taxid) in pairs {
            if kmers.last() != Some(&kmer) {
                if !kmers.is_empty() {
                    taxa_offsets.push(taxa.len() as u32);
                }
                kmers.push(kmer);
            }
            taxa.push(taxid);
        }
        if !kmers.is_empty() {
            taxa_offsets.push(taxa.len() as u32);
        }
        // The distinct-k-mer count is unknown up front, so `kmers` and
        // `taxa_offsets` grew by doubling; release the slack before the
        // storage is pinned behind a long-lived `Arc` ([`heap_bytes`]
        // charges capacity, so an overhang would show up in the resident
        // accounting).
        kmers.shrink_to_fit();
        taxa_offsets.shrink_to_fit();
        DatabaseStorage {
            kmers,
            taxa_offsets,
            taxa,
        }
    }

    /// Number of entries (distinct k-mers) in the storage.
    pub fn entry_count(&self) -> usize {
        self.kmers.len()
    }

    /// Total number of k-mer→taxon associations.
    pub fn association_count(&self) -> usize {
        self.taxa.len()
    }

    /// Host-resident heap footprint of the three columnar arrays, in bytes.
    /// This is the quantity [`SortedKmerDatabase::partition`] shares rather
    /// than copies. Charged on *capacity*, not length, so growth slack
    /// (were any to survive construction) cannot hide from the resident
    /// accounting the `hotpath` bench asserts on.
    pub fn heap_bytes(&self) -> u64 {
        (self.kmers.capacity() * std::mem::size_of::<Kmer>()
            + self.taxa_offsets.capacity() * std::mem::size_of::<u32>()
            + self.taxa.capacity() * std::mem::size_of::<TaxId>()) as u64
    }

    /// Taxa slice of global entry `index`.
    #[inline]
    fn entry_taxa(&self, index: usize) -> &[TaxId] {
        let start = self.taxa_offsets[index] as usize;
        let end = self.taxa_offsets[index + 1] as usize;
        &self.taxa[start..end]
    }
}

/// A lexicographically sorted k-mer database (the S-Qry / MegIS database):
/// a zero-copy range view over [`Arc`]-shared columnar storage.
///
/// # Example
///
/// ```
/// use megis_genomics::reference::ReferenceCollection;
/// use megis_genomics::database::SortedKmerDatabase;
///
/// let refs = ReferenceCollection::synthetic(4, 400, 1);
/// let db = SortedKmerDatabase::build(&refs, 21);
/// assert!(db.len() > 0);
/// assert!(db.is_sorted());
/// ```
#[derive(Debug, Clone)]
pub struct SortedKmerDatabase {
    k: usize,
    storage: Arc<DatabaseStorage>,
    /// Global entry range of this view within `storage`.
    range: Range<usize>,
}

impl Default for SortedKmerDatabase {
    fn default() -> SortedKmerDatabase {
        SortedKmerDatabase {
            k: 0,
            storage: Arc::new(DatabaseStorage::default()),
            range: 0..0,
        }
    }
}

impl SortedKmerDatabase {
    /// Builds the database from a reference collection using k-mers of length
    /// `k` (canonical form).
    ///
    /// The build is flat end to end: collect every `(canonical k-mer, taxid)`
    /// association, `sort_unstable` + `dedup` the pair list, and run-length
    /// group it into the CSR columns — no per-entry map nodes, no `O(t)`
    /// membership scans per occurrence.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`crate::kmer::MAX_K`].
    pub fn build(references: &ReferenceCollection, k: usize) -> SortedKmerDatabase {
        let mut pairs: Vec<(Kmer, TaxId)> = Vec::new();
        for genome in references.genomes() {
            let taxid = genome.taxid();
            for kmer in KmerExtractor::new(genome.sequence(), k) {
                pairs.push((kmer.canonical(), taxid));
            }
        }
        // Sorting by (kmer, taxid) and deduplicating yields, per k-mer, its
        // sorted deduplicated taxa — the same grouping the old per-entry
        // `BTreeMap` + `contains` path produced, without either.
        pairs.sort_unstable();
        pairs.dedup();
        let storage = DatabaseStorage::from_grouped_pairs(pairs);
        let range = 0..storage.entry_count();
        SortedKmerDatabase {
            k,
            storage: Arc::new(storage),
            range,
        }
    }

    /// Creates a database from pre-sorted entries.
    ///
    /// # Panics
    ///
    /// Panics if entries are not strictly sorted by k-mer.
    pub fn from_sorted_entries(k: usize, entries: Vec<KmerEntry>) -> SortedKmerDatabase {
        for w in entries.windows(2) {
            assert!(w[0].kmer < w[1].kmer, "entries must be strictly sorted");
        }
        let associations: usize = entries.iter().map(|e| e.taxa.len()).sum();
        assert!(
            associations < u32::MAX as usize,
            "taxa column exceeds u32 offsets"
        );
        let mut kmers = Vec::with_capacity(entries.len());
        let mut taxa_offsets = Vec::with_capacity(entries.len() + 1);
        taxa_offsets.push(0u32);
        let mut taxa = Vec::with_capacity(associations);
        for entry in entries {
            kmers.push(entry.kmer);
            taxa.extend(entry.taxa);
            taxa_offsets.push(taxa.len() as u32);
        }
        let storage = DatabaseStorage {
            kmers,
            taxa_offsets,
            taxa,
        };
        let range = 0..storage.entry_count();
        SortedKmerDatabase {
            k,
            storage: Arc::new(storage),
            range,
        }
    }

    /// The k-mer length of this database.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers in this view.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Returns `true` if the view has no entries.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The shared columnar storage this view borrows from. Views produced by
    /// [`SortedKmerDatabase::partition`] and [`SortedKmerDatabase::view`]
    /// return the *same* `Arc`, which is what makes sharding zero-copy.
    pub fn storage(&self) -> &Arc<DatabaseStorage> {
        &self.storage
    }

    /// Returns `true` if `other` is a view over the same storage allocation
    /// (no matter which entry range each covers).
    pub fn shares_storage_with(&self, other: &SortedKmerDatabase) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }

    /// Borrowed view of entry `index` (relative to this view).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn entry(&self, index: usize) -> KmerEntryRef<'_> {
        assert!(index < self.len(), "entry index {index} out of range");
        let global = self.range.start + index;
        KmerEntryRef {
            kmer: self.storage.kmers[global],
            taxa: self.storage.entry_taxa(global),
        }
    }

    /// Iterates over the sorted entries as borrowed views.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = KmerEntryRef<'_>> + '_ {
        (0..self.len()).map(move |i| self.entry(i))
    }

    /// The sorted k-mer column of this view, as a contiguous slice — the
    /// stream the intersection units walk.
    pub fn kmer_slice(&self) -> &[Kmer] {
        &self.storage.kmers[self.range.clone()]
    }

    /// The concatenated taxa column of this view (CSR payload), as a
    /// contiguous slice.
    fn taxa_slice(&self) -> &[TaxId] {
        let start = self.storage.taxa_offsets[self.range.start] as usize;
        let end = self.storage.taxa_offsets[self.range.end] as usize;
        &self.storage.taxa[start..end]
    }

    /// Iterates over the sorted k-mers.
    pub fn kmers(&self) -> impl Iterator<Item = Kmer> + '_ {
        self.kmer_slice().iter().copied()
    }

    /// Returns `true` if the entries are strictly sorted (always true for
    /// databases built by this crate; exposed for tests and debug checks).
    pub fn is_sorted(&self) -> bool {
        self.kmer_slice().windows(2).all(|w| w[0] < w[1])
    }

    /// The smallest indexed k-mer (the view's lower key bound), if any.
    pub fn first_kmer(&self) -> Option<Kmer> {
        self.kmer_slice().first().copied()
    }

    /// The largest indexed k-mer (the view's upper key bound), if any.
    pub fn last_kmer(&self) -> Option<Kmer> {
        self.kmer_slice().last().copied()
    }

    /// The sub-range of a sorted query list that can possibly intersect this
    /// database: queries below [`SortedKmerDatabase::first_kmer`] or above
    /// [`SortedKmerDatabase::last_kmer`] cannot match any entry, so a caller
    /// holding a disjoint key-range partition (one contiguous slice of a
    /// larger sorted database per device) only needs to ship this sub-slice
    /// to the device — the binary search that makes per-device query-side
    /// work proportional to the overlapping slice instead of the whole list.
    ///
    /// `intersect_sorted(&queries[range])` equals
    /// `intersect_sorted(queries)` for the returned `range` (asserted by the
    /// unit tests).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `sorted_queries` is not sorted.
    pub fn overlapping_query_range(&self, sorted_queries: &[Kmer]) -> Range<usize> {
        debug_assert!(sorted_queries.windows(2).all(|w| w[0] <= w[1]));
        let (Some(lo), Some(hi)) = (self.first_kmer(), self.last_kmer()) else {
            return 0..0;
        };
        let start = sorted_queries.partition_point(|q| *q < lo);
        let end = start + sorted_queries[start..].partition_point(|q| *q <= hi);
        start..end
    }

    /// Looks up a single k-mer (binary search).
    pub fn lookup(&self, kmer: Kmer) -> Option<KmerEntryRef<'_>> {
        self.kmer_slice()
            .binary_search(&kmer)
            .ok()
            .map(|i| self.entry(i))
    }

    /// All taxa indexed by this view, sorted and deduplicated.
    pub fn taxa(&self) -> Vec<TaxId> {
        let mut taxa: Vec<TaxId> = self.taxa_slice().to_vec();
        taxa.sort();
        taxa.dedup();
        taxa
    }

    /// Streaming intersection with a sorted list of query k-mers, via a
    /// galloping (exponential-search) merge.
    ///
    /// Both inputs are consumed as sorted streams, but instead of comparing
    /// element by element the merge *gallops* on whichever side is behind:
    /// exponential probing (1, 2, 4, … steps) brackets the first element
    /// `>=` the other stream's head, then a binary search pins it. Skipping
    /// a run of `g` elements costs `O(log g)` comparisons, so in the
    /// realistic regime — a database slice far longer than the query slice
    /// overlapping it — the merge is bounded by `O(|Q| · log(|DB| / |Q|))`
    /// rather than `O(|DB| + |Q|)`. Returns the intersecting k-mers in
    /// sorted order, byte-identical to
    /// [`SortedKmerDatabase::intersect_sorted_two_pointer`] (the property
    /// suite asserts the equivalence).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `sorted_queries` is not sorted.
    pub fn intersect_sorted(&self, sorted_queries: &[Kmer]) -> Vec<Kmer> {
        debug_assert!(sorted_queries.windows(2).all(|w| w[0] <= w[1]));
        let db = self.kmer_slice();
        let mut out = Vec::new();
        let mut qi = 0;
        let mut di = 0;
        // Hints: the previous advance distance on each side. Skip distances
        // are locally similar (a query stream hitting every ~g-th database
        // entry produces gaps around g), so probing the hinted offset first
        // usually resolves the boundary in two adjacent comparisons instead
        // of a full exponential-plus-binary chain of cache misses.
        let mut db_hint = 1usize;
        let mut query_hint = 1usize;
        while qi < sorted_queries.len() && di < db.len() {
            let q = sorted_queries[qi];
            let d = db[di];
            match q.cmp(&d) {
                std::cmp::Ordering::Equal => {
                    if out.last() != Some(&q) {
                        out.push(q);
                    }
                    qi += 1;
                }
                std::cmp::Ordering::Less => {
                    let advance = gallop(&sorted_queries[qi..], d, query_hint);
                    query_hint = advance;
                    qi += advance;
                }
                std::cmp::Ordering::Greater => {
                    let advance = gallop(&db[di..], q, db_hint);
                    db_hint = advance;
                    di += advance;
                }
            }
        }
        out
    }

    /// One galloping sweep over this database serving several sorted query
    /// lists at once — the coalesced form of
    /// [`SortedKmerDatabase::intersect_sorted`].
    ///
    /// The member lists are consumed through a k-way merged query cursor:
    /// each iteration picks the smallest current query value across all
    /// members, gallops the database column to it **once** (carrying the
    /// same advance-distance hint as the single-sample merge), and then
    /// demultiplexes the hit to every member whose cursor sits on that
    /// value. The database column is therefore walked a single time no
    /// matter how many members share the sweep, which is what amortizes one
    /// CSR range scan over N co-resident samples.
    ///
    /// Returns one hit list per member, in member order; each list is
    /// byte-identical to `self.intersect_sorted(member)` run independently
    /// (the seeded property suite asserts the equivalence for random member
    /// counts and duplicate/disjoint/subset/empty slices).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any member slice is not sorted.
    pub fn intersect_sorted_multi(&self, members: &[&[Kmer]]) -> Vec<Vec<Kmer>> {
        for m in members {
            debug_assert!(m.windows(2).all(|w| w[0] <= w[1]));
        }
        let db = self.kmer_slice();
        let mut outs: Vec<Vec<Kmer>> = members.iter().map(|_| Vec::new()).collect();
        let mut cursors = vec![0usize; members.len()];
        let mut di = 0usize;
        let mut db_hint = 1usize;
        while di < db.len() {
            // The merged cursor's head: the smallest un-consumed query value
            // across all members (a linear scan — member counts are small,
            // bounded by the dispatcher's batching cap).
            let mut head: Option<Kmer> = None;
            for (c, m) in cursors.iter().zip(members) {
                if let Some(v) = m.get(*c) {
                    head = Some(match head {
                        Some(h) if h <= *v => h,
                        _ => *v,
                    });
                }
            }
            let Some(q) = head else { break };
            // One hinted gallop positions the shared database cursor at the
            // first entry >= q — the only database walk this value pays.
            if db[di] < q {
                let advance = gallop(&db[di..], q, db_hint);
                db_hint = advance;
                di += advance;
            }
            let present = di < db.len() && db[di] == q;
            // Demultiplex: every member sitting on q consumes it (and any
            // duplicates) and records the hit if the database holds it.
            for ((c, m), out) in cursors.iter_mut().zip(members).zip(&mut outs) {
                if m.get(*c) == Some(&q) {
                    while m.get(*c) == Some(&q) {
                        *c += 1;
                    }
                    if present {
                        out.push(q);
                    }
                }
            }
        }
        outs
    }

    /// The element-at-a-time two-pointer merge — exactly the access pattern
    /// MegIS's per-channel Intersect units perform on data arriving from the
    /// flash channels and the internal DRAM (§4.3.1). Kept as the reference
    /// oracle for [`SortedKmerDatabase::intersect_sorted`] in the property
    /// tests, and as the baseline the `hotpath` bench experiment measures
    /// the galloping merge against.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `sorted_queries` is not sorted.
    pub fn intersect_sorted_two_pointer(&self, sorted_queries: &[Kmer]) -> Vec<Kmer> {
        debug_assert!(sorted_queries.windows(2).all(|w| w[0] <= w[1]));
        let db = self.kmer_slice();
        let mut out = Vec::new();
        let mut qi = 0;
        let mut di = 0;
        while qi < sorted_queries.len() && di < db.len() {
            let q = sorted_queries[qi];
            let d = db[di];
            match q.cmp(&d) {
                std::cmp::Ordering::Equal => {
                    if out.last() != Some(&q) {
                        out.push(q);
                    }
                    qi += 1;
                }
                std::cmp::Ordering::Less => qi += 1,
                std::cmp::Ordering::Greater => di += 1,
            }
        }
        out
    }

    /// Size of the database in its 2-bit on-storage encoding, in bytes
    /// (k-mer payloads plus one 4-byte taxid per association). Used by the
    /// SSD placement and timing models.
    pub fn encoded_bytes(&self) -> u64 {
        let kmer_bytes: u64 = self
            .kmer_slice()
            .iter()
            .map(|k| k.encoded_bytes() as u64)
            .sum();
        kmer_bytes + 4 * self.taxa_slice().len() as u64
    }

    /// A zero-copy sub-view of this view (indices relative to `self`): the
    /// returned database shares the same storage `Arc`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn view(&self, sub: Range<usize>) -> SortedKmerDatabase {
        assert!(
            sub.start <= sub.end && sub.end <= self.len(),
            "view range {sub:?} out of bounds for {} entries",
            self.len()
        );
        SortedKmerDatabase {
            k: self.k,
            storage: Arc::clone(&self.storage),
            range: self.range.start + sub.start..self.range.start + sub.end,
        }
    }

    /// Splits the database into `parts` contiguous sorted shards of
    /// near-equal entry counts (used to distribute a database disjointly
    /// across multiple SSDs, §6.1 "Effect of the Number of SSDs").
    ///
    /// Every shard is a zero-copy [view](SortedKmerDatabase::view) over this
    /// database's shared storage: partitioning allocates nothing beyond the
    /// view handles, so N shards hold one copy of the columns, not N (and
    /// not even two). Trailing padding shards (when `parts > len`) are empty
    /// views over the same storage.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn partition(&self, parts: usize) -> Vec<SortedKmerDatabase> {
        assert!(parts > 0, "parts must be positive");
        let per = self.len().div_ceil(parts).max(1);
        let mut shards = Vec::with_capacity(parts);
        let mut start = 0;
        while start < self.len() {
            let end = (start + per).min(self.len());
            shards.push(self.view(start..end));
            start = end;
        }
        while shards.len() < parts {
            shards.push(self.view(self.len()..self.len()));
        }
        shards
    }
}

/// First index in `slice` whose element is `>= target`, found by galloping
/// around a caller-provided `hint` (typically the previous advance
/// distance, TimSort-style). The hinted offset is probed first; depending
/// on the outcome the boundary is bracketed by exponential probing forward
/// from the hint or backward toward it, then pinned by a binary search
/// inside the bracket. `O(log d)` comparisons for a returned distance `d`
/// (and only ~2 adjacent probes when the hint is exact); the result is a
/// pure function of `(slice, target)` — the hint changes the probe path,
/// never the answer.
fn gallop(slice: &[Kmer], target: Kmer, hint: usize) -> usize {
    match slice.first() {
        Some(first) if *first < target => {}
        _ => return 0,
    }
    let n = slice.len();
    let h = hint.clamp(1, n);
    if h < n && slice[h] < target {
        // Boundary beyond the hint: exponential probing forward from it.
        // Invariant: slice[lo] < target.
        let mut lo = h;
        let mut step = 1usize;
        while lo + step < n && slice[lo + step] < target {
            lo += step;
            step <<= 1;
        }
        // The boundary lies in (lo, min(lo + step, n)].
        pin_boundary(slice, target, lo, (lo + step).min(n))
    } else {
        // Boundary within (0, h]: exponential probing backward from the
        // hint. Invariant: slice[hi] >= target (or hi == n).
        let mut hi = h;
        let mut step = 1usize;
        while step < hi && slice[hi - step] >= target {
            hi -= step;
            step <<= 1;
        }
        // slice[lo] < target: the probed element when one exists, else the
        // front (which the caller's guard established is < target).
        let lo = hi.saturating_sub(step);
        pin_boundary(slice, target, lo, hi)
    }
}

/// Width below which the boundary search finishes with a forward scan: a
/// few cache lines of k-mers — sequential touches the prefetcher covers,
/// cheaper than the same span's worth of dependent binary probes.
const LINEAR_TAIL: usize = 16;

/// Pins the boundary (first index `>= target`) inside the bracket
/// `(lo, hi]`, where `slice[lo] < target` and `slice[hi] >= target` (or
/// `hi == n`): binary steps while the bracket is wide, one sequential scan
/// once it is narrow. The scan trades a few predictable comparisons for the
/// tail of the binary search's serially dependent cache misses.
fn pin_boundary(slice: &[Kmer], target: Kmer, mut lo: usize, mut hi: usize) -> usize {
    while hi - lo > LINEAR_TAIL {
        let mid = lo + (hi - lo) / 2;
        if slice[mid] < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    while lo + 1 < hi && slice[lo + 1] < target {
        lo += 1;
    }
    lo + 1
}

thread_local! {
    /// Count of [`ReferenceIndex::build`] calls on the current thread; see
    /// [`ReferenceIndex::builds_on_this_thread`].
    static REFERENCE_INDEX_BUILDS: Cell<u64> = const { Cell::new(0) };
}

/// A per-species read-mapping index: k-mer → sorted genome locations.
#[derive(Debug, Clone, Default)]
pub struct ReferenceIndex {
    taxid: TaxId,
    k: usize,
    genome_len: usize,
    entries: Vec<(Kmer, Vec<u32>)>,
}

impl ReferenceIndex {
    /// Builds the index of one reference genome with seeds of length `k`.
    pub fn build(genome: &ReferenceGenome, k: usize) -> ReferenceIndex {
        REFERENCE_INDEX_BUILDS.with(|c| c.set(c.get() + 1));
        let mut map: BTreeMap<Kmer, Vec<u32>> = BTreeMap::new();
        for (pos, kmer) in KmerExtractor::new(genome.sequence(), k).enumerate() {
            map.entry(kmer.canonical()).or_default().push(pos as u32);
        }
        ReferenceIndex {
            taxid: genome.taxid(),
            k,
            genome_len: genome.len(),
            entries: map.into_iter().collect(),
        }
    }

    /// Number of [`ReferenceIndex::build`] calls the *current thread* has
    /// performed over its lifetime. Index construction is one-time offline
    /// work (§4.4): analyzers build their per-species indexes once and
    /// borrow them per sample, and regression tests use this counter to
    /// assert no per-sample rebuild sneaks back in. Thread-local (rather
    /// than process-global) so concurrently running tests cannot perturb
    /// each other's counts.
    pub fn builds_on_this_thread() -> u64 {
        REFERENCE_INDEX_BUILDS.with(Cell::get)
    }

    /// The species this index belongs to.
    pub fn taxid(&self) -> TaxId {
        self.taxid
    }

    /// The seed length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Length of the indexed genome in bases.
    pub fn genome_len(&self) -> usize {
        self.genome_len
    }

    /// Number of distinct seeds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the index has no seeds.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted `(kmer, locations)` entries.
    pub fn entries(&self) -> &[(Kmer, Vec<u32>)] {
        &self.entries
    }

    /// Locations of a seed, if indexed.
    pub fn locations(&self, kmer: Kmer) -> Option<&[u32]> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&kmer))
            .ok()
            .map(|i| self.entries[i].1.as_slice())
    }

    /// On-storage size in bytes (2-bit k-mers + 4-byte locations).
    pub fn encoded_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(k, locs)| (k.encoded_bytes() + 4 * locs.len()) as u64)
            .sum()
    }
}

/// A location in the unified index: which species and what offset-adjusted
/// position the seed occurs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnifiedLocation {
    /// The species the location belongs to.
    pub taxid: TaxId,
    /// Position within the concatenated (offset-adjusted) reference space.
    pub position: u64,
}

/// Minimum seed votes for a read to be considered mapped by
/// [`UnifiedReferenceIndex::map_read`]. Shared with the partitioned Step 3
/// reduce step, which applies the same threshold after resolving per-device
/// best hits.
pub const MIN_MAPPING_VOTES: u32 = 2;

/// The best-supported candidate for one read, *before* the
/// [`MIN_MAPPING_VOTES`] threshold: what a per-device mapper reports so a
/// reduce step can resolve reads that hit candidates on several devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadMapHit {
    /// The candidate with the most seed votes (ties go to the smallest
    /// taxid).
    pub taxid: TaxId,
    /// Number of supporting seed votes.
    pub votes: u32,
}

/// A unified read-mapping index over several candidate species.
///
/// MegIS generates this inside the SSD by sequentially merging the per-species
/// indexes of the candidate species found in Step 2, adjusting locations by
/// per-species offsets (Fig. 9). A single unified index avoids searching each
/// per-species index separately during read mapping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UnifiedReferenceIndex {
    k: usize,
    entries: Vec<(Kmer, Vec<UnifiedLocation>)>,
    offsets: Vec<(TaxId, u64)>,
}

impl UnifiedReferenceIndex {
    /// Merges per-species indexes into a unified index.
    ///
    /// The merge walks all input indexes as sorted streams — the same
    /// sequential access pattern MegIS's in-SSD index generation uses.
    /// Implemented as the one-partition case of the partitioned merge
    /// ([`PartialUnifiedIndex::merge_range`] at base offset 0 followed by
    /// [`UnifiedReferenceIndex::merge_partials`]), so the sequential and
    /// sharded paths cannot drift apart.
    ///
    /// # Panics
    ///
    /// Panics if the indexes do not all share the same `k`.
    pub fn merge(indexes: &[ReferenceIndex]) -> UnifiedReferenceIndex {
        let refs: Vec<&ReferenceIndex> = indexes.iter().collect();
        UnifiedReferenceIndex::merge_partials(vec![PartialUnifiedIndex::merge_range(&refs, 0)])
    }

    /// Recombines per-device partial indexes — built by
    /// [`PartialUnifiedIndex::merge_range`] over *consecutive* ranges of one
    /// candidate list, each at its range's base offset — into the unified
    /// index, byte-identical to [`UnifiedReferenceIndex::merge`] over the
    /// whole list. Partials covering an empty range contribute nothing and
    /// may appear anywhere in the sequence.
    ///
    /// Per-species offsets concatenate in partial order, and for a seed
    /// indexed by several partials the location lists concatenate in partial
    /// (= candidate) order, which is exactly the order the one-pass merge
    /// produces.
    ///
    /// # Panics
    ///
    /// Panics if the non-empty partials do not all share the same seed
    /// length. Debug builds additionally check that consecutive partials'
    /// base offsets abut (each base equals the previous base plus its span).
    pub fn merge_partials(partials: Vec<PartialUnifiedIndex>) -> UnifiedReferenceIndex {
        let k = partials
            .iter()
            .find(|p| !p.index.offsets.is_empty())
            .map(|p| p.index.k)
            .unwrap_or(0);
        assert!(
            partials
                .iter()
                .filter(|p| !p.index.offsets.is_empty())
                .all(|p| p.index.k == k),
            "all partial indexes must share the same seed length"
        );
        #[cfg(debug_assertions)]
        for w in partials.windows(2) {
            debug_assert_eq!(
                w[1].base,
                w[0].base + w[0].span,
                "partials must cover consecutive candidate ranges"
            );
        }
        let mut offsets = Vec::new();
        let mut pieces: Vec<(Kmer, usize, Vec<UnifiedLocation>)> = Vec::new();
        for (pi, partial) in partials.into_iter().enumerate() {
            offsets.extend(partial.index.offsets);
            for (kmer, locs) in partial.index.entries {
                pieces.push((kmer, pi, locs));
            }
        }
        // Partial indexes are each kmer-sorted; sorting the concatenation by
        // (kmer, partial) and run-length grouping restores the global sorted
        // entry list with location lists concatenated in candidate order.
        pieces.sort_unstable_by_key(|(kmer, pi, _)| (*kmer, *pi));
        let mut entries: Vec<(Kmer, Vec<UnifiedLocation>)> = Vec::new();
        for (kmer, _, locs) in pieces {
            match entries.last_mut() {
                Some((last, acc)) if *last == kmer => acc.extend(locs),
                _ => entries.push((kmer, locs)),
            }
        }
        UnifiedReferenceIndex {
            k,
            entries,
            offsets,
        }
    }

    /// The seed length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct seeds in the unified index.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Per-species offsets in the concatenated reference space.
    pub fn offsets(&self) -> &[(TaxId, u64)] {
        &self.offsets
    }

    /// The sorted `(seed, locations)` entries — exposed so tests and
    /// benchmarks can assert a recombined index is byte-identical to the
    /// one-pass merge.
    pub fn entries(&self) -> &[(Kmer, Vec<UnifiedLocation>)] {
        &self.entries
    }

    /// Locations of a seed across all merged species.
    pub fn locations(&self, kmer: Kmer) -> Option<&[UnifiedLocation]> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&kmer))
            .ok()
            .map(|i| self.entries[i].1.as_slice())
    }

    /// Maps one read against the unified index and returns the species with
    /// the most seed hits (requiring at least [`MIN_MAPPING_VOTES`]
    /// supporting seeds), or `None` if the read does not map.
    ///
    /// This is the seed-voting mapper used for abundance estimation by both
    /// the S-Qry baseline and MegIS; sharing it keeps their abundance outputs
    /// identical, as the paper requires.
    pub fn map_read(&self, read: &crate::read::Read, seed_k: usize) -> Option<TaxId> {
        self.map_read_hit(read, seed_k)
            .filter(|hit| hit.votes >= MIN_MAPPING_VOTES)
            .map(|hit| hit.taxid)
    }

    /// The best-supported candidate for one read, *without* the
    /// [`MIN_MAPPING_VOTES`] threshold (`None` only when no seed hits at
    /// all). Ties on votes go to the smallest taxid.
    ///
    /// A per-device mapper over a candidate partition reports this raw hit;
    /// because each candidate lives on exactly one device, the per-device
    /// vote count equals the global vote count, so taking the maximum of the
    /// per-device hits under the same `(votes, smallest-taxid)` order — and
    /// applying the threshold to the winner — reproduces
    /// [`UnifiedReferenceIndex::map_read`] over the full candidate set
    /// exactly.
    pub fn map_read_hit(&self, read: &crate::read::Read, seed_k: usize) -> Option<ReadMapHit> {
        let mut votes: BTreeMap<TaxId, u32> = BTreeMap::new();
        for kmer in read.kmers(seed_k) {
            if let Some(locations) = self.locations(kmer.canonical()) {
                for loc in locations {
                    *votes.entry(loc.taxid).or_insert(0) += 1;
                }
            }
        }
        votes
            .into_iter()
            .max_by_key(|(t, c)| (*c, Reverse(*t)))
            .map(|(taxid, votes)| ReadMapHit { taxid, votes })
    }

    /// Maps a concatenated-space position back to its species, by binary
    /// search on the (ascending) per-species offsets: the owning species is
    /// the last one whose offset is `<= position`.
    pub fn taxon_of_position(&self, position: u64) -> Option<TaxId> {
        let idx = self
            .offsets
            .partition_point(|(_, offset)| *offset <= position);
        idx.checked_sub(1).map(|i| self.offsets[i].0)
    }

    /// On-storage size in bytes.
    pub fn encoded_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(k, locs)| (k.encoded_bytes() + 12 * locs.len()) as u64)
            .sum()
    }
}

/// A unified index over one *contiguous range* of a candidate list — the
/// per-device output of partitioned Step 3 index generation.
///
/// MegIS generates the unified index inside the SSD (Fig. 9); partitioning
/// the candidate list by species lets each device of the array merge only
/// its range. A partial records the range's `base` offset in the
/// concatenated reference space (the sum of all earlier candidates' genome
/// lengths) and its `span` (the range's own total genome length), so the
/// locations it stores are already *global*:
/// [`UnifiedReferenceIndex::merge_partials`] recombines consecutive partials
/// into the full index byte-identically, and the inner index maps reads
/// directly (its positions need no post-hoc adjustment).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartialUnifiedIndex {
    /// Concatenated-reference-space offset where this partial's candidate
    /// range begins.
    base: u64,
    /// Total genome length of the range's candidates, in bases.
    span: u64,
    /// The merged index over the range, with globally offset locations.
    index: UnifiedReferenceIndex,
}

impl PartialUnifiedIndex {
    /// Merges a contiguous candidate range into a partial unified index
    /// whose locations start at `base` — the same sequential sorted-stream
    /// merge as [`UnifiedReferenceIndex::merge`], restricted to the range.
    ///
    /// # Panics
    ///
    /// Panics if the candidates do not all share the same seed length.
    pub fn merge_range(candidates: &[&ReferenceIndex], base: u64) -> PartialUnifiedIndex {
        if candidates.is_empty() {
            return PartialUnifiedIndex {
                base,
                span: 0,
                index: UnifiedReferenceIndex::default(),
            };
        }
        let k = candidates[0].k();
        assert!(
            candidates.iter().all(|i| i.k() == k),
            "all indexes must share the same seed length"
        );
        let mut offsets = Vec::with_capacity(candidates.len());
        let mut running = base;
        for idx in candidates {
            offsets.push((idx.taxid(), running));
            running += idx.genome_len() as u64;
        }
        let mut merged: BTreeMap<Kmer, Vec<UnifiedLocation>> = BTreeMap::new();
        for (idx, (taxid, offset)) in candidates.iter().zip(&offsets) {
            for (kmer, locs) in idx.entries() {
                let out = merged.entry(*kmer).or_default();
                for &pos in locs {
                    out.push(UnifiedLocation {
                        taxid: *taxid,
                        position: *offset + pos as u64,
                    });
                }
            }
        }
        PartialUnifiedIndex {
            base,
            span: running - base,
            index: UnifiedReferenceIndex {
                k,
                entries: merged.into_iter().collect(),
                offsets,
            },
        }
    }

    /// Folds the *next consecutive* partial into this one, in place — the
    /// pairwise form of [`UnifiedReferenceIndex::merge_partials`]. Because
    /// location lists concatenate in candidate order and offsets concatenate
    /// in partial order, left-folding a sequence of consecutive partials
    /// through `absorb` is byte-identical to `merge_partials` over the whole
    /// sequence: this is what lets a completer reduce partials *as they
    /// arrive* instead of barriering on all of them.
    ///
    /// # Panics
    ///
    /// Panics if `next` does not start where this partial ends
    /// (`next.base() != self.base() + self.span()`), or if two non-empty
    /// partials disagree on the seed length.
    pub fn absorb(&mut self, next: PartialUnifiedIndex) {
        assert_eq!(
            next.base,
            self.base + self.span,
            "absorbed partial must cover the next consecutive candidate range"
        );
        self.span += next.span;
        if next.index.offsets.is_empty() {
            return;
        }
        if self.index.offsets.is_empty() {
            self.index.k = next.index.k;
        } else {
            assert_eq!(
                self.index.k, next.index.k,
                "all partial indexes must share the same seed length"
            );
        }
        self.index.offsets.extend(next.index.offsets);
        // Linear merge of the two sorted entry lists; on a shared seed the
        // earlier range's locations stay first, exactly as the one-pass
        // merge orders them.
        let left = std::mem::take(&mut self.index.entries);
        let mut merged = Vec::with_capacity(left.len() + next.index.entries.len());
        let mut li = left.into_iter().peekable();
        let mut ri = next.index.entries.into_iter().peekable();
        loop {
            match (li.peek(), ri.peek()) {
                (Some((lk, _)), Some((rk, _))) => match lk.cmp(rk) {
                    std::cmp::Ordering::Less => merged.push(li.next().unwrap()),
                    std::cmp::Ordering::Greater => merged.push(ri.next().unwrap()),
                    std::cmp::Ordering::Equal => {
                        let (kmer, mut locs) = li.next().unwrap();
                        locs.extend(ri.next().unwrap().1);
                        merged.push((kmer, locs));
                    }
                },
                (Some(_), None) => merged.push(li.next().unwrap()),
                (None, Some(_)) => merged.push(ri.next().unwrap()),
                (None, None) => break,
            }
        }
        self.index.entries = merged;
    }

    /// Consumes the partial and returns the merged index — what a reduce
    /// step that folded every consecutive partial through
    /// [`PartialUnifiedIndex::absorb`] hands out as the unified index.
    pub fn into_index(self) -> UnifiedReferenceIndex {
        self.index
    }

    /// Concatenated-reference-space offset where the range begins.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total genome length of the range's candidates, in bases.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// The merged index over the range. Its locations are globally offset,
    /// so [`UnifiedReferenceIndex::map_read_hit`] on it reports this range's
    /// best hit directly.
    pub fn index(&self) -> &UnifiedReferenceIndex {
        &self.index
    }

    /// Returns `true` if the partial covers no candidates.
    pub fn is_empty(&self) -> bool {
        self.index.offsets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs() -> ReferenceCollection {
        ReferenceCollection::synthetic(6, 600, 42)
    }

    #[test]
    fn database_is_sorted_and_nonempty() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        assert!(db.len() > 100);
        assert!(db.is_sorted());
        assert_eq!(db.k(), 21);
        // CSR invariants: one offset boundary per entry plus the sentinel,
        // and the kmer column matches the entry iterator.
        assert_eq!(db.storage().entry_count(), db.len());
        assert_eq!(db.kmer_slice().len(), db.len());
        assert!(db.storage().association_count() >= db.len());
        assert!(db.storage().heap_bytes() > 0);
    }

    #[test]
    fn build_matches_from_sorted_entries_roundtrip() {
        // Rebuilding from owned entries must reproduce the same columnar
        // content: same kmers, same per-entry taxa.
        let db = SortedKmerDatabase::build(&refs(), 21);
        let owned: Vec<KmerEntry> = db.entries().map(|e| e.to_owned()).collect();
        let rebuilt = SortedKmerDatabase::from_sorted_entries(db.k(), owned);
        assert_eq!(rebuilt.len(), db.len());
        assert_eq!(rebuilt.kmer_slice(), db.kmer_slice());
        for (a, b) in rebuilt.entries().zip(db.entries()) {
            assert_eq!(a, b);
        }
        assert_eq!(rebuilt.encoded_bytes(), db.encoded_bytes());
    }

    #[test]
    fn entry_taxa_are_sorted_and_deduplicated() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        for entry in db.entries() {
            assert!(!entry.taxa.is_empty());
            assert!(entry.taxa.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn lookup_finds_genome_kmers() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        let genome = &r.genomes()[0];
        let kmer = KmerExtractor::new(genome.sequence(), 21)
            .next()
            .unwrap()
            .canonical();
        let entry = db.lookup(kmer).expect("genome k-mer must be indexed");
        assert!(entry.taxa.contains(&genome.taxid()));
    }

    #[test]
    fn shared_kmers_carry_multiple_taxa() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        let multi = db.entries().filter(|e| e.taxa.len() > 1).count();
        assert!(multi > 0, "same-genus species should share k-mers");
    }

    #[test]
    fn intersect_sorted_matches_lookup() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        let genome = &r.genomes()[2];
        let mut queries: Vec<Kmer> = KmerExtractor::new(genome.sequence(), 21)
            .map(|k| k.canonical())
            .collect();
        queries.sort();
        queries.dedup();
        let inter = db.intersect_sorted(&queries);
        assert_eq!(
            inter.len(),
            queries.iter().filter(|q| db.lookup(**q).is_some()).count()
        );
        assert!(inter.windows(2).all(|w| w[0] < w[1]));
        // All of this genome's k-mers are in the database, so the intersection
        // must cover every query.
        assert_eq!(inter.len(), queries.len());
    }

    #[test]
    fn intersect_with_foreign_kmers_is_partial() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        let foreign = ReferenceCollection::synthetic(2, 600, 999);
        let mut queries: Vec<Kmer> = KmerExtractor::new(foreign.genomes()[0].sequence(), 21)
            .map(|k| k.canonical())
            .collect();
        queries.sort();
        queries.dedup();
        let inter = db.intersect_sorted(&queries);
        assert!(inter.len() < queries.len());
    }

    #[test]
    fn galloping_equals_two_pointer_on_edge_shapes() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        let all: Vec<Kmer> = db.kmers().collect();

        // Empty queries; empty database.
        assert!(db.intersect_sorted(&[]).is_empty());
        assert!(SortedKmerDatabase::default()
            .intersect_sorted(&all)
            .is_empty());

        // Full subset (every query hits).
        assert_eq!(
            db.intersect_sorted(&all),
            db.intersect_sorted_two_pointer(&all)
        );
        assert_eq!(db.intersect_sorted(&all), all);

        // Disjoint: foreign queries, mostly misses.
        let foreign = ReferenceCollection::synthetic(2, 400, 4321);
        let mut misses: Vec<Kmer> = KmerExtractor::new(foreign.genomes()[0].sequence(), 21)
            .map(|k| k.canonical())
            .collect();
        misses.sort();
        misses.dedup();
        assert_eq!(
            db.intersect_sorted(&misses),
            db.intersect_sorted_two_pointer(&misses)
        );

        // Duplicate queries: the output must stay deduplicated either way.
        let mut dups: Vec<Kmer> = all.iter().step_by(11).copied().collect();
        dups.extend(all.iter().step_by(11).copied());
        dups.sort();
        let gallop_out = db.intersect_sorted(&dups);
        assert_eq!(gallop_out, db.intersect_sorted_two_pointer(&dups));
        assert!(gallop_out.windows(2).all(|w| w[0] < w[1]));

        // Sparse skewed queries (|DB| >> |Q|) — the galloping regime.
        let sparse: Vec<Kmer> = all.iter().step_by(64).copied().collect();
        assert_eq!(
            db.intersect_sorted(&sparse),
            db.intersect_sorted_two_pointer(&sparse)
        );
    }

    #[test]
    fn overlapping_query_range_bounds_the_merge() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        // Queries drawn from the whole key space, including values outside
        // the database's bounds on both sides.
        let mut queries: Vec<Kmer> = db.kmers().step_by(5).collect();
        let foreign = ReferenceCollection::synthetic(2, 400, 777);
        queries
            .extend(KmerExtractor::new(foreign.genomes()[0].sequence(), 21).map(|k| k.canonical()));
        queries.sort();
        queries.dedup();

        // Splitting the database and querying each part through its
        // overlapping range must reproduce the whole-list intersection.
        for parts in [1usize, 3, 4] {
            let shards = db.partition(parts);
            let mut merged = Vec::new();
            let mut scanned = 0usize;
            for shard in &shards {
                let range = shard.overlapping_query_range(&queries);
                scanned += range.len();
                merged.extend(shard.intersect_sorted(&queries[range]));
            }
            assert_eq!(merged, db.intersect_sorted(&queries), "{parts} parts");
            assert!(
                scanned <= queries.len(),
                "disjoint shard ranges must not re-scan queries: {scanned} > {}",
                queries.len()
            );
        }
        // An empty database overlaps nothing.
        assert_eq!(
            SortedKmerDatabase::default().overlapping_query_range(&queries),
            0..0
        );
        // Bounds are inclusive: a single-entry database overlaps exactly the
        // run of queries equal to that entry.
        let single = SortedKmerDatabase::from_sorted_entries(21, vec![db.entry(3).to_owned()]);
        let range = single.overlapping_query_range(&queries);
        for q in &queries[range] {
            assert_eq!(*q, db.entry(3).kmer);
        }
    }

    #[test]
    fn first_and_last_kmer_are_the_key_bounds() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        assert_eq!(db.first_kmer(), db.kmers().next());
        assert_eq!(db.last_kmer(), db.kmers().last());
        assert!(db.first_kmer() < db.last_kmer());
        assert_eq!(SortedKmerDatabase::default().first_kmer(), None);
        assert_eq!(SortedKmerDatabase::default().last_kmer(), None);
    }

    #[test]
    fn partition_preserves_entries_and_order() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        let shards = db.partition(4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(SortedKmerDatabase::len).sum();
        assert_eq!(total, db.len());
        for s in &shards {
            assert!(s.is_sorted());
        }
    }

    #[test]
    fn partition_and_view_are_zero_copy() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        for parts in [1usize, 3, 8, db.len() + 5] {
            for shard in db.partition(parts) {
                assert!(
                    shard.shares_storage_with(&db),
                    "{parts}-way partition must share the storage allocation"
                );
            }
        }
        // Clones share too — a database copy is a view handle, not a data
        // copy.
        assert!(db.clone().shares_storage_with(&db));
        // Sub-views compose: a view of a view addresses the right entries.
        let mid = db.view(10..40);
        assert!(mid.shares_storage_with(&db));
        let inner = mid.view(5..10);
        assert_eq!(inner.len(), 5);
        for i in 0..inner.len() {
            assert_eq!(inner.entry(i), db.entry(15 + i));
        }
        // Independent builds do not share.
        let other = SortedKmerDatabase::build(&refs(), 21);
        assert!(!other.shares_storage_with(&db));
    }

    #[test]
    fn view_intersections_match_slice_semantics() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        let queries: Vec<Kmer> = db.kmers().step_by(3).collect();
        let v = db.view(7..db.len() - 7);
        // A view behaves exactly like a standalone database over its range.
        let standalone = SortedKmerDatabase::from_sorted_entries(
            db.k(),
            v.entries().map(|e| e.to_owned()).collect(),
        );
        assert_eq!(
            v.intersect_sorted(&queries),
            standalone.intersect_sorted(&queries)
        );
        assert_eq!(v.encoded_bytes(), standalone.encoded_bytes());
        assert_eq!(v.taxa(), standalone.taxa());
    }

    #[test]
    fn encoded_bytes_scales_with_entries() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        assert!(db.encoded_bytes() as usize >= db.len() * 6);
    }

    #[test]
    fn reference_index_locations_roundtrip() {
        let r = refs();
        let genome = &r.genomes()[0];
        let idx = ReferenceIndex::build(genome, 15);
        let kmer = KmerExtractor::new(genome.sequence(), 15)
            .nth(10)
            .unwrap()
            .canonical();
        let locs = idx.locations(kmer).expect("indexed seed");
        assert!(!locs.is_empty());
        assert_eq!(idx.taxid(), genome.taxid());
    }

    #[test]
    fn unified_index_merges_and_offsets() {
        let r = refs();
        let indexes: Vec<ReferenceIndex> = r
            .genomes()
            .iter()
            .take(3)
            .map(|g| ReferenceIndex::build(g, 15))
            .collect();
        let unified = UnifiedReferenceIndex::merge(&indexes);
        assert_eq!(unified.offsets().len(), 3);
        assert_eq!(unified.offsets()[0].1, 0);
        assert_eq!(unified.offsets()[1].1, 600);
        assert_eq!(unified.offsets()[2].1, 1200);
        // Every seed of every merged index must be resolvable.
        for idx in &indexes {
            for (kmer, _) in idx.entries().iter().take(20) {
                let locs = unified.locations(*kmer).expect("merged seed present");
                assert!(locs.iter().any(|l| l.taxid == idx.taxid()));
            }
        }
        // Position→taxon mapping respects offsets.
        assert_eq!(unified.taxon_of_position(0), Some(indexes[0].taxid()));
        assert_eq!(unified.taxon_of_position(650), Some(indexes[1].taxid()));
        assert_eq!(unified.taxon_of_position(1800), Some(indexes[2].taxid()));
        // Boundary positions belong to the species that starts there.
        assert_eq!(unified.taxon_of_position(599), Some(indexes[0].taxid()));
        assert_eq!(unified.taxon_of_position(600), Some(indexes[1].taxid()));
        assert_eq!(unified.taxon_of_position(1200), Some(indexes[2].taxid()));
        assert_eq!(
            unified.taxon_of_position(u64::MAX),
            Some(indexes[2].taxid())
        );
    }

    #[test]
    fn unified_index_of_empty_input_is_empty() {
        let unified = UnifiedReferenceIndex::merge(&[]);
        assert!(unified.is_empty());
        assert!(unified.offsets().is_empty());
        assert_eq!(unified.taxon_of_position(17), None);
    }

    #[test]
    fn merge_partials_recombines_byte_identically() {
        // Candidates from one genus share seeds, so the same k-mer appears
        // in several partials and the location-concatenation order matters.
        let r = refs();
        let indexes: Vec<ReferenceIndex> = r
            .genomes()
            .iter()
            .map(|g| ReferenceIndex::build(g, 15))
            .collect();
        let whole = UnifiedReferenceIndex::merge(&indexes);
        let index_refs: Vec<&ReferenceIndex> = indexes.iter().collect();

        for cuts in [
            vec![6],
            vec![2, 4, 6],
            vec![1, 2, 3, 4, 5, 6],
            vec![3, 3, 6, 6],
        ] {
            let mut partials = Vec::new();
            let mut start = 0usize;
            let mut base = 0u64;
            for end in cuts.clone() {
                let range = &index_refs[start..end];
                let partial = PartialUnifiedIndex::merge_range(range, base);
                assert_eq!(partial.base(), base);
                assert_eq!(partial.is_empty(), range.is_empty());
                base += partial.span();
                start = end;
                partials.push(partial);
            }
            let recombined = UnifiedReferenceIndex::merge_partials(partials);
            assert_eq!(recombined, whole, "cuts {cuts:?} diverged");
            assert_eq!(recombined.entries(), whole.entries());
            assert_eq!(recombined.offsets(), whole.offsets());
        }
        // No partials at all recombine to the empty index.
        assert!(UnifiedReferenceIndex::merge_partials(Vec::new()).is_empty());
    }

    #[test]
    fn absorb_left_fold_matches_merge_partials() {
        // Incremental-reduce contract: folding consecutive partials through
        // `absorb` one at a time must be byte-identical to the one-shot
        // `merge_partials` recombination (and therefore to the one-pass
        // merge), for every cut pattern including empty ranges.
        let r = refs();
        let indexes: Vec<ReferenceIndex> = r
            .genomes()
            .iter()
            .map(|g| ReferenceIndex::build(g, 15))
            .collect();
        let whole = UnifiedReferenceIndex::merge(&indexes);
        let index_refs: Vec<&ReferenceIndex> = indexes.iter().collect();
        for cuts in [
            vec![6],
            vec![2, 4, 6],
            vec![1, 2, 3, 4, 5, 6],
            vec![3, 3, 6, 6],
            vec![0, 6],
        ] {
            let mut acc: Option<PartialUnifiedIndex> = None;
            let mut start = 0usize;
            let mut base = 0u64;
            for end in cuts.clone() {
                let partial = PartialUnifiedIndex::merge_range(&index_refs[start..end], base);
                base += partial.span();
                start = end;
                match acc.as_mut() {
                    Some(folded) => folded.absorb(partial),
                    None => acc = Some(partial),
                }
            }
            let folded = acc.expect("at least one cut").into_index();
            assert_eq!(folded, whole, "cuts {cuts:?} diverged");
            assert_eq!(folded.entries(), whole.entries());
            assert_eq!(folded.offsets(), whole.offsets());
        }
    }

    #[test]
    #[should_panic(expected = "consecutive candidate range")]
    fn absorb_rejects_non_consecutive_partials() {
        let r = refs();
        let indexes: Vec<ReferenceIndex> = r
            .genomes()
            .iter()
            .map(|g| ReferenceIndex::build(g, 15))
            .collect();
        let index_refs: Vec<&ReferenceIndex> = indexes.iter().collect();
        let mut first = PartialUnifiedIndex::merge_range(&index_refs[..2], 0);
        let gap = first.span() + 7;
        first.absorb(PartialUnifiedIndex::merge_range(&index_refs[2..4], gap));
    }

    #[test]
    fn map_read_hit_backs_map_read() {
        let r = refs();
        let indexes: Vec<ReferenceIndex> = r
            .genomes()
            .iter()
            .map(|g| ReferenceIndex::build(g, 15))
            .collect();
        let unified = UnifiedReferenceIndex::merge(&indexes);
        // A read drawn straight from a genome maps to it with many votes.
        let genome = &r.genomes()[1];
        let bases: Vec<crate::dna::Base> = genome.sequence().iter().take(80).collect();
        let read = crate::read::Read::new("r0", crate::dna::PackedSequence::from_bases(bases));
        let hit = unified.map_read_hit(&read, 15).expect("read has seed hits");
        assert!(hit.votes >= MIN_MAPPING_VOTES);
        assert_eq!(unified.map_read(&read, 15), Some(hit.taxid));
        // The per-partition maximum of hits resolves to the global hit.
        let index_refs: Vec<&ReferenceIndex> = indexes.iter().collect();
        let mut base = 0u64;
        let mut best: Option<ReadMapHit> = None;
        for chunk in index_refs.chunks(2) {
            let partial = PartialUnifiedIndex::merge_range(chunk, base);
            base += partial.span();
            if let Some(h) = partial.index().map_read_hit(&read, 15) {
                let key = |h: &ReadMapHit| (h.votes, std::cmp::Reverse(h.taxid));
                if best.as_ref().map(|b| key(&h) > key(b)).unwrap_or(true) {
                    best = Some(h);
                }
            }
        }
        assert_eq!(best, Some(hit));
    }

    #[test]
    fn multi_sweep_edge_shapes_match_independent_calls() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        let all: Vec<Kmer> = db.kmers().collect();

        // No members at all: an empty sweep.
        assert!(db.intersect_sorted_multi(&[]).is_empty());
        // A single member reproduces the single-sample merge exactly.
        assert_eq!(db.intersect_sorted_multi(&[&all]), vec![all.clone()]);
        // Empty member slices produce empty hit lists without disturbing
        // their neighbours.
        let sparse: Vec<Kmer> = all.iter().step_by(7).copied().collect();
        let got = db.intersect_sorted_multi(&[&[], &sparse, &[]]);
        assert_eq!(got, vec![Vec::new(), sparse.clone(), Vec::new()]);
        // An empty database yields empty hit lists for every member.
        let empty = SortedKmerDatabase::default();
        assert_eq!(
            empty.intersect_sorted_multi(&[&all, &sparse]),
            vec![Vec::new(), Vec::new()]
        );
    }

    #[test]
    fn seeded_multi_sweep_property_suite() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        let all: Vec<Kmer> = db.kmers().collect();
        // Foreign k-mers: drawn from an unrelated collection, so member
        // slices built from them are (mostly) disjoint from the database.
        let outsiders = ReferenceCollection::synthetic(2, 500, 2024);
        let mut foreign: Vec<Kmer> = KmerExtractor::new(outsiders.genomes()[0].sequence(), 21)
            .map(|k| k.canonical())
            .collect();
        foreign.sort();
        foreign.dedup();

        let mut rng = StdRng::seed_from_u64(0xc0a1_e5ce);
        for trial in 0..60 {
            let member_count: usize = rng.gen_range(1..=8);
            let members: Vec<Vec<Kmer>> = (0..member_count)
                .map(|_| {
                    let mut q: Vec<Kmer> = match rng.gen_range(0..5u32) {
                        // Empty member slice.
                        0 => Vec::new(),
                        // Disjoint: queries the database does not hold.
                        1 => {
                            let step = rng.gen_range(1..7usize);
                            foreign.iter().step_by(step).copied().collect()
                        }
                        // Subset: every query hits.
                        2 => {
                            let step = rng.gen_range(1..17usize);
                            all.iter().step_by(step).copied().collect()
                        }
                        // Duplicates: a subset with every element doubled —
                        // outputs must stay deduplicated.
                        3 => {
                            let step = rng.gen_range(2..9usize);
                            let base: Vec<Kmer> = all.iter().step_by(step).copied().collect();
                            let mut dup = base.clone();
                            dup.extend(base);
                            dup
                        }
                        // Mixed hits and misses.
                        _ => {
                            let mut mix: Vec<Kmer> = all
                                .iter()
                                .step_by(rng.gen_range(3..11usize))
                                .copied()
                                .collect();
                            mix.extend(foreign.iter().step_by(rng.gen_range(2..9usize)).copied());
                            mix
                        }
                    };
                    q.sort();
                    q
                })
                .collect();
            let slices: Vec<&[Kmer]> = members.iter().map(Vec::as_slice).collect();
            let multi = db.intersect_sorted_multi(&slices);
            assert_eq!(multi.len(), members.len());
            for (i, (member, got)) in members.iter().zip(&multi).enumerate() {
                assert_eq!(
                    got,
                    &db.intersect_sorted(member),
                    "trial {trial} member {i}: coalesced sweep diverged from \
                     the independent galloping merge"
                );
                assert_eq!(
                    got,
                    &db.intersect_sorted_two_pointer(member),
                    "trial {trial} member {i}: coalesced sweep diverged from \
                     the two-pointer oracle"
                );
            }

            // The same members pushed through a sharded layout with
            // per-member overlap pre-filtering (exactly the worker's access
            // pattern) must demux identically.
            let parts = rng.gen_range(2..5usize);
            for shard in db.partition(parts) {
                let overlaps: Vec<&[Kmer]> = members
                    .iter()
                    .map(|m| &m[shard.overlapping_query_range(m)])
                    .collect();
                let shard_multi = shard.intersect_sorted_multi(&overlaps);
                for (i, (member, got)) in members.iter().zip(&shard_multi).enumerate() {
                    assert_eq!(
                        got,
                        &shard.intersect_sorted(member),
                        "trial {trial} member {i}: sharded sweep diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn reference_index_builds_are_counted_per_thread() {
        let r = refs();
        let before = ReferenceIndex::builds_on_this_thread();
        let _ = ReferenceIndex::build(&r.genomes()[0], 15);
        let _ = ReferenceIndex::build(&r.genomes()[1], 15);
        assert_eq!(ReferenceIndex::builds_on_this_thread(), before + 2);
    }
}
