//! k-mer databases and reference indexes.
//!
//! The streaming-access (S-Qry) analysis flow that MegIS builds on keeps its
//! database as a *lexicographically sorted* list of k-mers, each associated
//! with the taxa whose reference genomes contain it (§2.1.1, §4.2). MegIS
//! stores this database sequentially across SSD channels and streams through
//! it once per sample, intersecting it with the (also sorted) query k-mers.
//!
//! For read-mapping-based abundance estimation, each species additionally has
//! a [`ReferenceIndex`] mapping k-mers to their genome locations; MegIS's Step
//! 3 merges the indexes of the candidate species into a
//! [`UnifiedReferenceIndex`] inside the SSD (Fig. 9 of the paper).

use std::collections::BTreeMap;

use crate::kmer::{Kmer, KmerExtractor};
use crate::reference::{ReferenceCollection, ReferenceGenome};
use crate::taxonomy::TaxId;

/// One entry of a sorted k-mer database: a k-mer and the taxa it occurs in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmerEntry {
    /// The indexed k-mer.
    pub kmer: Kmer,
    /// Sorted, deduplicated taxa whose genomes contain the k-mer.
    pub taxa: Vec<TaxId>,
}

/// A lexicographically sorted k-mer database (the S-Qry / MegIS database).
///
/// # Example
///
/// ```
/// use megis_genomics::reference::ReferenceCollection;
/// use megis_genomics::database::SortedKmerDatabase;
///
/// let refs = ReferenceCollection::synthetic(4, 400, 1);
/// let db = SortedKmerDatabase::build(&refs, 21);
/// assert!(db.len() > 0);
/// assert!(db.is_sorted());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SortedKmerDatabase {
    k: usize,
    entries: Vec<KmerEntry>,
}

impl SortedKmerDatabase {
    /// Builds the database from a reference collection using k-mers of length
    /// `k` (canonical form).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`crate::kmer::MAX_K`].
    pub fn build(references: &ReferenceCollection, k: usize) -> SortedKmerDatabase {
        let mut map: BTreeMap<Kmer, Vec<TaxId>> = BTreeMap::new();
        for genome in references.genomes() {
            for kmer in KmerExtractor::new(genome.sequence(), k) {
                let canon = kmer.canonical();
                let taxa = map.entry(canon).or_default();
                if !taxa.contains(&genome.taxid()) {
                    taxa.push(genome.taxid());
                }
            }
        }
        let entries = map
            .into_iter()
            .map(|(kmer, mut taxa)| {
                taxa.sort();
                KmerEntry { kmer, taxa }
            })
            .collect();
        SortedKmerDatabase { k, entries }
    }

    /// Creates a database from pre-sorted entries.
    ///
    /// # Panics
    ///
    /// Panics if entries are not strictly sorted by k-mer.
    pub fn from_sorted_entries(k: usize, entries: Vec<KmerEntry>) -> SortedKmerDatabase {
        for w in entries.windows(2) {
            assert!(w[0].kmer < w[1].kmer, "entries must be strictly sorted");
        }
        SortedKmerDatabase { k, entries }
    }

    /// The k-mer length of this database.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers indexed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the database has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[KmerEntry] {
        &self.entries
    }

    /// Iterates over the sorted k-mers.
    pub fn kmers(&self) -> impl Iterator<Item = Kmer> + '_ {
        self.entries.iter().map(|e| e.kmer)
    }

    /// Returns `true` if the entries are strictly sorted (always true for
    /// databases built by this crate; exposed for tests and debug checks).
    pub fn is_sorted(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].kmer < w[1].kmer)
    }

    /// The smallest indexed k-mer (the database's lower key bound), if any.
    pub fn first_kmer(&self) -> Option<Kmer> {
        self.entries.first().map(|e| e.kmer)
    }

    /// The largest indexed k-mer (the database's upper key bound), if any.
    pub fn last_kmer(&self) -> Option<Kmer> {
        self.entries.last().map(|e| e.kmer)
    }

    /// The sub-range of a sorted query list that can possibly intersect this
    /// database: queries below [`SortedKmerDatabase::first_kmer`] or above
    /// [`SortedKmerDatabase::last_kmer`] cannot match any entry, so a caller
    /// holding a disjoint key-range partition (one contiguous slice of a
    /// larger sorted database per device) only needs to ship this sub-slice
    /// to the device — the binary search that makes per-device query-side
    /// work proportional to the overlapping slice instead of the whole list.
    ///
    /// `intersect_sorted(&queries[range])` equals
    /// `intersect_sorted(queries)` for the returned `range` (asserted by the
    /// unit tests).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `sorted_queries` is not sorted.
    pub fn overlapping_query_range(&self, sorted_queries: &[Kmer]) -> std::ops::Range<usize> {
        debug_assert!(sorted_queries.windows(2).all(|w| w[0] <= w[1]));
        let (Some(lo), Some(hi)) = (self.first_kmer(), self.last_kmer()) else {
            return 0..0;
        };
        let start = sorted_queries.partition_point(|q| *q < lo);
        let end = start + sorted_queries[start..].partition_point(|q| *q <= hi);
        start..end
    }

    /// Looks up a single k-mer (binary search).
    pub fn lookup(&self, kmer: Kmer) -> Option<&KmerEntry> {
        self.entries
            .binary_search_by(|e| e.kmer.cmp(&kmer))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// All taxa indexed by the database, sorted and deduplicated.
    pub fn taxa(&self) -> Vec<TaxId> {
        let mut taxa: Vec<TaxId> = self
            .entries
            .iter()
            .flat_map(|e| e.taxa.iter().copied())
            .collect();
        taxa.sort();
        taxa.dedup();
        taxa
    }

    /// Streaming intersection with a sorted list of query k-mers.
    ///
    /// Both inputs are consumed as sorted streams with a two-pointer merge —
    /// exactly the access pattern MegIS's per-channel Intersect units perform
    /// on data arriving from the flash channels and the internal DRAM
    /// (§4.3.1). Returns the intersecting k-mers in sorted order.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `sorted_queries` is not sorted.
    pub fn intersect_sorted(&self, sorted_queries: &[Kmer]) -> Vec<Kmer> {
        debug_assert!(sorted_queries.windows(2).all(|w| w[0] <= w[1]));
        let mut out = Vec::new();
        let mut qi = 0;
        let mut di = 0;
        while qi < sorted_queries.len() && di < self.entries.len() {
            let q = sorted_queries[qi];
            let d = self.entries[di].kmer;
            match q.cmp(&d) {
                std::cmp::Ordering::Equal => {
                    if out.last() != Some(&q) {
                        out.push(q);
                    }
                    qi += 1;
                }
                std::cmp::Ordering::Less => qi += 1,
                std::cmp::Ordering::Greater => di += 1,
            }
        }
        out
    }

    /// Size of the database in its 2-bit on-storage encoding, in bytes
    /// (k-mer payloads plus one 4-byte taxid per association). Used by the
    /// SSD placement and timing models.
    pub fn encoded_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| (e.kmer.encoded_bytes() + 4 * e.taxa.len()) as u64)
            .sum()
    }

    /// Splits the database into `parts` contiguous sorted shards of
    /// near-equal entry counts (used to distribute a database disjointly
    /// across multiple SSDs, §6.1 "Effect of the Number of SSDs").
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn partition(&self, parts: usize) -> Vec<SortedKmerDatabase> {
        assert!(parts > 0, "parts must be positive");
        let per = self.entries.len().div_ceil(parts.max(1)).max(1);
        let mut shards = Vec::with_capacity(parts);
        for chunk in self.entries.chunks(per) {
            shards.push(SortedKmerDatabase {
                k: self.k,
                entries: chunk.to_vec(),
            });
        }
        while shards.len() < parts {
            shards.push(SortedKmerDatabase {
                k: self.k,
                entries: Vec::new(),
            });
        }
        shards
    }
}

/// A per-species read-mapping index: k-mer → sorted genome locations.
#[derive(Debug, Clone, Default)]
pub struct ReferenceIndex {
    taxid: TaxId,
    k: usize,
    genome_len: usize,
    entries: Vec<(Kmer, Vec<u32>)>,
}

impl ReferenceIndex {
    /// Builds the index of one reference genome with seeds of length `k`.
    pub fn build(genome: &ReferenceGenome, k: usize) -> ReferenceIndex {
        let mut map: BTreeMap<Kmer, Vec<u32>> = BTreeMap::new();
        for (pos, kmer) in KmerExtractor::new(genome.sequence(), k).enumerate() {
            map.entry(kmer.canonical()).or_default().push(pos as u32);
        }
        ReferenceIndex {
            taxid: genome.taxid(),
            k,
            genome_len: genome.len(),
            entries: map.into_iter().collect(),
        }
    }

    /// The species this index belongs to.
    pub fn taxid(&self) -> TaxId {
        self.taxid
    }

    /// The seed length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Length of the indexed genome in bases.
    pub fn genome_len(&self) -> usize {
        self.genome_len
    }

    /// Number of distinct seeds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the index has no seeds.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted `(kmer, locations)` entries.
    pub fn entries(&self) -> &[(Kmer, Vec<u32>)] {
        &self.entries
    }

    /// Locations of a seed, if indexed.
    pub fn locations(&self, kmer: Kmer) -> Option<&[u32]> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&kmer))
            .ok()
            .map(|i| self.entries[i].1.as_slice())
    }

    /// On-storage size in bytes (2-bit k-mers + 4-byte locations).
    pub fn encoded_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(k, locs)| (k.encoded_bytes() + 4 * locs.len()) as u64)
            .sum()
    }
}

/// A location in the unified index: which species and what offset-adjusted
/// position the seed occurs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnifiedLocation {
    /// The species the location belongs to.
    pub taxid: TaxId,
    /// Position within the concatenated (offset-adjusted) reference space.
    pub position: u64,
}

/// A unified read-mapping index over several candidate species.
///
/// MegIS generates this inside the SSD by sequentially merging the per-species
/// indexes of the candidate species found in Step 2, adjusting locations by
/// per-species offsets (Fig. 9). A single unified index avoids searching each
/// per-species index separately during read mapping.
#[derive(Debug, Clone, Default)]
pub struct UnifiedReferenceIndex {
    k: usize,
    entries: Vec<(Kmer, Vec<UnifiedLocation>)>,
    offsets: Vec<(TaxId, u64)>,
}

impl UnifiedReferenceIndex {
    /// Merges per-species indexes into a unified index.
    ///
    /// The merge walks all input indexes as sorted streams — the same
    /// sequential access pattern MegIS's in-SSD index generation uses.
    ///
    /// # Panics
    ///
    /// Panics if the indexes do not all share the same `k`.
    pub fn merge(indexes: &[ReferenceIndex]) -> UnifiedReferenceIndex {
        if indexes.is_empty() {
            return UnifiedReferenceIndex::default();
        }
        let k = indexes[0].k();
        assert!(
            indexes.iter().all(|i| i.k() == k),
            "all indexes must share the same seed length"
        );
        // Assign each species an offset in the concatenated reference space.
        let mut offsets = Vec::with_capacity(indexes.len());
        let mut running = 0u64;
        for idx in indexes {
            offsets.push((idx.taxid(), running));
            running += idx.genome_len() as u64;
        }

        let mut merged: BTreeMap<Kmer, Vec<UnifiedLocation>> = BTreeMap::new();
        for (idx, (taxid, offset)) in indexes.iter().zip(&offsets) {
            for (kmer, locs) in idx.entries() {
                let out = merged.entry(*kmer).or_default();
                for &pos in locs {
                    out.push(UnifiedLocation {
                        taxid: *taxid,
                        position: *offset + pos as u64,
                    });
                }
            }
        }
        UnifiedReferenceIndex {
            k,
            entries: merged.into_iter().collect(),
            offsets,
        }
    }

    /// The seed length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct seeds in the unified index.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Per-species offsets in the concatenated reference space.
    pub fn offsets(&self) -> &[(TaxId, u64)] {
        &self.offsets
    }

    /// Locations of a seed across all merged species.
    pub fn locations(&self, kmer: Kmer) -> Option<&[UnifiedLocation]> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&kmer))
            .ok()
            .map(|i| self.entries[i].1.as_slice())
    }

    /// Maps one read against the unified index and returns the species with
    /// the most seed hits (requiring at least two supporting seeds), or `None`
    /// if the read does not map.
    ///
    /// This is the seed-voting mapper used for abundance estimation by both
    /// the S-Qry baseline and MegIS; sharing it keeps their abundance outputs
    /// identical, as the paper requires.
    pub fn map_read(&self, read: &crate::read::Read, seed_k: usize) -> Option<TaxId> {
        let mut votes: BTreeMap<TaxId, u32> = BTreeMap::new();
        for kmer in read.kmers(seed_k) {
            if let Some(locations) = self.locations(kmer.canonical()) {
                for loc in locations {
                    *votes.entry(loc.taxid).or_insert(0) += 1;
                }
            }
        }
        votes
            .into_iter()
            .max_by_key(|(t, c)| (*c, std::cmp::Reverse(*t)))
            .filter(|(_, c)| *c >= 2)
            .map(|(t, _)| t)
    }

    /// Maps a concatenated-space position back to its species.
    pub fn taxon_of_position(&self, position: u64) -> Option<TaxId> {
        let mut result = None;
        for (taxid, offset) in &self.offsets {
            if position >= *offset {
                result = Some(*taxid);
            } else {
                break;
            }
        }
        result
    }

    /// On-storage size in bytes.
    pub fn encoded_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(k, locs)| (k.encoded_bytes() + 12 * locs.len()) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs() -> ReferenceCollection {
        ReferenceCollection::synthetic(6, 600, 42)
    }

    #[test]
    fn database_is_sorted_and_nonempty() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        assert!(db.len() > 100);
        assert!(db.is_sorted());
        assert_eq!(db.k(), 21);
    }

    #[test]
    fn lookup_finds_genome_kmers() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        let genome = &r.genomes()[0];
        let kmer = KmerExtractor::new(genome.sequence(), 21)
            .next()
            .unwrap()
            .canonical();
        let entry = db.lookup(kmer).expect("genome k-mer must be indexed");
        assert!(entry.taxa.contains(&genome.taxid()));
    }

    #[test]
    fn shared_kmers_carry_multiple_taxa() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        let multi = db.entries().iter().filter(|e| e.taxa.len() > 1).count();
        assert!(multi > 0, "same-genus species should share k-mers");
    }

    #[test]
    fn intersect_sorted_matches_lookup() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        let genome = &r.genomes()[2];
        let mut queries: Vec<Kmer> = KmerExtractor::new(genome.sequence(), 21)
            .map(|k| k.canonical())
            .collect();
        queries.sort();
        queries.dedup();
        let inter = db.intersect_sorted(&queries);
        assert_eq!(
            inter.len(),
            queries.iter().filter(|q| db.lookup(**q).is_some()).count()
        );
        assert!(inter.windows(2).all(|w| w[0] < w[1]));
        // All of this genome's k-mers are in the database, so the intersection
        // must cover every query.
        assert_eq!(inter.len(), queries.len());
    }

    #[test]
    fn intersect_with_foreign_kmers_is_partial() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        let foreign = ReferenceCollection::synthetic(2, 600, 999);
        let mut queries: Vec<Kmer> = KmerExtractor::new(foreign.genomes()[0].sequence(), 21)
            .map(|k| k.canonical())
            .collect();
        queries.sort();
        queries.dedup();
        let inter = db.intersect_sorted(&queries);
        assert!(inter.len() < queries.len());
    }

    #[test]
    fn overlapping_query_range_bounds_the_merge() {
        let r = refs();
        let db = SortedKmerDatabase::build(&r, 21);
        // Queries drawn from the whole key space, including values outside
        // the database's bounds on both sides.
        let mut queries: Vec<Kmer> = db.kmers().step_by(5).collect();
        let foreign = ReferenceCollection::synthetic(2, 400, 777);
        queries
            .extend(KmerExtractor::new(foreign.genomes()[0].sequence(), 21).map(|k| k.canonical()));
        queries.sort();
        queries.dedup();

        // Splitting the database and querying each part through its
        // overlapping range must reproduce the whole-list intersection.
        for parts in [1usize, 3, 4] {
            let shards = db.partition(parts);
            let mut merged = Vec::new();
            let mut scanned = 0usize;
            for shard in &shards {
                let range = shard.overlapping_query_range(&queries);
                scanned += range.len();
                merged.extend(shard.intersect_sorted(&queries[range]));
            }
            assert_eq!(merged, db.intersect_sorted(&queries), "{parts} parts");
            assert!(
                scanned <= queries.len(),
                "disjoint shard ranges must not re-scan queries: {scanned} > {}",
                queries.len()
            );
        }
        // An empty database overlaps nothing.
        assert_eq!(
            SortedKmerDatabase::default().overlapping_query_range(&queries),
            0..0
        );
        // Bounds are inclusive: a single-entry database overlaps exactly the
        // run of queries equal to that entry.
        let single = SortedKmerDatabase::from_sorted_entries(21, vec![db.entries()[3].clone()]);
        let range = single.overlapping_query_range(&queries);
        for q in &queries[range] {
            assert_eq!(*q, db.entries()[3].kmer);
        }
    }

    #[test]
    fn first_and_last_kmer_are_the_key_bounds() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        assert_eq!(db.first_kmer(), db.kmers().next());
        assert_eq!(db.last_kmer(), db.kmers().last());
        assert!(db.first_kmer() < db.last_kmer());
        assert_eq!(SortedKmerDatabase::default().first_kmer(), None);
        assert_eq!(SortedKmerDatabase::default().last_kmer(), None);
    }

    #[test]
    fn partition_preserves_entries_and_order() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        let shards = db.partition(4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(SortedKmerDatabase::len).sum();
        assert_eq!(total, db.len());
        for s in &shards {
            assert!(s.is_sorted());
        }
    }

    #[test]
    fn encoded_bytes_scales_with_entries() {
        let db = SortedKmerDatabase::build(&refs(), 21);
        assert!(db.encoded_bytes() as usize >= db.len() * 6);
    }

    #[test]
    fn reference_index_locations_roundtrip() {
        let r = refs();
        let genome = &r.genomes()[0];
        let idx = ReferenceIndex::build(genome, 15);
        let kmer = KmerExtractor::new(genome.sequence(), 15)
            .nth(10)
            .unwrap()
            .canonical();
        let locs = idx.locations(kmer).expect("indexed seed");
        assert!(!locs.is_empty());
        assert_eq!(idx.taxid(), genome.taxid());
    }

    #[test]
    fn unified_index_merges_and_offsets() {
        let r = refs();
        let indexes: Vec<ReferenceIndex> = r
            .genomes()
            .iter()
            .take(3)
            .map(|g| ReferenceIndex::build(g, 15))
            .collect();
        let unified = UnifiedReferenceIndex::merge(&indexes);
        assert_eq!(unified.offsets().len(), 3);
        assert_eq!(unified.offsets()[0].1, 0);
        assert_eq!(unified.offsets()[1].1, 600);
        assert_eq!(unified.offsets()[2].1, 1200);
        // Every seed of every merged index must be resolvable.
        for idx in &indexes {
            for (kmer, _) in idx.entries().iter().take(20) {
                let locs = unified.locations(*kmer).expect("merged seed present");
                assert!(locs.iter().any(|l| l.taxid == idx.taxid()));
            }
        }
        // Position→taxon mapping respects offsets.
        assert_eq!(unified.taxon_of_position(0), Some(indexes[0].taxid()));
        assert_eq!(unified.taxon_of_position(650), Some(indexes[1].taxid()));
        assert_eq!(unified.taxon_of_position(1800), Some(indexes[2].taxid()));
    }

    #[test]
    fn unified_index_of_empty_input_is_empty() {
        let unified = UnifiedReferenceIndex::merge(&[]);
        assert!(unified.is_empty());
        assert!(unified.offsets().is_empty());
    }
}
