//! Analysis result types: presence/absence and relative abundance.
//!
//! Metagenomic analysis commonly involves two key tasks (§2.1 of the paper):
//! determining which species are present in a sample ([`PresenceResult`]) and
//! estimating their relative abundances ([`AbundanceProfile`]).

use std::collections::BTreeMap;
use std::fmt;

use crate::taxonomy::TaxId;

/// The set of taxa identified as present in a sample.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PresenceResult {
    present: Vec<TaxId>,
}

impl PresenceResult {
    /// Creates a presence result from an iterator of taxids (deduplicated and
    /// sorted).
    pub fn from_taxa<I: IntoIterator<Item = TaxId>>(taxa: I) -> PresenceResult {
        let mut present: Vec<TaxId> = taxa.into_iter().collect();
        present.sort();
        present.dedup();
        PresenceResult { present }
    }

    /// The sorted list of present taxa.
    pub fn taxa(&self) -> &[TaxId] {
        &self.present
    }

    /// Number of taxa reported present.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Returns `true` if no taxa were reported present.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Returns `true` if `taxid` was reported present.
    pub fn contains(&self, taxid: TaxId) -> bool {
        self.present.binary_search(&taxid).is_ok()
    }
}

impl fmt::Display for PresenceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} taxa present", self.present.len())
    }
}

impl FromIterator<TaxId> for PresenceResult {
    fn from_iter<I: IntoIterator<Item = TaxId>>(iter: I) -> PresenceResult {
        PresenceResult::from_taxa(iter)
    }
}

/// Relative abundances of taxa in a sample (fractions summing to 1 over the
/// reported taxa, unless the profile is empty).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbundanceProfile {
    abundances: BTreeMap<TaxId, f64>,
}

impl AbundanceProfile {
    /// Creates an empty profile.
    pub fn new() -> AbundanceProfile {
        AbundanceProfile::default()
    }

    /// Creates a profile from raw per-taxon counts, normalizing to fractions.
    pub fn from_counts<I: IntoIterator<Item = (TaxId, u64)>>(counts: I) -> AbundanceProfile {
        let mut abundances = BTreeMap::new();
        let mut total = 0u64;
        for (taxid, count) in counts {
            if count > 0 {
                *abundances.entry(taxid).or_insert(0.0) += count as f64;
                total += count;
            }
        }
        if total > 0 {
            for v in abundances.values_mut() {
                *v /= total as f64;
            }
        }
        AbundanceProfile { abundances }
    }

    /// Creates a profile directly from fractions, renormalizing so they sum
    /// to 1 (entries with non-positive weight are dropped).
    pub fn from_fractions<I: IntoIterator<Item = (TaxId, f64)>>(fractions: I) -> AbundanceProfile {
        let mut abundances = BTreeMap::new();
        let mut total = 0.0;
        for (taxid, frac) in fractions {
            if frac > 0.0 {
                *abundances.entry(taxid).or_insert(0.0) += frac;
                total += frac;
            }
        }
        if total > 0.0 {
            for v in abundances.values_mut() {
                *v /= total;
            }
        }
        AbundanceProfile { abundances }
    }

    /// Relative abundance of `taxid` (0.0 if absent).
    pub fn abundance(&self, taxid: TaxId) -> f64 {
        self.abundances.get(&taxid).copied().unwrap_or(0.0)
    }

    /// Number of taxa with non-zero abundance.
    pub fn len(&self) -> usize {
        self.abundances.len()
    }

    /// Returns `true` if the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.abundances.is_empty()
    }

    /// Iterates over `(taxid, abundance)` pairs in taxid order.
    pub fn iter(&self) -> impl Iterator<Item = (TaxId, f64)> + '_ {
        self.abundances.iter().map(|(t, a)| (*t, *a))
    }

    /// The taxa present in this profile.
    pub fn taxa(&self) -> Vec<TaxId> {
        self.abundances.keys().copied().collect()
    }

    /// Converts the profile to a presence/absence result (taxa above
    /// `threshold` relative abundance).
    pub fn to_presence(&self, threshold: f64) -> PresenceResult {
        PresenceResult::from_taxa(
            self.abundances
                .iter()
                .filter(|(_, &a)| a > threshold)
                .map(|(t, _)| *t),
        )
    }

    /// Sum of all abundances (1.0 for non-empty normalized profiles).
    pub fn total(&self) -> f64 {
        self.abundances.values().sum()
    }
}

/// Accumulates raw per-taxon counts — possibly arriving out of order as
/// partial results, e.g. per-device Step 3 read mapping — and normalizes
/// once at the end.
///
/// Counts are appended to a flat vector and grouped by a single
/// `sort_unstable` + run-length pass in [`AbundanceAccumulator::finish`]
/// (no per-item map insertion), so accumulation is allocation-light and the
/// result is a pure function of the recorded multiset: any interleaving of
/// partial results produces the same [`AbundanceProfile`].
#[derive(Debug, Clone, Default)]
pub struct AbundanceAccumulator {
    counts: Vec<(TaxId, u64)>,
}

impl AbundanceAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> AbundanceAccumulator {
        AbundanceAccumulator::default()
    }

    /// Records one occurrence of `taxid` (e.g. one mapped read).
    pub fn record(&mut self, taxid: TaxId) {
        self.counts.push((taxid, 1));
    }

    /// Adds `count` occurrences of `taxid`.
    pub fn add(&mut self, taxid: TaxId, count: u64) {
        if count > 0 {
            self.counts.push((taxid, count));
        }
    }

    /// Folds another accumulator's counts into this one (partial-result
    /// merging).
    pub fn merge(&mut self, other: AbundanceAccumulator) {
        self.counts.extend(other.counts);
    }

    /// Number of recorded (ungrouped) count entries.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Groups the recorded counts by taxon (sort + run-length sum) and
    /// normalizes them into an [`AbundanceProfile`].
    ///
    /// [`AbundanceProfile::from_counts`] would also sum duplicates, but one
    /// ordered-map operation per *recorded entry*; grouping the dense array
    /// first leaves it one per *distinct taxon*.
    pub fn finish(mut self) -> AbundanceProfile {
        self.counts.sort_unstable_by_key(|(taxid, _)| *taxid);
        let mut grouped: Vec<(TaxId, u64)> = Vec::new();
        for (taxid, count) in self.counts {
            match grouped.last_mut() {
                Some((last, total)) if *last == taxid => *total += count,
                _ => grouped.push((taxid, count)),
            }
        }
        AbundanceProfile::from_counts(grouped)
    }
}

impl fmt::Display for AbundanceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "abundance profile ({} taxa):", self.abundances.len())?;
        for (taxid, a) in &self.abundances {
            writeln!(f, "  {taxid}\t{:.4}", a)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presence_result_dedup_and_lookup() {
        let p = PresenceResult::from_taxa([TaxId(3), TaxId(1), TaxId(3), TaxId(2)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.taxa(), &[TaxId(1), TaxId(2), TaxId(3)]);
        assert!(p.contains(TaxId(2)));
        assert!(!p.contains(TaxId(9)));
    }

    #[test]
    fn abundance_from_counts_normalizes() {
        let p = AbundanceProfile::from_counts([(TaxId(1), 30), (TaxId(2), 70)]);
        assert!((p.abundance(TaxId(1)) - 0.3).abs() < 1e-12);
        assert!((p.abundance(TaxId(2)) - 0.7).abs() < 1e-12);
        assert!((p.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abundance_drops_zero_counts() {
        let p = AbundanceProfile::from_counts([(TaxId(1), 0), (TaxId(2), 5)]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.abundance(TaxId(1)), 0.0);
    }

    #[test]
    fn abundance_from_fractions_renormalizes() {
        let p = AbundanceProfile::from_fractions([(TaxId(1), 2.0), (TaxId(2), 2.0)]);
        assert!((p.abundance(TaxId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn to_presence_applies_threshold() {
        let p = AbundanceProfile::from_counts([(TaxId(1), 990), (TaxId(2), 10)]);
        let pres = p.to_presence(0.05);
        assert!(pres.contains(TaxId(1)));
        assert!(!pres.contains(TaxId(2)));
    }

    #[test]
    fn accumulator_matches_from_counts_regardless_of_order() {
        let mut a = AbundanceAccumulator::new();
        for t in [3u32, 1, 3, 2, 1, 3] {
            a.record(TaxId(t));
        }
        let mut b = AbundanceAccumulator::new();
        b.add(TaxId(2), 1);
        b.add(TaxId(3), 3);
        b.add(TaxId(1), 2);
        b.add(TaxId(9), 0); // zero counts are dropped
        let mut c = AbundanceAccumulator::new();
        c.add(TaxId(3), 2);
        let mut d = AbundanceAccumulator::new();
        d.add(TaxId(1), 2);
        d.add(TaxId(2), 1);
        d.add(TaxId(3), 1);
        c.merge(d);
        let expected = AbundanceProfile::from_counts([(TaxId(1), 2), (TaxId(2), 1), (TaxId(3), 3)]);
        assert_eq!(a.finish(), expected);
        assert_eq!(b.finish(), expected);
        assert_eq!(c.finish(), expected);
        assert!(AbundanceAccumulator::new().finish().is_empty());
    }

    #[test]
    fn empty_profile_behaviour() {
        let p = AbundanceProfile::new();
        assert!(p.is_empty());
        assert_eq!(p.total(), 0.0);
        assert!(p.to_presence(0.0).is_empty());
    }
}
