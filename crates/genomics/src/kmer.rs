//! k-mers and k-mer extraction.
//!
//! Metagenomic presence/absence identification in both MegIS and its baselines
//! operates on k-mers — length-`k` subsequences of reads and reference genomes
//! (§2.1.1 of the paper). The accuracy-optimized pipeline MegIS builds on uses
//! large k-mers (k = 60) so that a single match is highly specific; Kraken2-style
//! tools use k ≈ 35, and the sketch databases use variable-sized k-mers.
//!
//! A [`Kmer`] packs up to 64 bases into a `u128` (2 bits per base, first base in
//! the most significant position) so that integer comparison equals
//! lexicographic comparison — the property MegIS's sorted-stream intersection
//! and K-mer Sketch Streaming rely on.

use std::cmp::Ordering;
use std::fmt;

use crate::dna::{Base, PackedSequence};

/// Maximum supported k-mer length (bases) for the packed representation.
pub const MAX_K: usize = 60;

/// A fixed-length DNA substring packed into a `u128`.
///
/// The first base occupies the most significant 2 bits of the `2 * k`-bit
/// payload, so for k-mers of equal length, numeric order of the payload is
/// lexicographic order of the sequence.
///
/// # Example
///
/// ```
/// use megis_genomics::kmer::Kmer;
/// let a = Kmer::from_ascii(b"ACGT").unwrap();
/// let b = Kmer::from_ascii(b"ACTT").unwrap();
/// assert!(a < b);
/// assert_eq!(a.prefix(2), Kmer::from_ascii(b"AC").unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Kmer {
    bits: u128,
    k: u8,
}

impl Kmer {
    /// Creates a k-mer from a packed payload and length.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > MAX_K`, or `bits` has bits set above `2 * k`.
    pub fn from_bits(bits: u128, k: usize) -> Kmer {
        assert!(k > 0 && k <= MAX_K, "k must be in 1..={MAX_K}, got {k}");
        if k < 64 {
            assert!(
                bits < (1u128 << (2 * k)),
                "payload has bits beyond 2*k ({k})"
            );
        }
        Kmer { bits, k: k as u8 }
    }

    /// Parses a k-mer from ASCII.
    ///
    /// Returns `None` if the input is empty, longer than [`MAX_K`], or contains
    /// a character other than `ACGTacgt`.
    pub fn from_ascii(ascii: &[u8]) -> Option<Kmer> {
        if ascii.is_empty() || ascii.len() > MAX_K {
            return None;
        }
        let mut bits = 0u128;
        for &c in ascii {
            bits = (bits << 2) | Base::from_ascii(c)?.code() as u128;
        }
        Some(Kmer {
            bits,
            k: ascii.len() as u8,
        })
    }

    /// Builds a k-mer from a slice of bases.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty or longer than [`MAX_K`].
    pub fn from_bases(bases: &[Base]) -> Kmer {
        assert!(!bases.is_empty() && bases.len() <= MAX_K);
        let mut bits = 0u128;
        for &b in bases {
            bits = (bits << 2) | b.code() as u128;
        }
        Kmer {
            bits,
            k: bases.len() as u8,
        }
    }

    /// The k-mer length in bases.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// The packed 2-bit payload (first base in the most significant position).
    #[inline]
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// Returns the base at position `i` (0 = first base).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.k()`.
    #[inline]
    pub fn base(&self, i: usize) -> Base {
        assert!(i < self.k(), "base index out of range");
        let shift = 2 * (self.k() - 1 - i);
        Base::from_code(((self.bits >> shift) & 0b11) as u8)
    }

    /// Returns the length-`j` prefix of this k-mer.
    ///
    /// This is the operation MegIS's Index Generator performs when matching
    /// smaller (k < k_max) sketch entries against the intersecting k-mers
    /// (§4.3.2).
    ///
    /// # Panics
    ///
    /// Panics if `j == 0` or `j > self.k()`.
    #[inline]
    pub fn prefix(&self, j: usize) -> Kmer {
        assert!(j > 0 && j <= self.k(), "prefix length out of range");
        Kmer {
            bits: self.bits >> (2 * (self.k() - j)),
            k: j as u8,
        }
    }

    /// Returns the reverse complement of this k-mer.
    pub fn reverse_complement(&self) -> Kmer {
        let mut bits = 0u128;
        for i in (0..self.k()).rev() {
            bits = (bits << 2) | self.base(i).complement().code() as u128;
        }
        Kmer { bits, k: self.k }
    }

    /// Returns the lexicographically smaller of this k-mer and its reverse
    /// complement (the *canonical* form used when strand is unknown).
    pub fn canonical(&self) -> Kmer {
        let rc = self.reverse_complement();
        if rc.bits < self.bits {
            rc
        } else {
            *self
        }
    }

    /// Appends `base` on the right and drops the leftmost base (rolling
    /// update used by the extractor).
    #[inline]
    pub fn roll(&self, base: Base) -> Kmer {
        let mask = if self.k() == 64 {
            u128::MAX
        } else {
            (1u128 << (2 * self.k())) - 1
        };
        Kmer {
            bits: ((self.bits << 2) | base.code() as u128) & mask,
            k: self.k,
        }
    }

    /// Converts the k-mer to a packed sequence.
    pub fn to_sequence(&self) -> PackedSequence {
        (0..self.k()).map(|i| self.base(i)).collect()
    }

    /// Size of this k-mer in the 2-bit on-disk encoding, rounded up to bytes.
    #[inline]
    pub fn encoded_bytes(&self) -> usize {
        (2 * self.k()).div_ceil(8)
    }
}

impl PartialOrd for Kmer {
    fn partial_cmp(&self, other: &Kmer) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Kmer {
    /// Lexicographic order: compare base by base; a proper prefix sorts before
    /// any extension of it (matching the order of the sorted databases MegIS
    /// streams through).
    fn cmp(&self, other: &Kmer) -> Ordering {
        let common = self.k().min(other.k());
        let a = self.prefix(common).bits;
        let b = other.prefix(common).bits;
        a.cmp(&b).then_with(|| self.k().cmp(&other.k()))
    }
}

impl fmt::Display for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.k() {
            write!(f, "{}", self.base(i))?;
        }
        Ok(())
    }
}

/// Iterator over every k-mer of a sequence, in read order.
///
/// Produced k-mers are *forward strand only*; use [`CanonicalKmerExtractor`]
/// when strand-insensitive matching is needed.
///
/// # Example
///
/// ```
/// use megis_genomics::dna::PackedSequence;
/// use megis_genomics::kmer::KmerExtractor;
/// let seq = PackedSequence::from_ascii(b"ACGTAC").unwrap();
/// let kmers: Vec<String> = KmerExtractor::new(&seq, 4).map(|k| k.to_string()).collect();
/// assert_eq!(kmers, vec!["ACGT", "CGTA", "GTAC"]);
/// ```
#[derive(Debug, Clone)]
pub struct KmerExtractor<'a> {
    seq: &'a PackedSequence,
    k: usize,
    pos: usize,
    current: Option<Kmer>,
}

impl<'a> KmerExtractor<'a> {
    /// Creates an extractor over `seq` producing k-mers of length `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > MAX_K`.
    pub fn new(seq: &'a PackedSequence, k: usize) -> Self {
        assert!(k > 0 && k <= MAX_K, "k must be in 1..={MAX_K}");
        KmerExtractor {
            seq,
            k,
            pos: 0,
            current: None,
        }
    }
}

impl Iterator for KmerExtractor<'_> {
    type Item = Kmer;

    fn next(&mut self) -> Option<Kmer> {
        if self.seq.len() < self.k || self.pos + self.k > self.seq.len() {
            return None;
        }
        let kmer = match self.current {
            None => {
                let bases: Vec<Base> = (0..self.k).map(|i| self.seq.get(i)).collect();
                Kmer::from_bases(&bases)
            }
            Some(prev) => prev.roll(self.seq.get(self.pos + self.k - 1)),
        };
        self.current = Some(kmer);
        self.pos += 1;
        Some(kmer)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let total = if self.seq.len() >= self.k {
            self.seq.len() - self.k + 1
        } else {
            0
        };
        let remaining = total.saturating_sub(self.pos);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for KmerExtractor<'_> {}

/// Iterator over the canonical k-mers of a sequence (minimum of each k-mer and
/// its reverse complement), created with [`CanonicalKmerExtractor::new`].
#[derive(Debug, Clone)]
pub struct CanonicalKmerExtractor<'a> {
    inner: KmerExtractor<'a>,
}

impl<'a> CanonicalKmerExtractor<'a> {
    /// Creates a canonical-k-mer extractor over `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > MAX_K`.
    pub fn new(seq: &'a PackedSequence, k: usize) -> Self {
        CanonicalKmerExtractor {
            inner: KmerExtractor::new(seq, k),
        }
    }
}

impl Iterator for CanonicalKmerExtractor<'_> {
    type Item = Kmer;

    fn next(&mut self) -> Option<Kmer> {
        self.inner.next().map(|k| k.canonical())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for CanonicalKmerExtractor<'_> {}

/// Number of k-mers a read of `read_len` bases yields for a given `k`
/// (zero if the read is shorter than `k`).
#[inline]
pub fn kmers_per_read(read_len: usize, k: usize) -> usize {
    read_len
        .saturating_sub(k)
        .saturating_add(if read_len >= k { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmer_from_ascii_roundtrip() {
        let k = Kmer::from_ascii(b"ACGTTGCA").unwrap();
        assert_eq!(k.k(), 8);
        assert_eq!(k.to_string(), "ACGTTGCA");
    }

    #[test]
    fn kmer_rejects_invalid_inputs() {
        assert!(Kmer::from_ascii(b"").is_none());
        assert!(Kmer::from_ascii(b"ACGN").is_none());
        assert!(Kmer::from_ascii(&[b'A'; 61]).is_none());
        assert!(Kmer::from_ascii(&[b'A'; 60]).is_some());
    }

    #[test]
    fn kmer_order_is_lexicographic() {
        let kmers = ["AAAA", "AAAC", "AACA", "ACGT", "CAAA", "TTTT"];
        for w in kmers.windows(2) {
            let a = Kmer::from_ascii(w[0].as_bytes()).unwrap();
            let b = Kmer::from_ascii(w[1].as_bytes()).unwrap();
            assert!(a < b, "{} should sort before {}", w[0], w[1]);
        }
    }

    #[test]
    fn prefix_sorts_before_extension() {
        let short = Kmer::from_ascii(b"ACG").unwrap();
        let long = Kmer::from_ascii(b"ACGA").unwrap();
        assert!(short < long);
        assert_eq!(long.prefix(3), short);
    }

    #[test]
    fn prefix_of_60mer() {
        let seq: Vec<u8> = (0..60).map(|i| b"ACGT"[i % 4]).collect();
        let k60 = Kmer::from_ascii(&seq).unwrap();
        let p = k60.prefix(4);
        assert_eq!(p.to_string(), "ACGT");
    }

    #[test]
    fn roll_matches_extraction() {
        let seq = PackedSequence::from_ascii(b"ACGTACGTT").unwrap();
        let mut ex = KmerExtractor::new(&seq, 5);
        let first = ex.next().unwrap();
        let second = ex.next().unwrap();
        assert_eq!(first.roll(seq.get(5)), second);
    }

    #[test]
    fn extractor_counts_and_contents() {
        let seq = PackedSequence::from_ascii(b"ACGTAC").unwrap();
        let kmers: Vec<String> = KmerExtractor::new(&seq, 4).map(|k| k.to_string()).collect();
        assert_eq!(kmers, vec!["ACGT", "CGTA", "GTAC"]);
        assert_eq!(KmerExtractor::new(&seq, 7).count(), 0);
        assert_eq!(KmerExtractor::new(&seq, 6).count(), 1);
    }

    #[test]
    fn canonical_extractor_is_strand_symmetric() {
        let seq = PackedSequence::from_ascii(b"ACGGTTACAGT").unwrap();
        let rc = seq.reverse_complement();
        let mut fwd: Vec<Kmer> = CanonicalKmerExtractor::new(&seq, 5).collect();
        let mut rev: Vec<Kmer> = CanonicalKmerExtractor::new(&rc, 5).collect();
        fwd.sort();
        rev.sort();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn canonical_is_min_of_strands() {
        let k = Kmer::from_ascii(b"TTTT").unwrap();
        assert_eq!(k.canonical().to_string(), "AAAA");
        let k = Kmer::from_ascii(b"AAAA").unwrap();
        assert_eq!(k.canonical().to_string(), "AAAA");
    }

    #[test]
    fn kmers_per_read_helper() {
        assert_eq!(kmers_per_read(150, 31), 120);
        assert_eq!(kmers_per_read(150, 60), 91);
        assert_eq!(kmers_per_read(30, 31), 0);
        assert_eq!(kmers_per_read(31, 31), 1);
    }

    #[test]
    fn encoded_bytes_matches_two_bit_encoding() {
        assert_eq!(Kmer::from_ascii(b"ACGT").unwrap().encoded_bytes(), 1);
        assert_eq!(Kmer::from_ascii(b"ACGTA").unwrap().encoded_bytes(), 2);
        let seq: Vec<u8> = (0..60).map(|_| b'A').collect();
        assert_eq!(Kmer::from_ascii(&seq).unwrap().encoded_bytes(), 15);
    }
}
