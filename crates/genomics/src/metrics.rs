//! Accuracy metrics for metagenomic analysis.
//!
//! The paper compares tools with F1 score for presence/absence identification
//! and L1 norm error for abundance estimation (§5: the accuracy-optimized
//! baseline achieves 4.6–5.2× higher F1 and 3–24% lower L1 error than the
//! performance-optimized baseline; MegIS matches the accuracy-optimized tool
//! exactly). This module computes those metrics against ground truth.

use crate::profile::{AbundanceProfile, PresenceResult};
use crate::taxonomy::TaxId;

/// Precision / recall / F1 for presence/absence identification.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassificationMetrics {
    /// True positives: species correctly identified as present.
    pub true_positives: usize,
    /// False positives: species reported present but actually absent.
    pub false_positives: usize,
    /// False negatives: species actually present but not reported.
    pub false_negatives: usize,
}

impl ClassificationMetrics {
    /// Scores a predicted presence result against the ground-truth set.
    pub fn score(predicted: &PresenceResult, truth: &PresenceResult) -> ClassificationMetrics {
        let tp = predicted
            .taxa()
            .iter()
            .filter(|t| truth.contains(**t))
            .count();
        let fp = predicted.len() - tp;
        let fn_ = truth
            .taxa()
            .iter()
            .filter(|t| !predicted.contains(**t))
            .count();
        ClassificationMetrics {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
        }
    }

    /// Precision = TP / (TP + FP); 0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall (true-positive rate) = TP / (TP + FN); 0 when truth is empty.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score — harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// L1 norm error between abundance profiles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AbundanceError {
    /// Sum over all taxa of |predicted − truth| (ranges 0..=2 for normalized
    /// profiles).
    pub l1_norm: f64,
}

impl AbundanceError {
    /// Computes the L1 error of `predicted` against `truth`.
    pub fn score(predicted: &AbundanceProfile, truth: &AbundanceProfile) -> AbundanceError {
        let mut taxa: Vec<TaxId> = truth.taxa();
        taxa.extend(predicted.taxa());
        taxa.sort();
        taxa.dedup();
        let l1 = taxa
            .iter()
            .map(|t| (predicted.abundance(*t) - truth.abundance(*t)).abs())
            .sum();
        AbundanceError { l1_norm: l1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let truth = PresenceResult::from_taxa([TaxId(1), TaxId(2)]);
        let m = ClassificationMetrics::score(&truth, &truth);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn false_positives_reduce_precision_only() {
        let truth = PresenceResult::from_taxa([TaxId(1), TaxId(2)]);
        let pred = PresenceResult::from_taxa([TaxId(1), TaxId(2), TaxId(3), TaxId(4)]);
        let m = ClassificationMetrics::score(&pred, &truth);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(), 0.5);
        assert!(m.f1() > 0.6 && m.f1() < 0.7);
    }

    #[test]
    fn false_negatives_reduce_recall_only() {
        let truth = PresenceResult::from_taxa([TaxId(1), TaxId(2), TaxId(3), TaxId(4)]);
        let pred = PresenceResult::from_taxa([TaxId(1)]);
        let m = ClassificationMetrics::score(&pred, &truth);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 0.25);
    }

    #[test]
    fn empty_prediction_scores_zero() {
        let truth = PresenceResult::from_taxa([TaxId(1)]);
        let pred = PresenceResult::default();
        let m = ClassificationMetrics::score(&pred, &truth);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn l1_error_of_identical_profiles_is_zero() {
        let p = AbundanceProfile::from_counts([(TaxId(1), 3), (TaxId(2), 7)]);
        assert_eq!(AbundanceError::score(&p, &p).l1_norm, 0.0);
    }

    #[test]
    fn l1_error_of_disjoint_profiles_is_two() {
        let a = AbundanceProfile::from_counts([(TaxId(1), 1)]);
        let b = AbundanceProfile::from_counts([(TaxId(2), 1)]);
        assert!((AbundanceError::score(&a, &b).l1_norm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn l1_error_partial_overlap() {
        let truth = AbundanceProfile::from_fractions([(TaxId(1), 0.5), (TaxId(2), 0.5)]);
        let pred = AbundanceProfile::from_fractions([(TaxId(1), 0.75), (TaxId(2), 0.25)]);
        let e = AbundanceError::score(&pred, &truth);
        assert!((e.l1_norm - 0.5).abs() < 1e-12);
    }
}
