//! Synthetic metagenomic communities and read simulation.
//!
//! The paper evaluates on three read sets from the CAMI benchmark with low,
//! medium, and high genetic diversity (CAMI-L/M/H, 100 million reads each).
//! Real CAMI data is not redistributable here, so this module generates
//! synthetic communities whose key property — genetic diversity, i.e. the
//! number of species present and the evenness of their abundances — mirrors
//! those presets. The presets also carry the *paper-scale* parameters (100 M
//! reads, extracted-k-mer set sizes) consumed by the performance model, while
//! `build` produces small functional samples used by tests and examples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dna::Base;
use crate::profile::{AbundanceProfile, PresenceResult};
use crate::read::{Read, ReadSet};
use crate::reference::ReferenceCollection;
use crate::taxonomy::TaxId;

/// Genetic diversity preset mirroring the CAMI query sets used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Diversity {
    /// CAMI-L: few species, skewed abundances.
    Low,
    /// CAMI-M: moderate species count and evenness.
    Medium,
    /// CAMI-H: many species, more even abundances.
    High,
}

impl Diversity {
    /// All presets, in paper order.
    pub const ALL: [Diversity; 3] = [Diversity::Low, Diversity::Medium, Diversity::High];

    /// Short label used in figures ("CAMI-L" etc.).
    pub fn label(self) -> &'static str {
        match self {
            Diversity::Low => "CAMI-L",
            Diversity::Medium => "CAMI-M",
            Diversity::High => "CAMI-H",
        }
    }

    /// Fraction of database species present in a sample of this diversity —
    /// drives how many sketch lookups the baseline taxID retrieval performs
    /// (the paper observes MegIS's speedup grows with diversity, §6.1).
    pub fn species_fraction(self) -> f64 {
        match self {
            Diversity::Low => 0.04,
            Diversity::Medium => 0.12,
            Diversity::High => 0.30,
        }
    }

    /// Skew of the abundance distribution (higher = more dominated by a few
    /// species).
    pub fn abundance_skew(self) -> f64 {
        match self {
            Diversity::Low => 1.6,
            Diversity::Medium => 1.2,
            Diversity::High => 0.8,
        }
    }
}

impl std::fmt::Display for Diversity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Paper-scale workload parameters attached to each diversity preset,
/// consumed by the performance model (not by the functional pipeline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperScale {
    /// Number of reads in the query sample (100 million in the paper).
    pub reads: u64,
    /// Read length in bases (short reads).
    pub read_len: u64,
    /// Size of all k-mers extracted from the sample before exclusion
    /// (the paper reports ~60 GB on average for CAMI read sets, §4.2).
    pub extracted_kmer_bytes: u64,
    /// Size of the k-mer set that proceeds to Step 2 after exclusion
    /// (~6.5 GB on average in the paper, §4.2.3).
    pub selected_kmer_bytes: u64,
}

impl PaperScale {
    /// Paper-scale parameters for a diversity preset.
    pub fn for_diversity(d: Diversity) -> PaperScale {
        // All CAMI read sets have 100M reads; extracted k-mer volume grows
        // mildly with diversity (more distinct sequence content).
        let (extracted, selected) = match d {
            Diversity::Low => (55.0, 5.5),
            Diversity::Medium => (60.0, 6.5),
            Diversity::High => (68.0, 8.0),
        };
        PaperScale {
            reads: 100_000_000,
            read_len: 150,
            extracted_kmer_bytes: (extracted * 1e9) as u64,
            selected_kmer_bytes: (selected * 1e9) as u64,
        }
    }
}

/// Configuration for building a synthetic community.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityConfig {
    diversity: Diversity,
    species: usize,
    reads: usize,
    read_len: usize,
    genome_len: usize,
    error_rate: f64,
    database_species: usize,
}

impl CommunityConfig {
    /// Creates a configuration for the given diversity preset with small,
    /// test-friendly defaults.
    pub fn preset(diversity: Diversity) -> CommunityConfig {
        let database_species = 32;
        let species = ((database_species as f64) * diversity.species_fraction())
            .round()
            .max(2.0) as usize;
        CommunityConfig {
            diversity,
            species,
            reads: 500,
            read_len: 150,
            genome_len: 2_000,
            error_rate: 0.002,
            database_species,
        }
    }

    /// Sets the number of species present in the sample.
    pub fn with_species(mut self, species: usize) -> Self {
        self.species = species.max(1);
        self
    }

    /// Sets the number of reads to simulate.
    pub fn with_reads(mut self, reads: usize) -> Self {
        self.reads = reads;
        self
    }

    /// Sets the read length.
    pub fn with_read_len(mut self, read_len: usize) -> Self {
        self.read_len = read_len;
        self
    }

    /// Sets the per-species genome length.
    pub fn with_genome_len(mut self, genome_len: usize) -> Self {
        self.genome_len = genome_len;
        self
    }

    /// Sets the per-base sequencing error rate.
    pub fn with_error_rate(mut self, error_rate: f64) -> Self {
        self.error_rate = error_rate.clamp(0.0, 0.5);
        self
    }

    /// Sets how many species the *reference database* contains (a superset of
    /// the species present in the sample).
    pub fn with_database_species(mut self, database_species: usize) -> Self {
        self.database_species = database_species;
        self
    }

    /// The diversity preset of this configuration.
    pub fn diversity(&self) -> Diversity {
        self.diversity
    }

    /// Builds the community (reference collection + ground-truth profile +
    /// simulated reads) deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Community {
        self.build_cohort_sample(seed, seed)
    }

    /// Builds a community whose references are determined by `seed` but whose
    /// sample is simulated from an independent `read_seed`. Communities built
    /// with the same `seed` share identical reference genomes, so many
    /// distinct samples can be drawn against one shared database — the
    /// multi-sample use case of §4.7.
    pub fn build_cohort_sample(&self, seed: u64, read_seed: u64) -> Community {
        let db_species = self.database_species.max(self.species);
        let references = ReferenceCollection::synthetic(db_species, self.genome_len, seed);
        let mut rng = StdRng::seed_from_u64(read_seed ^ 0x5eed_5a4d);

        // Choose which species are present and their abundances (power-law
        // with the preset's skew).
        let all_species = references.species();
        let mut chosen = all_species.clone();
        partial_shuffle(&mut chosen, &mut rng);
        chosen.truncate(self.species.min(all_species.len()));
        chosen.sort();

        let skew = self.diversity.abundance_skew();
        let weights: Vec<f64> = (0..chosen.len())
            .map(|i| 1.0 / ((i + 1) as f64).powf(skew))
            .collect();
        let truth_profile =
            AbundanceProfile::from_fractions(chosen.iter().copied().zip(weights.iter().copied()));

        // Simulate reads proportional to abundance.
        let mut reads = ReadSet::new();
        for i in 0..self.reads {
            let taxid = sample_taxon(&chosen, &weights, &mut rng);
            let genome = references
                .genome_for(taxid)
                .expect("chosen species has a genome");
            let max_start = genome.len().saturating_sub(self.read_len);
            let start = if max_start == 0 {
                0
            } else {
                rng.gen_range(0..=max_start)
            };
            let len = self.read_len.min(genome.len());
            let mut seq = genome.sequence().subsequence(start, len);
            // Apply sequencing errors.
            if self.error_rate > 0.0 {
                let mut mutated = crate::dna::PackedSequence::with_capacity(seq.len());
                for b in seq.iter() {
                    if rng.gen_bool(self.error_rate) {
                        mutated.push(Base::from_code(rng.gen_range(0..4)));
                    } else {
                        mutated.push(b);
                    }
                }
                seq = mutated;
            }
            // Half of the reads come from the reverse strand.
            if rng.gen_bool(0.5) {
                seq = seq.reverse_complement();
            }
            reads.push(Read::with_truth(format!("read_{i}"), seq, taxid));
        }

        Community {
            diversity: self.diversity,
            references,
            truth_profile,
            sample: Sample { reads },
        }
    }
}

/// A complete synthetic community: references, ground truth, and the sample.
#[derive(Debug, Clone)]
pub struct Community {
    diversity: Diversity,
    references: ReferenceCollection,
    truth_profile: AbundanceProfile,
    sample: Sample,
}

impl Community {
    /// The diversity preset this community was built from.
    pub fn diversity(&self) -> Diversity {
        self.diversity
    }

    /// The reference collection databases are built from.
    pub fn references(&self) -> &ReferenceCollection {
        &self.references
    }

    /// Ground-truth abundance profile.
    pub fn truth_profile(&self) -> &AbundanceProfile {
        &self.truth_profile
    }

    /// Ground-truth presence/absence.
    pub fn truth_presence(&self) -> PresenceResult {
        self.truth_profile.to_presence(0.0)
    }

    /// The simulated sample.
    pub fn sample(&self) -> &Sample {
        &self.sample
    }
}

/// A sequenced metagenomic sample (read set).
#[derive(Debug, Clone, Default)]
pub struct Sample {
    reads: ReadSet,
}

impl Sample {
    /// Creates a sample from a read set.
    pub fn from_reads(reads: ReadSet) -> Sample {
        Sample { reads }
    }

    /// The reads in the sample.
    pub fn reads(&self) -> &ReadSet {
        &self.reads
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Returns `true` if the sample has no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Ground-truth abundance profile computed from the reads' recorded
    /// origins (available only for synthetic samples).
    pub fn truth_from_reads(&self) -> AbundanceProfile {
        let mut counts: std::collections::BTreeMap<TaxId, u64> = std::collections::BTreeMap::new();
        for r in self.reads.iter() {
            if let Some(t) = r.truth() {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        AbundanceProfile::from_counts(counts)
    }
}

fn partial_shuffle(items: &mut [TaxId], rng: &mut StdRng) {
    let n = items.len();
    for i in 0..n {
        let j = rng.gen_range(i..n);
        items.swap(i, j);
    }
}

fn sample_taxon(taxa: &[TaxId], weights: &[f64], rng: &mut StdRng) -> TaxId {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (t, w) in taxa.iter().zip(weights) {
        if x < *w {
            return *t;
        }
        x -= w;
    }
    *taxa.last().expect("non-empty taxa")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_increasing_diversity() {
        assert!(Diversity::Low.species_fraction() < Diversity::Medium.species_fraction());
        assert!(Diversity::Medium.species_fraction() < Diversity::High.species_fraction());
    }

    #[test]
    fn paper_scale_parameters_match_paper() {
        let p = PaperScale::for_diversity(Diversity::Medium);
        assert_eq!(p.reads, 100_000_000);
        assert_eq!(p.extracted_kmer_bytes, 60_000_000_000);
        assert_eq!(p.selected_kmer_bytes, 6_500_000_000);
    }

    #[test]
    fn community_build_is_deterministic() {
        let cfg = CommunityConfig::preset(Diversity::Low).with_reads(50);
        let a = cfg.build(9);
        let b = cfg.build(9);
        assert_eq!(
            a.sample().reads().reads()[0].sequence(),
            b.sample().reads().reads()[0].sequence()
        );
    }

    #[test]
    fn cohort_samples_share_references_but_differ_in_reads() {
        let cfg = CommunityConfig::preset(Diversity::Low).with_reads(50);
        let a = cfg.build_cohort_sample(9, 1);
        let b = cfg.build_cohort_sample(9, 2);
        assert_eq!(
            a.references().genomes()[0].sequence().to_ascii(),
            b.references().genomes()[0].sequence().to_ascii(),
            "same seed must give identical references"
        );
        assert_ne!(
            a.sample().reads().reads()[0].sequence(),
            b.sample().reads().reads()[0].sequence(),
            "different read seeds must give different samples"
        );
        // build(seed) is the read_seed == seed special case.
        let c = cfg.build_cohort_sample(9, 9);
        let d = cfg.build(9);
        assert_eq!(
            c.sample().reads().reads()[0].sequence(),
            d.sample().reads().reads()[0].sequence()
        );
    }

    #[test]
    fn community_reads_have_truth_in_profile() {
        let cfg = CommunityConfig::preset(Diversity::Medium)
            .with_reads(100)
            .with_species(5);
        let c = cfg.build(11);
        assert_eq!(c.sample().len(), 100);
        let truth_taxa = c.truth_presence();
        for r in c.sample().reads().iter() {
            let t = r.truth().expect("synthetic reads carry truth");
            assert!(truth_taxa.contains(t), "read origin {t} missing from truth");
        }
    }

    #[test]
    fn database_is_superset_of_sample_species() {
        let cfg = CommunityConfig::preset(Diversity::High)
            .with_reads(20)
            .with_database_species(24);
        let c = cfg.build(3);
        assert!(c.references().species().len() >= c.truth_presence().len());
    }

    #[test]
    fn read_length_and_error_rate_respected() {
        let cfg = CommunityConfig::preset(Diversity::Low)
            .with_reads(30)
            .with_read_len(80)
            .with_error_rate(0.0);
        let c = cfg.build(5);
        for r in c.sample().reads().iter() {
            assert_eq!(r.len(), 80);
        }
    }

    #[test]
    fn higher_diversity_yields_more_species() {
        let low = CommunityConfig::preset(Diversity::Low).build(17);
        let high = CommunityConfig::preset(Diversity::High).build(17);
        assert!(high.truth_presence().len() > low.truth_presence().len());
    }

    #[test]
    fn truth_from_reads_approximates_profile() {
        let cfg = CommunityConfig::preset(Diversity::Low)
            .with_reads(2_000)
            .with_species(3);
        let c = cfg.build(23);
        let empirical = c.sample().truth_from_reads();
        let err = crate::metrics::AbundanceError::score(&empirical, c.truth_profile());
        assert!(
            err.l1_norm < 0.15,
            "empirical profile too far from truth: {}",
            err.l1_norm
        );
    }
}
