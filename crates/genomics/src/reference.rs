//! Reference genomes and reference collections.
//!
//! Metagenomic databases are built from large collections of reference genomes
//! of known species (the paper uses 155,442 genomes for 52,961 microbial
//! species drawn from NCBI). This module provides the [`ReferenceGenome`] and
//! [`ReferenceCollection`] types plus a deterministic synthetic generator used
//! throughout the workspace when real genome collections are unavailable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dna::{Base, PackedSequence};
use crate::taxonomy::{Rank, TaxId, Taxonomy};

/// A single reference genome with its taxonomic label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceGenome {
    taxid: TaxId,
    name: String,
    sequence: PackedSequence,
}

impl ReferenceGenome {
    /// Creates a reference genome.
    pub fn new(taxid: TaxId, name: impl Into<String>, sequence: PackedSequence) -> Self {
        ReferenceGenome {
            taxid,
            name: name.into(),
            sequence,
        }
    }

    /// The taxon this genome belongs to.
    pub fn taxid(&self) -> TaxId {
        self.taxid
    }

    /// Human-readable genome name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The genome sequence.
    pub fn sequence(&self) -> &PackedSequence {
        &self.sequence
    }

    /// Genome length in bases.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Returns `true` if the genome has zero length.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

/// A collection of reference genomes together with their taxonomy.
///
/// This is the input to database construction for every tool in the workspace
/// (the R-Qry hash-table database, the S-Qry sorted k-mer database, sketch
/// databases, and per-species mapping indexes).
#[derive(Debug, Clone)]
pub struct ReferenceCollection {
    genomes: Vec<ReferenceGenome>,
    taxonomy: Taxonomy,
}

impl ReferenceCollection {
    /// Creates a collection from genomes and their taxonomy.
    pub fn new(genomes: Vec<ReferenceGenome>, taxonomy: Taxonomy) -> Self {
        ReferenceCollection { genomes, taxonomy }
    }

    /// The genomes in the collection.
    pub fn genomes(&self) -> &[ReferenceGenome] {
        &self.genomes
    }

    /// The taxonomy the genomes are labelled against.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Number of genomes.
    pub fn len(&self) -> usize {
        self.genomes.len()
    }

    /// Returns `true` if the collection has no genomes.
    pub fn is_empty(&self) -> bool {
        self.genomes.is_empty()
    }

    /// All distinct species-level taxids present in the collection, sorted.
    pub fn species(&self) -> Vec<TaxId> {
        let mut ids: Vec<TaxId> = self.genomes.iter().map(|g| g.taxid).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Total bases across all genomes.
    pub fn total_bases(&self) -> usize {
        self.genomes.iter().map(ReferenceGenome::len).sum()
    }

    /// Returns the genome for a taxid, if present.
    pub fn genome_for(&self, taxid: TaxId) -> Option<&ReferenceGenome> {
        self.genomes.iter().find(|g| g.taxid == taxid)
    }

    /// Returns a reduced collection keeping only every `stride`-th genome.
    ///
    /// This models the *sampling* techniques some tools use to shrink their
    /// databases at the cost of accuracy (§1 and §3.2 of the paper): the
    /// performance-optimized baseline is built from a poorer genome collection
    /// than the accuracy-optimized one.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn subsample(&self, stride: usize) -> ReferenceCollection {
        assert!(stride > 0, "stride must be positive");
        let genomes = self
            .genomes
            .iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(_, g)| g.clone())
            .collect();
        ReferenceCollection {
            genomes,
            taxonomy: self.taxonomy.clone(),
        }
    }

    /// Generates a deterministic synthetic reference collection.
    ///
    /// `species_count` species are created under a synthetic taxonomy (grouped
    /// into genera of 8); each species gets one genome of `genome_len` bases.
    /// Genomes within a genus share a common ancestral backbone with per-species
    /// mutations so that related species share k-mers — this is what makes LCA
    /// classification and sketch-based identification behave realistically.
    pub fn synthetic(species_count: usize, genome_len: usize, seed: u64) -> ReferenceCollection {
        let species_per_genus = 8;
        let genera = species_count.div_ceil(species_per_genus);
        let taxonomy = Taxonomy::synthetic(genera, species_per_genus);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genomes = Vec::with_capacity(species_count);

        let species_ids = taxonomy.ids_at_rank(Rank::Species);
        let mut created = 0;
        for g in 0..genera {
            // Ancestral backbone for this genus.
            let backbone: Vec<Base> = (0..genome_len)
                .map(|_| Base::from_code(rng.gen_range(0..4)))
                .collect();
            for s in 0..species_per_genus {
                if created >= species_count {
                    break;
                }
                let taxid = TaxId(1000 * (g as u32 + 1) + s as u32 + 1);
                debug_assert!(species_ids.contains(&taxid));
                // Mutate ~5% of positions per species: species in a genus
                // still share most of their sequence (genus-level k-mers for
                // small k), while long k-mers (k ≥ 30) are largely
                // species-specific — mirroring why large k-mers give the
                // S-Qry flow its specificity.
                let mut seq = PackedSequence::with_capacity(genome_len);
                for &b in &backbone {
                    if rng.gen_bool(0.05) {
                        seq.push(Base::from_code(rng.gen_range(0..4)));
                    } else {
                        seq.push(b);
                    }
                }
                genomes.push(ReferenceGenome::new(
                    taxid,
                    format!("synthetic genome g{g} s{s}"),
                    seq,
                ));
                created += 1;
            }
        }
        ReferenceCollection { genomes, taxonomy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_collection_shape() {
        let rc = ReferenceCollection::synthetic(10, 500, 7);
        assert_eq!(rc.len(), 10);
        assert_eq!(rc.species().len(), 10);
        assert_eq!(rc.total_bases(), 10 * 500);
        for g in rc.genomes() {
            assert_eq!(g.len(), 500);
            assert!(rc.taxonomy().contains(g.taxid()));
        }
    }

    #[test]
    fn synthetic_collection_is_deterministic() {
        let a = ReferenceCollection::synthetic(6, 300, 123);
        let b = ReferenceCollection::synthetic(6, 300, 123);
        for (ga, gb) in a.genomes().iter().zip(b.genomes()) {
            assert_eq!(ga.sequence(), gb.sequence());
        }
        let c = ReferenceCollection::synthetic(6, 300, 124);
        assert_ne!(a.genomes()[0].sequence(), c.genomes()[0].sequence());
    }

    #[test]
    fn same_genus_species_share_sequence_content() {
        let rc = ReferenceCollection::synthetic(8, 1000, 5);
        let a = rc.genomes()[0].sequence();
        let b = rc.genomes()[1].sequence();
        let matches = a.iter().zip(b.iter()).filter(|(x, y)| x == y).count();
        // ~90% of positions should match (two independent 5% mutation passes).
        assert!(
            matches > 820,
            "expected shared backbone, got {matches}/1000"
        );
    }

    #[test]
    fn subsample_reduces_collection() {
        let rc = ReferenceCollection::synthetic(12, 200, 1);
        let sub = rc.subsample(3);
        assert_eq!(sub.len(), 4);
        assert!(sub.total_bases() < rc.total_bases());
    }

    #[test]
    fn genome_lookup_by_taxid() {
        let rc = ReferenceCollection::synthetic(4, 100, 2);
        let first = rc.genomes()[0].taxid();
        assert!(rc.genome_for(first).is_some());
        assert!(rc.genome_for(TaxId(999_999)).is_none());
    }
}
