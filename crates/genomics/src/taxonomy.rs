//! Taxonomic identifiers and a taxonomy tree with LCA queries.
//!
//! Metagenomic databases associate each indexed k-mer with a *taxID* — an
//! integer attributed to a cluster of related species (§2.1.1 of the paper).
//! Kraken2-style classification assigns a read to the lowest common ancestor
//! (LCA) of the taxa its k-mers hit, so the tree must support LCA queries.

use std::collections::HashMap;
use std::fmt;

/// A taxonomic identifier.
///
/// `TaxId(0)` is reserved for the root of the taxonomy ("unclassified" /
/// cellular organisms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaxId(pub u32);

impl TaxId {
    /// The root taxon.
    pub const ROOT: TaxId = TaxId(0);
}

impl fmt::Display for TaxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "taxid:{}", self.0)
    }
}

impl From<u32> for TaxId {
    fn from(v: u32) -> TaxId {
        TaxId(v)
    }
}

/// Taxonomic rank of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rank {
    /// Root of the tree.
    Root,
    /// Domain (e.g. Bacteria).
    Domain,
    /// Phylum.
    Phylum,
    /// Genus.
    Genus,
    /// Species — the rank at which presence/absence and abundance are
    /// reported in the paper's evaluation.
    Species,
    /// Strain / below-species.
    Strain,
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rank::Root => "root",
            Rank::Domain => "domain",
            Rank::Phylum => "phylum",
            Rank::Genus => "genus",
            Rank::Species => "species",
            Rank::Strain => "strain",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone)]
struct Node {
    parent: TaxId,
    rank: Rank,
    name: String,
    depth: u32,
}

/// An in-memory taxonomy tree.
///
/// # Example
///
/// ```
/// use megis_genomics::taxonomy::{Taxonomy, TaxId, Rank};
/// let mut tax = Taxonomy::new();
/// let genus = tax.add_node(TaxId(10), TaxId::ROOT, Rank::Genus, "Examplea");
/// let a = tax.add_node(TaxId(11), genus, Rank::Species, "Examplea alpha");
/// let b = tax.add_node(TaxId(12), genus, Rank::Species, "Examplea beta");
/// assert_eq!(tax.lca(a, b), genus);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Taxonomy {
    nodes: HashMap<TaxId, Node>,
}

impl Taxonomy {
    /// Creates a taxonomy containing only the root node.
    pub fn new() -> Taxonomy {
        let mut nodes = HashMap::new();
        nodes.insert(
            TaxId::ROOT,
            Node {
                parent: TaxId::ROOT,
                rank: Rank::Root,
                name: "root".to_string(),
                depth: 0,
            },
        );
        Taxonomy { nodes }
    }

    /// Adds a node and returns its id (for chaining convenience).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is unknown, if `id` already exists, or if
    /// `id == TaxId::ROOT`.
    pub fn add_node(&mut self, id: TaxId, parent: TaxId, rank: Rank, name: &str) -> TaxId {
        assert_ne!(id, TaxId::ROOT, "cannot re-add the root");
        assert!(!self.nodes.contains_key(&id), "duplicate taxid {id}");
        let parent_depth = self
            .nodes
            .get(&parent)
            .unwrap_or_else(|| panic!("unknown parent {parent}"))
            .depth;
        self.nodes.insert(
            id,
            Node {
                parent,
                rank,
                name: name.to_string(),
                depth: parent_depth + 1,
            },
        );
        id
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the taxonomy contains only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Returns `true` if the taxonomy contains `id`.
    pub fn contains(&self, id: TaxId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Parent of `id`, or `None` for the root or unknown ids.
    pub fn parent(&self, id: TaxId) -> Option<TaxId> {
        if id == TaxId::ROOT {
            return None;
        }
        self.nodes.get(&id).map(|n| n.parent)
    }

    /// Rank of `id`, if known.
    pub fn rank(&self, id: TaxId) -> Option<Rank> {
        self.nodes.get(&id).map(|n| n.rank)
    }

    /// Name of `id`, if known.
    pub fn name(&self, id: TaxId) -> Option<&str> {
        self.nodes.get(&id).map(|n| n.name.as_str())
    }

    /// Path from `id` up to (and including) the root.
    pub fn lineage(&self, id: TaxId) -> Vec<TaxId> {
        let mut path = Vec::new();
        let mut cur = id;
        loop {
            path.push(cur);
            match self.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        path
    }

    /// Lowest common ancestor of `a` and `b`.
    ///
    /// Unknown taxids are treated as the root (most conservative assignment),
    /// matching how classifiers fall back when a k-mer maps to a taxon that is
    /// absent from the loaded taxonomy.
    pub fn lca(&self, a: TaxId, b: TaxId) -> TaxId {
        if !self.contains(a) || !self.contains(b) {
            return TaxId::ROOT;
        }
        let (mut a, mut b) = (a, b);
        let mut da = self.nodes[&a].depth;
        let mut db = self.nodes[&b].depth;
        while da > db {
            a = self.nodes[&a].parent;
            da -= 1;
        }
        while db > da {
            b = self.nodes[&b].parent;
            db -= 1;
        }
        while a != b {
            a = self.nodes[&a].parent;
            b = self.nodes[&b].parent;
        }
        a
    }

    /// LCA of an iterator of taxids; returns `None` for an empty iterator.
    pub fn lca_of<I: IntoIterator<Item = TaxId>>(&self, ids: I) -> Option<TaxId> {
        let mut iter = ids.into_iter();
        let first = iter.next()?;
        Some(iter.fold(first, |acc, id| self.lca(acc, id)))
    }

    /// Ancestor of `id` at the given `rank`, if any (walking towards the root).
    pub fn ancestor_at_rank(&self, id: TaxId, rank: Rank) -> Option<TaxId> {
        let mut cur = id;
        loop {
            if self.rank(cur)? == rank {
                return Some(cur);
            }
            cur = self.parent(cur)?;
        }
    }

    /// All taxids at a given rank.
    pub fn ids_at_rank(&self, rank: Rank) -> Vec<TaxId> {
        let mut ids: Vec<TaxId> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.rank == rank)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Builds a simple balanced taxonomy with `genera` genus nodes, each with
    /// `species_per_genus` species children. Species taxids are
    /// `1000 * (genus_index + 1) + species_index + 1`.
    ///
    /// This is the synthetic stand-in for the NCBI taxonomy used by the
    /// paper's database generation.
    pub fn synthetic(genera: usize, species_per_genus: usize) -> Taxonomy {
        let mut tax = Taxonomy::new();
        let domain = tax.add_node(TaxId(1), TaxId::ROOT, Rank::Domain, "Bacteria (synthetic)");
        for g in 0..genera {
            let genus_id = TaxId(100 + g as u32);
            tax.add_node(genus_id, domain, Rank::Genus, &format!("Genus{g}"));
            for s in 0..species_per_genus {
                let species_id = TaxId(1000 * (g as u32 + 1) + s as u32 + 1);
                tax.add_node(
                    species_id,
                    genus_id,
                    Rank::Species,
                    &format!("Genus{g} species{s}"),
                );
            }
        }
        tax
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> Taxonomy {
        let mut t = Taxonomy::new();
        t.add_node(TaxId(1), TaxId::ROOT, Rank::Domain, "Bacteria");
        t.add_node(TaxId(10), TaxId(1), Rank::Genus, "GenusA");
        t.add_node(TaxId(11), TaxId(10), Rank::Species, "A1");
        t.add_node(TaxId(12), TaxId(10), Rank::Species, "A2");
        t.add_node(TaxId(20), TaxId(1), Rank::Genus, "GenusB");
        t.add_node(TaxId(21), TaxId(20), Rank::Species, "B1");
        t
    }

    #[test]
    fn lca_within_genus() {
        let t = small_tree();
        assert_eq!(t.lca(TaxId(11), TaxId(12)), TaxId(10));
    }

    #[test]
    fn lca_across_genera() {
        let t = small_tree();
        assert_eq!(t.lca(TaxId(11), TaxId(21)), TaxId(1));
    }

    #[test]
    fn lca_with_self_and_ancestor() {
        let t = small_tree();
        assert_eq!(t.lca(TaxId(11), TaxId(11)), TaxId(11));
        assert_eq!(t.lca(TaxId(11), TaxId(10)), TaxId(10));
    }

    #[test]
    fn lca_unknown_id_falls_back_to_root() {
        let t = small_tree();
        assert_eq!(t.lca(TaxId(11), TaxId(999)), TaxId::ROOT);
    }

    #[test]
    fn lca_of_iterator() {
        let t = small_tree();
        assert_eq!(t.lca_of([TaxId(11), TaxId(12), TaxId(21)]), Some(TaxId(1)));
        assert_eq!(t.lca_of(std::iter::empty()), None);
    }

    #[test]
    fn lineage_reaches_root() {
        let t = small_tree();
        let l = t.lineage(TaxId(11));
        assert_eq!(l, vec![TaxId(11), TaxId(10), TaxId(1), TaxId::ROOT]);
    }

    #[test]
    fn ancestor_at_rank() {
        let t = small_tree();
        assert_eq!(t.ancestor_at_rank(TaxId(11), Rank::Genus), Some(TaxId(10)));
        assert_eq!(t.ancestor_at_rank(TaxId(11), Rank::Domain), Some(TaxId(1)));
        assert_eq!(t.ancestor_at_rank(TaxId(1), Rank::Species), None);
    }

    #[test]
    fn synthetic_taxonomy_shape() {
        let t = Taxonomy::synthetic(4, 5);
        assert_eq!(t.ids_at_rank(Rank::Genus).len(), 4);
        assert_eq!(t.ids_at_rank(Rank::Species).len(), 20);
        for s in t.ids_at_rank(Rank::Species) {
            assert_eq!(t.rank(s), Some(Rank::Species));
            let genus = t.parent(s).unwrap();
            assert_eq!(t.rank(genus), Some(Rank::Genus));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate taxid")]
    fn duplicate_taxid_panics() {
        let mut t = small_tree();
        t.add_node(TaxId(11), TaxId(10), Rank::Species, "dup");
    }
}
