//! Property-based tests for the genomics substrate's core invariants.

use proptest::prelude::*;

use megis_genomics::dna::{Base, PackedSequence};
use megis_genomics::kmer::{CanonicalKmerExtractor, Kmer, KmerExtractor};
use megis_genomics::profile::AbundanceProfile;
use megis_genomics::taxonomy::{Rank, TaxId, Taxonomy};

fn dna_string(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 0..max_len)
}

proptest! {
    #[test]
    fn packed_sequence_roundtrips_ascii(ascii in dna_string(200)) {
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        prop_assert_eq!(seq.len(), ascii.len());
        prop_assert_eq!(seq.to_ascii(), ascii);
    }

    #[test]
    fn reverse_complement_is_an_involution(ascii in dna_string(200)) {
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn reverse_complement_preserves_base_complements(ascii in dna_string(100)) {
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        let rc = seq.reverse_complement();
        for i in 0..seq.len() {
            prop_assert_eq!(rc.get(seq.len() - 1 - i), seq.get(i).complement());
        }
    }

    #[test]
    fn kmer_extraction_yields_expected_count(ascii in dna_string(300), k in 1usize..32) {
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        let expected = if seq.len() >= k { seq.len() - k + 1 } else { 0 };
        prop_assert_eq!(KmerExtractor::new(&seq, k).count(), expected);
    }

    #[test]
    fn extracted_kmers_match_subsequences(ascii in dna_string(120), k in 1usize..24) {
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        for (i, kmer) in KmerExtractor::new(&seq, k).enumerate() {
            prop_assert_eq!(kmer.to_sequence(), seq.subsequence(i, k));
        }
    }

    #[test]
    fn kmer_order_matches_string_order(a in dna_string(40), b in dna_string(40)) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let (ka, kb) = (Kmer::from_ascii(&a).unwrap(), Kmer::from_ascii(&b).unwrap());
        let string_order = a.cmp(&b);
        prop_assert_eq!(ka.cmp(&kb), string_order);
    }

    #[test]
    fn canonical_kmers_are_strand_invariant(ascii in dna_string(150), k in 5usize..32) {
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        prop_assume!(seq.len() >= k);
        let rc = seq.reverse_complement();
        let mut fwd: Vec<Kmer> = CanonicalKmerExtractor::new(&seq, k).collect();
        let mut rev: Vec<Kmer> = CanonicalKmerExtractor::new(&rc, k).collect();
        fwd.sort();
        rev.sort();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn kmer_prefix_is_a_prefix(ascii in dna_string(60), j in 1usize..60) {
        prop_assume!(!ascii.is_empty());
        let kmer = Kmer::from_ascii(&ascii).unwrap();
        let j = j.min(kmer.k());
        let prefix = kmer.prefix(j);
        prop_assert_eq!(prefix.k(), j);
        for i in 0..j {
            prop_assert_eq!(prefix.base(i), kmer.base(i));
        }
    }

    #[test]
    fn abundance_profiles_are_normalized(counts in proptest::collection::vec(0u64..1000, 1..20)) {
        let profile = AbundanceProfile::from_counts(
            counts.iter().enumerate().map(|(i, c)| (TaxId(i as u32 + 1), *c)),
        );
        if counts.iter().any(|c| *c > 0) {
            prop_assert!((profile.total() - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(profile.is_empty());
        }
    }

    #[test]
    fn lca_is_commutative_and_on_both_lineages(
        genera in 1usize..5,
        species in 1usize..6,
        a_idx in 0usize..30,
        b_idx in 0usize..30,
    ) {
        let tax = Taxonomy::synthetic(genera, species);
        let all = tax.ids_at_rank(Rank::Species);
        let a = all[a_idx % all.len()];
        let b = all[b_idx % all.len()];
        let lca = tax.lca(a, b);
        prop_assert_eq!(lca, tax.lca(b, a));
        prop_assert!(tax.lineage(a).contains(&lca));
        prop_assert!(tax.lineage(b).contains(&lca));
    }

    #[test]
    fn base_ascii_roundtrip(code in 0u8..4) {
        let base = Base::from_code(code);
        prop_assert_eq!(Base::from_ascii(base.to_ascii()), Some(base));
        prop_assert_eq!(base.code(), code);
    }
}
