//! Property-style tests for the genomics substrate's core invariants.
//!
//! Each test checks an invariant over many randomized inputs drawn from a
//! seeded generator, so runs are deterministic while still covering a wide
//! slice of the input space (the offline equivalent of the original
//! proptest-based suite).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use megis_genomics::dna::{Base, PackedSequence};
use megis_genomics::kmer::{CanonicalKmerExtractor, Kmer, KmerExtractor};
use megis_genomics::profile::AbundanceProfile;
use megis_genomics::taxonomy::{Rank, TaxId, Taxonomy};

const CASES: usize = 48;

fn dna_string(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| b"ACGT"[rng.gen_range(0..4usize)])
        .collect()
}

fn random_len_dna(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    dna_string(rng, len)
}

#[test]
fn packed_sequence_roundtrips_ascii() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..CASES {
        let ascii = random_len_dna(&mut rng, 200);
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        assert_eq!(seq.len(), ascii.len());
        assert_eq!(seq.to_ascii(), ascii);
    }
}

#[test]
fn reverse_complement_is_an_involution() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..CASES {
        let ascii = random_len_dna(&mut rng, 200);
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }
}

#[test]
fn reverse_complement_preserves_base_complements() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..CASES {
        let ascii = random_len_dna(&mut rng, 100);
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        let rc = seq.reverse_complement();
        for i in 0..seq.len() {
            assert_eq!(rc.get(seq.len() - 1 - i), seq.get(i).complement());
        }
    }
}

#[test]
fn kmer_extraction_yields_expected_count() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..CASES {
        let ascii = random_len_dna(&mut rng, 300);
        let k = rng.gen_range(1..32usize);
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        let expected = if seq.len() >= k { seq.len() - k + 1 } else { 0 };
        assert_eq!(KmerExtractor::new(&seq, k).count(), expected);
    }
}

#[test]
fn extracted_kmers_match_subsequences() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..CASES {
        let ascii = random_len_dna(&mut rng, 120);
        let k = rng.gen_range(1..24usize);
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        for (i, kmer) in KmerExtractor::new(&seq, k).enumerate() {
            assert_eq!(kmer.to_sequence(), seq.subsequence(i, k));
        }
    }
}

#[test]
fn kmer_order_matches_string_order() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..CASES {
        let la = rng.gen_range(1..40usize);
        let lb = rng.gen_range(1..40usize);
        let a = dna_string(&mut rng, la);
        let b = dna_string(&mut rng, lb);
        let (ka, kb) = (Kmer::from_ascii(&a).unwrap(), Kmer::from_ascii(&b).unwrap());
        assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }
}

#[test]
fn canonical_kmers_are_strand_invariant() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..CASES {
        let k = rng.gen_range(5..32usize);
        let extra = rng.gen_range(0..120usize);
        let ascii = dna_string(&mut rng, k + extra);
        let seq = PackedSequence::from_ascii(&ascii).unwrap();
        let rc = seq.reverse_complement();
        let mut fwd: Vec<Kmer> = CanonicalKmerExtractor::new(&seq, k).collect();
        let mut rev: Vec<Kmer> = CanonicalKmerExtractor::new(&rc, k).collect();
        fwd.sort();
        rev.sort();
        assert_eq!(fwd, rev);
    }
}

#[test]
fn kmer_prefix_is_a_prefix() {
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..CASES {
        let len = rng.gen_range(1..60usize);
        let ascii = dna_string(&mut rng, len);
        let kmer = Kmer::from_ascii(&ascii).unwrap();
        let j = rng.gen_range(1..60usize).min(kmer.k());
        let prefix = kmer.prefix(j);
        assert_eq!(prefix.k(), j);
        for i in 0..j {
            assert_eq!(prefix.base(i), kmer.base(i));
        }
    }
}

#[test]
fn abundance_profiles_are_normalized() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..CASES {
        let n = rng.gen_range(1..20usize);
        let counts: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000u64)).collect();
        let profile = AbundanceProfile::from_counts(
            counts
                .iter()
                .enumerate()
                .map(|(i, c)| (TaxId(i as u32 + 1), *c)),
        );
        if counts.iter().any(|c| *c > 0) {
            assert!((profile.total() - 1.0).abs() < 1e-9);
        } else {
            assert!(profile.is_empty());
        }
    }
}

#[test]
fn lca_is_commutative_and_on_both_lineages() {
    let mut rng = StdRng::seed_from_u64(110);
    for _ in 0..CASES {
        let genera = rng.gen_range(1..5usize);
        let species = rng.gen_range(1..6usize);
        let tax = Taxonomy::synthetic(genera, species);
        let all = tax.ids_at_rank(Rank::Species);
        let a = all[rng.gen_range(0..30usize) % all.len()];
        let b = all[rng.gen_range(0..30usize) % all.len()];
        let lca = tax.lca(a, b);
        assert_eq!(lca, tax.lca(b, a));
        assert!(tax.lineage(a).contains(&lca));
        assert!(tax.lineage(b).contains(&lca));
    }
}

#[test]
fn base_ascii_roundtrip() {
    for code in 0u8..4 {
        let base = Base::from_code(code);
        assert_eq!(Base::from_ascii(base.to_ascii()), Some(base));
        assert_eq!(base.code(), code);
    }
}
