//! NAND-flash SSD simulator for the MegIS reproduction.
//!
//! The MegIS paper (ISCA 2024) evaluates in-storage processing on two modeled
//! SSDs — a cost-optimized SATA3 device (*SSD-C*) and a performance-optimized
//! PCIe Gen4 device (*SSD-P*) — using MQSim-style simulation with the
//! parameters of its Table 1. This crate provides that substrate:
//!
//! * [`config`] — SSD configurations, including the exact Table 1 presets,
//! * [`geometry`] — channels / dies / planes / blocks / pages addressing,
//! * [`nand`] — a functional flash array with program/read/erase timing,
//! * [`ftl`] — a baseline page-level FTL (L2P mapping, write allocation,
//!   garbage-collection accounting) whose metadata footprint matches the
//!   0.1%-of-capacity rule the paper cites,
//! * [`dram`] — the SSD-internal LPDDR4 DRAM model,
//! * [`interface`] — SATA3 / PCIe Gen4 host interface transfer model,
//! * [`ssd`] — the assembled device with sequential/random, internal/external
//!   access timing (the quantities MegIS's ISP steps and the host baselines
//!   are bounded by),
//! * [`timing`] — simulation time and byte-size value types,
//! * [`energy`] — SSD power states and access energy.
//!
//! # Example
//!
//! ```
//! use megis_ssd::config::SsdConfig;
//! use megis_ssd::ssd::Ssd;
//! use megis_ssd::timing::ByteSize;
//!
//! let mut ssd = Ssd::new(SsdConfig::ssd_p());
//! let summary = ssd.read_sequential_internal(ByteSize::from_gib(64));
//! // Reading 64 GiB over 16 channels at 1.2 GB/s per channel takes ~3.6 s.
//! assert!(summary.time.as_secs() > 3.0 && summary.time.as_secs() < 4.5);
//! ```

// The whole workspace is safe Rust ([workspace.lints] forbids it too);
// this attribute keeps the guarantee visible at the crate root.
#![forbid(unsafe_code)]
pub mod config;
pub mod dram;
pub mod energy;
pub mod ftl;
pub mod geometry;
pub mod interface;
pub mod nand;
pub mod ssd;
pub mod timing;

pub use config::{InterfaceKind, NandTiming, SsdConfig};
pub use ssd::{AccessSummary, Ssd};
pub use timing::{ByteSize, SimDuration};
