//! SSD power and energy model.
//!
//! The paper's energy evaluation (§6.5) sums, for each system component, the
//! product of its active/idle power and the time it spends in each state.
//! This module provides the SSD-side component powers (flash array + controller
//! and internal DRAM), based on datasheet values for a Samsung 3D-NAND SATA
//! SSD and an LPDDR4 DRAM device.

use crate::timing::SimDuration;

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy value from joules.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or NaN.
    pub fn from_joules(joules: f64) -> Energy {
        assert!(joules >= 0.0 && joules.is_finite());
        Energy(joules)
    }

    /// The energy in joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// Energy from power (watts) sustained for a duration.
    pub fn from_power(watts: f64, time: SimDuration) -> Energy {
        Energy::from_joules(watts * time.as_secs())
    }
}

impl std::ops::Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, std::ops::Add::add)
    }
}

impl std::ops::Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl std::fmt::Display for Energy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.2} kJ", self.0 / 1000.0)
        } else {
            write!(f, "{:.2} J", self.0)
        }
    }
}

/// Power states of the SSD (flash array + controller, excluding internal
/// DRAM which is modeled separately).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdPowerModel {
    /// Power while actively reading from the flash array.
    pub read_active_w: f64,
    /// Power while actively programming the flash array.
    pub write_active_w: f64,
    /// Idle power.
    pub idle_w: f64,
    /// Internal DRAM active power.
    pub dram_active_w: f64,
    /// Internal DRAM idle (self-refresh) power.
    pub dram_idle_w: f64,
}

impl Default for SsdPowerModel {
    /// Datasheet-class values for a 4 TB consumer/enterprise SSD with 4 GB
    /// LPDDR4.
    fn default() -> Self {
        SsdPowerModel {
            read_active_w: 3.0,
            write_active_w: 3.5,
            idle_w: 0.3,
            dram_active_w: 0.8,
            dram_idle_w: 0.1,
        }
    }
}

impl SsdPowerModel {
    /// Energy for a period of active reading (flash + DRAM active).
    pub fn read_energy(&self, time: SimDuration) -> Energy {
        Energy::from_power(self.read_active_w + self.dram_active_w, time)
    }

    /// Energy for a period of active writing.
    pub fn write_energy(&self, time: SimDuration) -> Energy {
        Energy::from_power(self.write_active_w + self.dram_active_w, time)
    }

    /// Energy for a period of idling.
    pub fn idle_energy(&self, time: SimDuration) -> Energy {
        Energy::from_power(self.idle_w + self.dram_idle_w, time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_joules(2.0);
        let b = Energy::from_power(3.0, SimDuration::from_secs(2.0));
        assert_eq!(b.as_joules(), 6.0);
        assert_eq!((a + b).as_joules(), 8.0);
        assert_eq!(b / a, 3.0);
        let total: Energy = [a, b].into_iter().sum();
        assert_eq!(total.as_joules(), 8.0);
    }

    #[test]
    fn active_read_costs_more_than_idle() {
        let m = SsdPowerModel::default();
        let t = SimDuration::from_secs(10.0);
        assert!(m.read_energy(t) > m.idle_energy(t));
        assert!(m.write_energy(t) > m.read_energy(t));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Energy::from_joules(12.0)), "12.00 J");
        assert_eq!(format!("{}", Energy::from_joules(675_000.0)), "675.00 kJ");
    }

    #[test]
    #[should_panic]
    fn negative_energy_panics() {
        Energy::from_joules(-1.0);
    }
}
