//! Simulation time and data-size value types.
//!
//! The performance models in this workspace compose durations and byte counts
//! from many sources (flash array timing, channel bandwidth, interface
//! bandwidth, host compute throughput). These newtypes keep units explicit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time.
///
/// Internally a non-negative `f64` number of seconds; constructors exist for
/// the units that appear in SSD datasheets (µs for flash reads, ms, s).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimDuration(f64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs(secs: f64) -> SimDuration {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "duration must be non-negative and finite"
        );
        SimDuration(secs)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> SimDuration {
        SimDuration::from_secs(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> SimDuration {
        SimDuration::from_secs(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(ns: f64) -> SimDuration {
        SimDuration::from_secs(ns * 1e-9)
    }

    /// The duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The duration in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The larger of two durations (used when pipelined stages overlap and
    /// the slower stage determines throughput).
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction (never goes below zero).
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration((self.0 - other.0).max(0.0))
    }

    /// Returns `true` if the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`SimDuration::saturating_sub`] when that is expected.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    /// Ratio of two durations (e.g. speedup computations).
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3} us", self.0 * 1e6)
        }
    }
}

/// A number of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from a raw byte count.
    pub fn from_bytes(bytes: u64) -> ByteSize {
        ByteSize(bytes)
    }

    /// Creates a size from binary kibibytes.
    pub fn from_kib(kib: u64) -> ByteSize {
        ByteSize(kib * 1024)
    }

    /// Creates a size from binary mebibytes.
    pub fn from_mib(mib: u64) -> ByteSize {
        ByteSize(mib * 1024 * 1024)
    }

    /// Creates a size from binary gibibytes.
    pub fn from_gib(gib: u64) -> ByteSize {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// Creates a size from decimal gigabytes (what SSD datasheets and the
    /// paper's database sizes use).
    pub fn from_gb(gb: f64) -> ByteSize {
        assert!(gb >= 0.0 && gb.is_finite());
        ByteSize((gb * 1e9) as u64)
    }

    /// Creates a size from decimal terabytes.
    pub fn from_tb(tb: f64) -> ByteSize {
        ByteSize::from_gb(tb * 1000.0)
    }

    /// The raw byte count.
    pub fn as_bytes(self) -> u64 {
        self.0
    }

    /// The size in decimal gigabytes.
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The size in binary gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// The larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }

    /// The smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// Time to move this many bytes at `bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not positive.
    pub fn time_at(self, bytes_per_sec: f64) -> SimDuration {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        SimDuration::from_secs(self.0 as f64 / bytes_per_sec)
    }

    /// Number of whole `chunk`-sized pieces needed to hold this size.
    pub fn div_ceil(self, chunk: ByteSize) -> u64 {
        assert!(chunk.0 > 0);
        self.0.div_ceil(chunk.0)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    /// Even split into `rhs` parts, rounded up so `parts × (size / parts)`
    /// always covers `size` (used when a database is sharded across SSDs).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> ByteSize {
        assert!(rhs > 0, "cannot split into zero parts");
        ByteSize(self.0.div_ceil(rhs))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1e12 {
            write!(f, "{:.2} TB", b / 1e12)
        } else if b >= 1e9 {
            write!(f, "{:.2} GB", b / 1e9)
        } else if b >= 1e6 {
            write!(f, "{:.2} MB", b / 1e6)
        } else if b >= 1e3 {
            write!(f, "{:.2} KB", b / 1e3)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(1500.0).as_secs(), 1.5);
        assert!((SimDuration::from_micros(52.5).as_secs() - 52.5e-6).abs() < 1e-12);
        assert!((SimDuration::from_nanos(10.0).as_micros() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn byte_size_even_split_covers_whole() {
        let db = ByteSize::from_bytes(1001);
        for parts in [1u64, 2, 3, 7, 8] {
            let per_shard = db / parts;
            assert!(per_shard * parts >= db, "{parts} shards lose bytes");
            assert!((per_shard * parts).as_bytes() < db.as_bytes() + parts);
        }
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn byte_size_zero_split_rejected() {
        let _ = ByteSize::from_bytes(10) / 0;
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(2.0);
        let b = SimDuration::from_secs(0.5);
        assert_eq!((a + b).as_secs(), 2.5);
        assert_eq!((a - b).as_secs(), 1.5);
        assert_eq!((a * 3.0).as_secs(), 6.0);
        assert_eq!((a / 4.0).as_secs(), 0.5);
        assert_eq!(a / b, 4.0);
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs(1.0) - SimDuration::from_secs(2.0);
    }

    #[test]
    fn duration_sum_and_display() {
        let total: SimDuration = [1.0, 2.0, 3.0]
            .iter()
            .map(|s| SimDuration::from_secs(*s))
            .sum();
        assert_eq!(total.as_secs(), 6.0);
        assert_eq!(format!("{}", SimDuration::from_micros(52.5)), "52.500 us");
        assert_eq!(format!("{}", SimDuration::from_secs(2.0)), "2.000 s");
    }

    #[test]
    fn bytesize_constructors() {
        assert_eq!(ByteSize::from_kib(16).as_bytes(), 16384);
        assert_eq!(ByteSize::from_gb(1.0).as_bytes(), 1_000_000_000);
        assert_eq!(ByteSize::from_tb(4.0).as_gb(), 4000.0);
        assert_eq!(ByteSize::from_gib(1).as_bytes(), 1 << 30);
    }

    #[test]
    fn bytesize_time_at_bandwidth() {
        let t = ByteSize::from_gb(7.0).time_at(7e9);
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bytesize_div_ceil_and_display() {
        assert_eq!(
            ByteSize::from_bytes(100).div_ceil(ByteSize::from_bytes(30)),
            4
        );
        assert_eq!(format!("{}", ByteSize::from_gb(293.0)), "293.00 GB");
        assert_eq!(format!("{}", ByteSize::from_bytes(512)), "512 B");
    }
}
