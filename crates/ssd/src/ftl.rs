//! Baseline page-level Flash Translation Layer.
//!
//! Regular SSDs maintain logical-to-physical (L2P) mappings at 4-KiB
//! granularity, which dominates the internal DRAM capacity (≈0.1% of device
//! capacity, §2.2). This module provides that baseline FTL: page-granularity
//! mapping, channel-striped write allocation, out-of-place updates, and
//! garbage-collection accounting. MegIS's specialized block-level FTL (§4.5)
//! lives in the `megis` core crate and is compared against this one.

use std::collections::HashMap;

use crate::geometry::{Geometry, PhysicalPageAddr};
use crate::timing::ByteSize;

/// A logical page address (in units of flash pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lpa(pub u64);

/// Errors returned by FTL operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// No free pages remain for allocation.
    DeviceFull,
    /// The logical page has never been written.
    Unmapped(Lpa),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::DeviceFull => write!(f, "no free flash pages remain"),
            FtlError::Unmapped(lpa) => write!(f, "logical page {} is unmapped", lpa.0),
        }
    }
}

impl std::error::Error for FtlError {}

/// Per-channel write cursor.
#[derive(Debug, Clone, Copy, Default)]
struct ChannelCursor {
    /// Next page index within the channel's private page space.
    next: u64,
}

/// Baseline page-level FTL.
#[derive(Debug, Clone)]
pub struct PageLevelFtl {
    geometry: Geometry,
    l2p: HashMap<Lpa, PhysicalPageAddr>,
    cursors: Vec<ChannelCursor>,
    invalid_pages: u64,
    next_channel: usize,
}

impl PageLevelFtl {
    /// Creates an FTL for the given geometry with all pages free.
    pub fn new(geometry: Geometry) -> PageLevelFtl {
        PageLevelFtl {
            geometry,
            l2p: HashMap::new(),
            cursors: vec![ChannelCursor::default(); geometry.channels as usize],
            invalid_pages: 0,
            next_channel: 0,
        }
    }

    /// The geometry this FTL manages.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Number of pages available to each channel.
    fn pages_per_channel(&self) -> u64 {
        self.geometry.total_pages() / self.geometry.channels as u64
    }

    /// Translates a per-channel sequential index into a physical address:
    /// blocks are filled one at a time, cycling through the channel's dies and
    /// planes for successive blocks.
    fn channel_page_addr(&self, channel: u32, index: u64) -> PhysicalPageAddr {
        let pages_per_block = self.geometry.pages_per_block as u64;
        let block_seq = index / pages_per_block;
        let page = (index % pages_per_block) as u32;
        let dies = self.geometry.dies_per_channel as u64;
        let planes = self.geometry.planes_per_die as u64;
        let die = (block_seq % dies) as u32;
        let plane = ((block_seq / dies) % planes) as u32;
        let block = (block_seq / (dies * planes)) as u32;
        PhysicalPageAddr {
            channel,
            die,
            plane,
            block,
            page,
        }
    }

    /// Writes a logical page: allocates the next free physical page (striping
    /// writes across channels) and installs the mapping. A previous mapping
    /// for the same LPA is invalidated (out-of-place update).
    ///
    /// Returns the chosen physical page address.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::DeviceFull`] if no channel has free pages left.
    pub fn write(&mut self, lpa: Lpa) -> Result<PhysicalPageAddr, FtlError> {
        let per_channel = self.pages_per_channel();
        let channels = self.geometry.channels as usize;
        let mut chosen = None;
        for offset in 0..channels {
            let ch = (self.next_channel + offset) % channels;
            if self.cursors[ch].next < per_channel {
                chosen = Some(ch);
                break;
            }
        }
        let ch = chosen.ok_or(FtlError::DeviceFull)?;
        let addr = self.channel_page_addr(ch as u32, self.cursors[ch].next);
        self.cursors[ch].next += 1;
        self.next_channel = (ch + 1) % channels;
        if self.l2p.insert(lpa, addr).is_some() {
            self.invalid_pages += 1;
        }
        Ok(addr)
    }

    /// Looks up the physical location of a logical page.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::Unmapped`] if the page has never been written.
    pub fn translate(&self, lpa: Lpa) -> Result<PhysicalPageAddr, FtlError> {
        self.l2p.get(&lpa).copied().ok_or(FtlError::Unmapped(lpa))
    }

    /// Number of currently mapped logical pages.
    pub fn mapped_pages(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// Number of invalidated (stale) physical pages awaiting garbage
    /// collection.
    pub fn invalid_pages(&self) -> u64 {
        self.invalid_pages
    }

    /// Fraction of written physical pages that are stale.
    pub fn garbage_ratio(&self) -> f64 {
        let written = self.l2p.len() as u64 + self.invalid_pages;
        if written == 0 {
            0.0
        } else {
            self.invalid_pages as f64 / written as f64
        }
    }

    /// Size of the L2P mapping metadata that must reside in internal DRAM:
    /// 4 bytes per mapped 4-KiB unit (a 16-KiB flash page holds four units).
    pub fn metadata_bytes(&self) -> ByteSize {
        let units_per_page = self.geometry.page_size.as_bytes() / 4096;
        ByteSize::from_bytes(self.l2p.len() as u64 * units_per_page * 4)
    }

    /// Worst-case (fully mapped device) L2P metadata size.
    pub fn max_metadata_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.geometry.capacity().as_bytes() / 4096 * 4)
    }

    /// Models a garbage-collection pass: reclaims all stale pages and returns
    /// how many pages of valid data had to be migrated (one migrated page per
    /// reclaimed stale page is a conservative first-order model).
    pub fn collect_garbage(&mut self) -> u64 {
        let migrated = self.invalid_pages;
        self.invalid_pages = 0;
        migrated
    }

    /// Distribution of mapped pages across channels (used to verify that
    /// sequential writes stripe evenly — a prerequisite for reading at full
    /// internal bandwidth).
    pub fn pages_per_channel_distribution(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.geometry.channels as usize];
        for addr in self.l2p.values() {
            counts[addr.channel as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry {
            channels: 4,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 4,
            pages_per_block: 8,
            page_size: ByteSize::from_kib(16),
        }
    }

    #[test]
    fn writes_stripe_across_channels() {
        let mut ftl = PageLevelFtl::new(geom());
        for i in 0..64 {
            ftl.write(Lpa(i)).unwrap();
        }
        let dist = ftl.pages_per_channel_distribution();
        assert_eq!(dist, vec![16, 16, 16, 16]);
    }

    #[test]
    fn translate_returns_written_location() {
        let mut ftl = PageLevelFtl::new(geom());
        let addr = ftl.write(Lpa(5)).unwrap();
        assert_eq!(ftl.translate(Lpa(5)).unwrap(), addr);
        assert!(matches!(ftl.translate(Lpa(6)), Err(FtlError::Unmapped(_))));
    }

    #[test]
    fn overwrite_invalidates_old_page() {
        let mut ftl = PageLevelFtl::new(geom());
        let first = ftl.write(Lpa(1)).unwrap();
        let second = ftl.write(Lpa(1)).unwrap();
        assert_ne!(first, second);
        assert_eq!(ftl.invalid_pages(), 1);
        assert_eq!(ftl.mapped_pages(), 1);
        assert!(ftl.garbage_ratio() > 0.0);
        assert_eq!(ftl.collect_garbage(), 1);
        assert_eq!(ftl.invalid_pages(), 0);
    }

    #[test]
    fn device_full_is_reported() {
        let mut ftl = PageLevelFtl::new(geom());
        let total = geom().total_pages();
        for i in 0..total {
            ftl.write(Lpa(i)).unwrap();
        }
        assert!(matches!(ftl.write(Lpa(total)), Err(FtlError::DeviceFull)));
    }

    #[test]
    fn metadata_is_four_bytes_per_4kib() {
        let mut ftl = PageLevelFtl::new(geom());
        for i in 0..10 {
            ftl.write(Lpa(i)).unwrap();
        }
        // 16-KiB pages → 4 mapping units of 4 bytes each per page.
        assert_eq!(ftl.metadata_bytes().as_bytes(), 10 * 4 * 4);
        let max_ratio =
            ftl.max_metadata_bytes().as_bytes() as f64 / geom().capacity().as_bytes() as f64;
        assert!((max_ratio - 0.0009765625).abs() < 1e-9);
    }

    #[test]
    fn sequential_block_fill_within_channel() {
        let mut ftl = PageLevelFtl::new(geom());
        // Write 4 channels * 8 pages = one block's worth per channel.
        for i in 0..32 {
            ftl.write(Lpa(i)).unwrap();
        }
        // Every channel's pages must share the same (die, plane, block) and
        // have consecutive page offsets — the "same offset" active-block rule.
        for ch in 0..4u32 {
            let mut pages: Vec<PhysicalPageAddr> = (0..32)
                .filter_map(|i| ftl.translate(Lpa(i)).ok())
                .filter(|a| a.channel == ch)
                .collect();
            pages.sort();
            assert_eq!(pages.len(), 8);
            assert!(pages.iter().all(|p| p.block == pages[0].block
                && p.die == pages[0].die
                && p.plane == pages[0].plane));
            for (i, p) in pages.iter().enumerate() {
                assert_eq!(p.page as usize, i);
            }
        }
    }
}
