//! SSD configurations, including the paper's Table 1 presets.

use crate::geometry::Geometry;
use crate::timing::{ByteSize, SimDuration};

/// NAND flash array timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NandTiming {
    /// Page read latency (tR).
    pub t_read: SimDuration,
    /// Page program latency (tPROG).
    pub t_prog: SimDuration,
    /// Block erase latency (tBERS).
    pub t_erase: SimDuration,
}

impl Default for NandTiming {
    /// Table 1 latencies: tR = 52.5 µs, tPROG = 700 µs (erase latency is not
    /// listed in the paper; 3.5 ms is typical for 3D TLC NAND).
    fn default() -> Self {
        NandTiming {
            t_read: SimDuration::from_micros(52.5),
            t_prog: SimDuration::from_micros(700.0),
            t_erase: SimDuration::from_millis(3.5),
        }
    }
}

/// Host interface kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterfaceKind {
    /// SATA3: 600 MB/s link, ~560 MB/s sequential-read throughput (SSD-C).
    Sata3,
    /// 4-lane PCIe Gen4 NVMe: 8 GB/s link, ~7 GB/s sequential-read (SSD-P).
    PcieGen4x4,
}

impl InterfaceKind {
    /// Raw link bandwidth in bytes/s.
    pub fn link_bandwidth(self) -> f64 {
        match self {
            InterfaceKind::Sata3 => 600e6,
            InterfaceKind::PcieGen4x4 => 8e9,
        }
    }

    /// Sustained sequential-read bandwidth in bytes/s (Table 1).
    pub fn sequential_read_bandwidth(self) -> f64 {
        match self {
            InterfaceKind::Sata3 => 560e6,
            InterfaceKind::PcieGen4x4 => 7e9,
        }
    }

    /// Sustained sequential-write bandwidth in bytes/s.
    pub fn sequential_write_bandwidth(self) -> f64 {
        match self {
            InterfaceKind::Sata3 => 530e6,
            InterfaceKind::PcieGen4x4 => 5e9,
        }
    }

    /// Sustained random-read bandwidth (4 KiB requests, high queue depth) in
    /// bytes/s. SATA devices achieve ~100 K IOPS and NVMe Gen4 devices
    /// ~1 M IOPS at 4 KiB.
    pub fn random_read_bandwidth(self) -> f64 {
        match self {
            InterfaceKind::Sata3 => 98_000.0 * 4096.0,
            InterfaceKind::PcieGen4x4 => 1_000_000.0 * 4096.0,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InterfaceKind::Sata3 => "SATA3",
            InterfaceKind::PcieGen4x4 => "PCIe Gen4 x4",
        }
    }
}

/// Internal DRAM configuration (LPDDR4 in both Table 1 devices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InternalDramConfig {
    /// DRAM capacity (4 GB for a 4 TB SSD — the 0.1% L2P rule).
    pub capacity: ByteSize,
    /// Sustained bandwidth in bytes/s. A single-channel x32 LPDDR4-4266 part
    /// provides ~8.5 GB/s usable bandwidth, the number the paper uses when it
    /// argues that full-internal-bandwidth streams cannot be staged in DRAM.
    pub bandwidth: f64,
}

impl Default for InternalDramConfig {
    fn default() -> Self {
        InternalDramConfig {
            capacity: ByteSize::from_gb(4.0),
            bandwidth: 8.5e9,
        }
    }
}

/// Number of embedded cores in the SSD controller and their properties,
/// used by the MS-CC configuration (ISP on the existing cores) and by the
/// area/power comparison of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerCores {
    /// Number of ARM Cortex-R4 class cores (3 in SSD-C, 4 in SSD-P).
    pub count: u32,
    /// Per-core clock frequency in Hz.
    pub frequency_hz: f64,
    /// Sustained k-mer comparison throughput per core, in 120-bit compares
    /// per second, when running MegIS's ISP tasks in software (§6.1 MS-CC).
    /// Calibrated so that three cores nearly keep up with an 8-channel
    /// internal flash stream (MS-CC loses only ~9% on SSD-C) while four
    /// cores fall visibly short of a 16-channel stream (≈40% on SSD-P).
    pub compares_per_sec_per_core: f64,
}

impl Default for ControllerCores {
    fn default() -> Self {
        ControllerCores {
            count: 3,
            frequency_hz: 800e6,
            // A Cortex-R4 needs a handful of cycles per 120-bit compare
            // (multi-word loads + compares); ~5 cycles/compare sustained.
            compares_per_sec_per_core: 160e6,
        }
    }
}

/// Full configuration of one SSD device.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// Human-readable name ("SSD-C", "SSD-P").
    pub name: String,
    /// Host interface.
    pub interface: InterfaceKind,
    /// Flash geometry.
    pub geometry: Geometry,
    /// Flash timing.
    pub nand_timing: NandTiming,
    /// Per-channel I/O rate in bytes/s (1.2 GB/s in Table 1).
    pub channel_io_rate: f64,
    /// Internal DRAM.
    pub dram: InternalDramConfig,
    /// Embedded controller cores.
    pub cores: ControllerCores,
}

impl SsdConfig {
    /// The cost-optimized SSD of Table 1 (Samsung 870 EVO class):
    /// SATA3, 8 channels, 8 dies/channel, 4 planes/die, 4 TB.
    pub fn ssd_c() -> SsdConfig {
        SsdConfig {
            name: "SSD-C".to_string(),
            interface: InterfaceKind::Sata3,
            geometry: Geometry {
                channels: 8,
                dies_per_channel: 8,
                planes_per_die: 4,
                blocks_per_plane: 2048,
                pages_per_block: 768,
                page_size: ByteSize::from_kib(16),
            },
            nand_timing: NandTiming::default(),
            channel_io_rate: 1.2e9,
            dram: InternalDramConfig::default(),
            cores: ControllerCores {
                count: 3,
                ..ControllerCores::default()
            },
        }
    }

    /// The performance-optimized SSD of Table 1 (Samsung PM1735 class):
    /// PCIe Gen4, 16 channels, 8 dies/channel, 2 planes/die, 4 TB.
    pub fn ssd_p() -> SsdConfig {
        SsdConfig {
            name: "SSD-P".to_string(),
            interface: InterfaceKind::PcieGen4x4,
            geometry: Geometry {
                channels: 16,
                dies_per_channel: 8,
                planes_per_die: 2,
                blocks_per_plane: 2048,
                pages_per_block: 768,
                page_size: ByteSize::from_kib(16),
            },
            nand_timing: NandTiming::default(),
            channel_io_rate: 1.2e9,
            dram: InternalDramConfig::default(),
            cores: ControllerCores {
                count: 4,
                ..ControllerCores::default()
            },
        }
    }

    /// Returns a copy with a different number of channels, preserving the
    /// per-channel configuration (used for the internal-bandwidth sweep of
    /// Fig. 17: 4/8/16 channels for SSD-C, 8/16/32 for SSD-P).
    pub fn with_channels(&self, channels: u32) -> SsdConfig {
        assert!(channels > 0, "channel count must be positive");
        let mut cfg = self.clone();
        cfg.geometry.channels = channels;
        cfg.name = format!("{} ({} ch)", self.name, channels);
        cfg
    }

    /// Total flash capacity.
    pub fn capacity(&self) -> ByteSize {
        self.geometry.capacity()
    }

    /// Aggregate internal bandwidth: all channels streaming concurrently,
    /// bounded by either the channel I/O rate or the flash array's sustained
    /// read rate per channel (dies pipelined behind the channel).
    pub fn internal_read_bandwidth(&self) -> f64 {
        let page = self.geometry.page_size.as_bytes() as f64;
        // One die can deliver planes_per_die pages every tR using the
        // multi-plane operation; dies on a channel pipeline their array reads
        // behind the shared channel bus.
        let per_die_array_rate =
            page * self.geometry.planes_per_die as f64 / self.nand_timing.t_read.as_secs();
        let per_channel_array_rate = per_die_array_rate * self.geometry.dies_per_channel as f64;
        let per_channel = per_channel_array_rate.min(self.channel_io_rate);
        per_channel * self.geometry.channels as f64
    }

    /// Aggregate internal program (write) bandwidth.
    pub fn internal_write_bandwidth(&self) -> f64 {
        let page = self.geometry.page_size.as_bytes() as f64;
        let per_die_rate =
            page * self.geometry.planes_per_die as f64 / self.nand_timing.t_prog.as_secs();
        let per_channel =
            (per_die_rate * self.geometry.dies_per_channel as f64).min(self.channel_io_rate);
        per_channel * self.geometry.channels as f64
    }

    /// External sequential-read bandwidth (bounded by both the interface and
    /// the internal bandwidth).
    pub fn external_read_bandwidth(&self) -> f64 {
        self.interface
            .sequential_read_bandwidth()
            .min(self.internal_read_bandwidth())
    }

    /// External sequential-write bandwidth.
    pub fn external_write_bandwidth(&self) -> f64 {
        self.interface
            .sequential_write_bandwidth()
            .min(self.internal_write_bandwidth())
    }

    /// External random-read bandwidth for 4-KiB requests.
    pub fn external_random_read_bandwidth(&self) -> f64 {
        self.interface
            .random_read_bandwidth()
            .min(self.internal_read_bandwidth())
    }

    /// Size of the regular page-level L2P mapping metadata (4 bytes per 4 KiB
    /// of capacity — about 0.1% of the SSD's capacity, §2.2).
    pub fn page_level_l2p_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.capacity().as_bytes() / 4096 * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capacities_are_4tb_class() {
        // 8ch * 8die * 4pl * 2048blk * 768pg * 16KiB = 8 TiB raw for SSD-C;
        // the shipping device exposes 4 TB after over-provisioning/TLC
        // mapping. What matters for the model is that both devices expose the
        // same multi-TB capacity class; check raw capacity is in range.
        let c = SsdConfig::ssd_c();
        let p = SsdConfig::ssd_p();
        assert!(c.capacity().as_gb() >= 4000.0);
        assert!(p.capacity().as_gb() >= 4000.0);
    }

    #[test]
    fn internal_bandwidth_tracks_channel_count() {
        let c = SsdConfig::ssd_c();
        let p = SsdConfig::ssd_p();
        // 8 channels * 1.2 GB/s = 9.6 GB/s; 16 channels = 19.2 GB/s, the
        // figure quoted in §2.3 of the paper.
        assert!((c.internal_read_bandwidth() - 9.6e9).abs() < 1e8);
        assert!((p.internal_read_bandwidth() - 19.2e9).abs() < 1e8);
    }

    #[test]
    fn internal_exceeds_external_bandwidth() {
        for cfg in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
            assert!(cfg.internal_read_bandwidth() > cfg.external_read_bandwidth());
        }
    }

    #[test]
    fn external_bandwidth_matches_interface() {
        assert!((SsdConfig::ssd_c().external_read_bandwidth() - 560e6).abs() < 1e6);
        assert!((SsdConfig::ssd_p().external_read_bandwidth() - 7e9).abs() < 1e7);
    }

    #[test]
    fn with_channels_scales_bandwidth() {
        let base = SsdConfig::ssd_p();
        let half = base.with_channels(8);
        let double = base.with_channels(32);
        assert!((half.internal_read_bandwidth() - 9.6e9).abs() < 1e8);
        assert!((double.internal_read_bandwidth() - 38.4e9).abs() < 1e8);
        assert_eq!(base.geometry.channels, 16, "original is unchanged");
    }

    #[test]
    fn l2p_metadata_is_point_one_percent() {
        let cfg = SsdConfig::ssd_c();
        let ratio = cfg.page_level_l2p_bytes().as_bytes() as f64 / cfg.capacity().as_bytes() as f64;
        assert!((ratio - 0.000976).abs() < 1e-4);
    }

    #[test]
    fn write_bandwidth_is_program_limited() {
        let cfg = SsdConfig::ssd_c();
        assert!(cfg.internal_write_bandwidth() < cfg.internal_read_bandwidth());
    }

    #[test]
    fn interface_labels() {
        assert_eq!(InterfaceKind::Sata3.label(), "SATA3");
        assert_eq!(InterfaceKind::PcieGen4x4.label(), "PCIe Gen4 x4");
    }
}
