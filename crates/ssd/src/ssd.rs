//! The assembled SSD device: flash array + FTL + internal DRAM + interface.
//!
//! [`Ssd`] exposes the access-timing primitives every higher-level model in
//! the workspace is built on: sequential and random reads, internal (ISP-side)
//! and external (host-side) transfers, and writes. It also provides a small
//! named-object store used by functional tests and by the database placement
//! logic.

use std::collections::HashMap;

use crate::config::SsdConfig;
use crate::dram::InternalDram;
use crate::ftl::{FtlError, Lpa, PageLevelFtl};
use crate::interface::HostInterface;
use crate::nand::FlashArray;
use crate::timing::{ByteSize, SimDuration};

/// Outcome of one modeled access: how many bytes moved and how long it took.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccessSummary {
    /// Bytes transferred.
    pub bytes: ByteSize,
    /// Time taken.
    pub time: SimDuration,
}

impl AccessSummary {
    /// Combines two accesses performed back to back.
    pub fn then(self, other: AccessSummary) -> AccessSummary {
        AccessSummary {
            bytes: self.bytes + other.bytes,
            time: self.time + other.time,
        }
    }

    /// Combines two accesses performed concurrently (bytes add, time is the
    /// maximum).
    pub fn overlapped_with(self, other: AccessSummary) -> AccessSummary {
        AccessSummary {
            bytes: self.bytes + other.bytes,
            time: self.time.max(other.time),
        }
    }

    /// Effective throughput in bytes/s (zero for zero-duration accesses).
    pub fn throughput(&self) -> f64 {
        if self.time.is_zero() {
            0.0
        } else {
            self.bytes.as_bytes() as f64 / self.time.as_secs()
        }
    }
}

/// A stored named object (e.g. a k-mer database) on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectHandle {
    start_lpa: u64,
    pages: u64,
    bytes: u64,
}

impl ObjectHandle {
    /// Size of the stored object.
    pub fn size(&self) -> ByteSize {
        ByteSize::from_bytes(self.bytes)
    }

    /// Number of flash pages the object occupies.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// First logical page address of the object.
    pub fn start_lpa(&self) -> Lpa {
        Lpa(self.start_lpa)
    }
}

/// Conflict model for random accesses served from inside the SSD: random
/// page reads collide on channels and dies, so only a fraction of the
/// internal bandwidth is achievable (the reason R-Qry-style tools are a poor
/// fit for ISP, §3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomAccessModel {
    /// Fraction of internal bandwidth achievable under random access due to
    /// channel/die conflicts.
    pub conflict_efficiency: f64,
}

impl Default for RandomAccessModel {
    fn default() -> Self {
        RandomAccessModel {
            conflict_efficiency: 0.4,
        }
    }
}

/// A simulated SSD device.
#[derive(Debug, Clone)]
pub struct Ssd {
    config: SsdConfig,
    flash: FlashArray,
    ftl: PageLevelFtl,
    dram: InternalDram,
    interface: HostInterface,
    random_model: RandomAccessModel,
    objects: HashMap<String, ObjectHandle>,
    next_lpa: u64,
    total_bytes_read_internal: u64,
    total_bytes_transferred_external: u64,
}

impl Ssd {
    /// Creates an SSD from a configuration.
    pub fn new(config: SsdConfig) -> Ssd {
        let interface = HostInterface::new(config.interface);
        let flash = FlashArray::new(config.geometry, config.nand_timing);
        let ftl = PageLevelFtl::new(config.geometry);
        let dram = InternalDram::new(config.dram);
        Ssd {
            config,
            flash,
            ftl,
            dram,
            interface,
            random_model: RandomAccessModel::default(),
            objects: HashMap::new(),
            next_lpa: 0,
            total_bytes_read_internal: 0,
            total_bytes_transferred_external: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// The host interface model.
    pub fn interface(&self) -> &HostInterface {
        &self.interface
    }

    /// The internal DRAM.
    pub fn dram(&self) -> &InternalDram {
        &self.dram
    }

    /// Mutable access to the internal DRAM (for ISP buffer reservations).
    pub fn dram_mut(&mut self) -> &mut InternalDram {
        &mut self.dram
    }

    /// The baseline page-level FTL.
    pub fn ftl(&self) -> &PageLevelFtl {
        &self.ftl
    }

    /// The functional flash array.
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Overrides the random-access conflict model.
    pub fn set_random_access_model(&mut self, model: RandomAccessModel) {
        self.random_model = model;
    }

    /// Total bytes read from the flash array (internal side) so far.
    pub fn bytes_read_internal(&self) -> ByteSize {
        ByteSize::from_bytes(self.total_bytes_read_internal)
    }

    /// Total bytes moved over the host interface so far (both directions).
    pub fn bytes_transferred_external(&self) -> ByteSize {
        ByteSize::from_bytes(self.total_bytes_transferred_external)
    }

    // ----- timing primitives ------------------------------------------------

    /// Sequential read of `size` bytes delivered to the host over the
    /// external interface (bounded by the slower of interface and internal
    /// bandwidth).
    pub fn read_sequential_external(&mut self, size: ByteSize) -> AccessSummary {
        let bw = self.config.external_read_bandwidth();
        self.total_bytes_read_internal += size.as_bytes();
        self.total_bytes_transferred_external += size.as_bytes();
        AccessSummary {
            bytes: size,
            time: size.time_at(bw),
        }
    }

    /// Sequential read of `size` bytes consumed *inside* the SSD (ISP): uses
    /// the full internal bandwidth and never crosses the host interface.
    pub fn read_sequential_internal(&mut self, size: ByteSize) -> AccessSummary {
        let bw = self.config.internal_read_bandwidth();
        self.total_bytes_read_internal += size.as_bytes();
        AccessSummary {
            bytes: size,
            time: size.time_at(bw),
        }
    }

    /// Random reads of `requests` × `request_size` delivered to the host.
    pub fn read_random_external(&mut self, requests: u64, request_size: ByteSize) -> AccessSummary {
        let time = self.interface.random_read_time(requests, request_size);
        let bytes = ByteSize::from_bytes(requests * request_size.as_bytes());
        // Each random request still reads a whole flash page internally.
        self.total_bytes_read_internal += requests * self.config.geometry.page_size.as_bytes();
        self.total_bytes_transferred_external += bytes.as_bytes();
        AccessSummary { bytes, time }
    }

    /// Random reads of `requests` × `request_size` consumed inside the SSD.
    ///
    /// Each request reads a full flash page; channel/die conflicts limit the
    /// achievable throughput to a fraction of the internal bandwidth.
    pub fn read_random_internal(&mut self, requests: u64, request_size: ByteSize) -> AccessSummary {
        let page = self.config.geometry.page_size;
        let raw_bytes = requests * page.as_bytes();
        let effective_bw =
            self.config.internal_read_bandwidth() * self.random_model.conflict_efficiency;
        self.total_bytes_read_internal += raw_bytes;
        AccessSummary {
            bytes: ByteSize::from_bytes(requests * request_size.as_bytes()),
            time: ByteSize::from_bytes(raw_bytes).time_at(effective_bw),
        }
    }

    /// Sequential write of `size` bytes arriving from the host.
    pub fn write_sequential_external(&mut self, size: ByteSize) -> AccessSummary {
        let bw = self.config.external_write_bandwidth();
        self.total_bytes_transferred_external += size.as_bytes();
        AccessSummary {
            bytes: size,
            time: size.time_at(bw),
        }
    }

    /// Transfer of `size` bytes from the host into the SSD's internal DRAM
    /// (not written to flash) — how MegIS receives query k-mer batches.
    pub fn transfer_to_dram(&mut self, size: ByteSize) -> AccessSummary {
        let bw = self
            .config
            .interface
            .sequential_write_bandwidth()
            .min(self.config.dram.bandwidth);
        self.total_bytes_transferred_external += size.as_bytes();
        AccessSummary {
            bytes: size,
            time: size.time_at(bw),
        }
    }

    /// Transfer of `size` bytes of results from the SSD to the host.
    pub fn transfer_to_host(&mut self, size: ByteSize) -> AccessSummary {
        let bw = self.config.interface.sequential_read_bandwidth();
        self.total_bytes_transferred_external += size.as_bytes();
        AccessSummary {
            bytes: size,
            time: size.time_at(bw),
        }
    }

    // ----- named object store ----------------------------------------------

    /// Stores a named object of `size` bytes sequentially on the device
    /// (allocating flash pages through the FTL) and returns the write timing.
    ///
    /// # Errors
    ///
    /// Fails if the device does not have enough free pages.
    pub fn store_object(&mut self, name: &str, size: ByteSize) -> Result<AccessSummary, FtlError> {
        let pages = self.config.geometry.pages_for(size);
        let start = self.next_lpa;
        for i in 0..pages {
            self.ftl.write(Lpa(start + i))?;
        }
        self.next_lpa += pages;
        let handle = ObjectHandle {
            start_lpa: start,
            pages,
            bytes: size.as_bytes(),
        };
        self.objects.insert(name.to_string(), handle);
        Ok(self.write_sequential_external(size))
    }

    /// Looks up a stored object.
    pub fn object(&self, name: &str) -> Option<ObjectHandle> {
        self.objects.get(name).copied()
    }

    /// Reads a stored object sequentially for in-storage processing.
    ///
    /// # Panics
    ///
    /// Panics if the object does not exist.
    pub fn read_object_internal(&mut self, name: &str) -> AccessSummary {
        let handle = self.objects[name];
        self.read_sequential_internal(handle.size())
    }

    /// Reads a stored object sequentially out to the host.
    ///
    /// # Panics
    ///
    /// Panics if the object does not exist.
    pub fn read_object_external(&mut self, name: &str) -> AccessSummary {
        let handle = self.objects[name];
        self.read_sequential_external(handle.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;

    #[test]
    fn internal_read_is_faster_than_external() {
        let mut ssd = Ssd::new(SsdConfig::ssd_c());
        let size = ByteSize::from_gb(100.0);
        let internal = ssd.read_sequential_internal(size);
        let external = ssd.read_sequential_external(size);
        assert!(internal.time < external.time);
        // SSD-C: 9.6 GB/s internal vs 0.56 GB/s external → ~17× gap.
        assert!(external.time / internal.time > 15.0);
    }

    #[test]
    fn ssd_p_narrows_but_keeps_the_gap() {
        let mut ssd = Ssd::new(SsdConfig::ssd_p());
        let size = ByteSize::from_gb(100.0);
        let internal = ssd.read_sequential_internal(size);
        let external = ssd.read_sequential_external(size);
        let gap = external.time / internal.time;
        assert!(gap > 2.0 && gap < 4.0, "expected ~2.7× gap, got {gap}");
    }

    #[test]
    fn random_internal_pays_conflicts_and_page_amplification() {
        let mut ssd = Ssd::new(SsdConfig::ssd_c());
        let requests = 1_000_000;
        let seq = ssd.read_sequential_internal(ByteSize::from_bytes(requests * 4096));
        let rand = ssd.read_random_internal(requests, ByteSize::from_kib(4));
        assert!(rand.time.as_secs() > 5.0 * seq.time.as_secs());
    }

    #[test]
    fn throughput_reporting() {
        let mut ssd = Ssd::new(SsdConfig::ssd_p());
        let s = ssd.read_sequential_external(ByteSize::from_gb(7.0));
        assert!((s.throughput() - 7e9).abs() < 1e7);
    }

    #[test]
    fn access_summary_composition() {
        let a = AccessSummary {
            bytes: ByteSize::from_gb(1.0),
            time: SimDuration::from_secs(1.0),
        };
        let b = AccessSummary {
            bytes: ByteSize::from_gb(2.0),
            time: SimDuration::from_secs(3.0),
        };
        assert_eq!(a.then(b).time.as_secs(), 4.0);
        assert_eq!(a.overlapped_with(b).time.as_secs(), 3.0);
        assert_eq!(a.then(b).bytes.as_gb(), 3.0);
    }

    #[test]
    fn object_store_roundtrip_and_accounting() {
        let mut ssd = Ssd::new(SsdConfig::ssd_c());
        let size = ByteSize::from_gb(1.0);
        ssd.store_object("db", size).unwrap();
        let handle = ssd.object("db").unwrap();
        assert_eq!(handle.size(), size);
        assert_eq!(handle.pages(), size.div_ceil(ByteSize::from_kib(16)));
        let internal = ssd.read_object_internal("db");
        assert_eq!(internal.bytes, size);
        assert!(ssd.bytes_read_internal().as_bytes() >= size.as_bytes());
        let before = ssd.bytes_transferred_external();
        ssd.read_object_external("db");
        assert!(ssd.bytes_transferred_external() > before);
    }

    #[test]
    fn dram_transfer_paths() {
        let mut ssd = Ssd::new(SsdConfig::ssd_p());
        let batch = ByteSize::from_mib(1);
        let to_dram = ssd.transfer_to_dram(batch);
        let to_host = ssd.transfer_to_host(batch);
        assert!(to_dram.time.as_secs() > 0.0);
        assert!(to_host.time.as_secs() > 0.0);
    }
}
