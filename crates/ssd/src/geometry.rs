//! Flash geometry: channels, dies, planes, blocks, and pages.
//!
//! Mirrors the organization described in §2.2 of the paper: packages/dies
//! share a channel to the controller, each die has multiple planes that can
//! operate concurrently on pages at the same offset (multi-plane operation),
//! and blocks are the erase unit.

use crate::timing::ByteSize;

/// Physical geometry of the NAND flash array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of channels between the controller and the flash packages.
    pub channels: u32,
    /// Dies per channel.
    pub dies_per_channel: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Page size.
    pub page_size: ByteSize,
}

impl Geometry {
    /// Total number of dies in the device.
    pub fn total_dies(&self) -> u64 {
        self.channels as u64 * self.dies_per_channel as u64
    }

    /// Total number of blocks in the device.
    pub fn total_blocks(&self) -> u64 {
        self.total_dies() * self.planes_per_die as u64 * self.blocks_per_plane as u64
    }

    /// Total number of pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Raw capacity of the device.
    pub fn capacity(&self) -> ByteSize {
        ByteSize::from_bytes(self.total_pages() * self.page_size.as_bytes())
    }

    /// Size of one block.
    pub fn block_size(&self) -> ByteSize {
        ByteSize::from_bytes(self.pages_per_block as u64 * self.page_size.as_bytes())
    }

    /// Bytes delivered by one multi-plane read on one die (all planes read a
    /// page at the same offset concurrently).
    pub fn multiplane_read_size(&self) -> ByteSize {
        ByteSize::from_bytes(self.planes_per_die as u64 * self.page_size.as_bytes())
    }

    /// Number of pages needed to store `size` bytes.
    pub fn pages_for(&self, size: ByteSize) -> u64 {
        size.div_ceil(self.page_size)
    }

    /// Number of blocks needed to store `size` bytes.
    pub fn blocks_for(&self, size: ByteSize) -> u64 {
        size.div_ceil(self.block_size())
    }

    /// Converts a physical page address to a flat page index.
    pub fn page_index(&self, addr: PhysicalPageAddr) -> u64 {
        debug_assert!(self.contains(addr));
        (((addr.channel as u64 * self.dies_per_channel as u64 + addr.die as u64)
            * self.planes_per_die as u64
            + addr.plane as u64)
            * self.blocks_per_plane as u64
            + addr.block as u64)
            * self.pages_per_block as u64
            + addr.page as u64
    }

    /// Converts a flat page index to a physical page address.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.total_pages()`.
    pub fn page_addr(&self, index: u64) -> PhysicalPageAddr {
        assert!(index < self.total_pages(), "page index out of range");
        let page = (index % self.pages_per_block as u64) as u32;
        let rest = index / self.pages_per_block as u64;
        let block = (rest % self.blocks_per_plane as u64) as u32;
        let rest = rest / self.blocks_per_plane as u64;
        let plane = (rest % self.planes_per_die as u64) as u32;
        let rest = rest / self.planes_per_die as u64;
        let die = (rest % self.dies_per_channel as u64) as u32;
        let channel = (rest / self.dies_per_channel as u64) as u32;
        PhysicalPageAddr {
            channel,
            die,
            plane,
            block,
            page,
        }
    }

    /// Returns `true` if the address is within this geometry.
    pub fn contains(&self, addr: PhysicalPageAddr) -> bool {
        addr.channel < self.channels
            && addr.die < self.dies_per_channel
            && addr.plane < self.planes_per_die
            && addr.block < self.blocks_per_plane
            && addr.page < self.pages_per_block
    }
}

/// Address of one physical flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysicalPageAddr {
    /// Channel index.
    pub channel: u32,
    /// Die index within the channel.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

/// Address of one physical flash block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysicalBlockAddr {
    /// Channel index.
    pub channel: u32,
    /// Die index within the channel.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
}

impl PhysicalPageAddr {
    /// The block this page belongs to.
    pub fn block_addr(self) -> PhysicalBlockAddr {
        PhysicalBlockAddr {
            channel: self.channel,
            die: self.die,
            plane: self.plane,
            block: self.block,
        }
    }
}

impl PhysicalBlockAddr {
    /// The address of a page within this block.
    pub fn page(self, page: u32) -> PhysicalPageAddr {
        PhysicalPageAddr {
            channel: self.channel,
            die: self.die,
            plane: self.plane,
            block: self.block,
            page,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry {
            channels: 4,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 8,
            pages_per_block: 16,
            page_size: ByteSize::from_kib(16),
        }
    }

    #[test]
    fn totals_multiply_out() {
        let g = geom();
        assert_eq!(g.total_dies(), 8);
        assert_eq!(g.total_blocks(), 128);
        assert_eq!(g.total_pages(), 2048);
        assert_eq!(g.capacity().as_bytes(), 2048 * 16 * 1024);
        assert_eq!(g.block_size().as_bytes(), 16 * 16 * 1024);
    }

    #[test]
    fn page_index_roundtrip() {
        let g = geom();
        for index in [0u64, 1, 17, 255, 1024, 2047] {
            let addr = g.page_addr(index);
            assert!(g.contains(addr));
            assert_eq!(g.page_index(addr), index);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_addr_out_of_range_panics() {
        let g = geom();
        g.page_addr(g.total_pages());
    }

    #[test]
    fn pages_and_blocks_for_sizes() {
        let g = geom();
        assert_eq!(g.pages_for(ByteSize::from_kib(16)), 1);
        assert_eq!(g.pages_for(ByteSize::from_kib(17)), 2);
        assert_eq!(g.blocks_for(g.block_size()), 1);
        assert_eq!(
            g.blocks_for(ByteSize::from_bytes(g.block_size().as_bytes() + 1)),
            2
        );
    }

    #[test]
    fn block_and_page_addr_conversions() {
        let addr = PhysicalPageAddr {
            channel: 1,
            die: 0,
            plane: 1,
            block: 3,
            page: 7,
        };
        let blk = addr.block_addr();
        assert_eq!(blk.page(7), addr);
    }

    #[test]
    fn multiplane_read_covers_all_planes() {
        let g = geom();
        assert_eq!(g.multiplane_read_size().as_bytes(), 2 * 16 * 1024);
    }
}
