//! Functional NAND flash array model.
//!
//! Tracks per-page state (free / programmed / invalid) and optionally the
//! actual page contents, and charges flash-array timing (tR / tPROG / tBERS)
//! for every operation. Paper-scale experiments do not materialize page
//! contents; functional tests and examples do.

use std::collections::HashMap;

use crate::config::NandTiming;
use crate::geometry::{Geometry, PhysicalBlockAddr, PhysicalPageAddr};
use crate::timing::SimDuration;

/// State of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageState {
    /// Erased and available for programming.
    #[default]
    Free,
    /// Programmed and holding valid data.
    Valid,
    /// Programmed but superseded (awaiting garbage collection).
    Invalid,
}

/// Errors returned by flash array operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NandError {
    /// The address is outside the configured geometry.
    OutOfRange(PhysicalPageAddr),
    /// Attempt to program a page that is not in the `Free` state (NAND
    /// requires erase-before-program).
    ProgramOnUsedPage(PhysicalPageAddr),
    /// Attempt to read a page that has never been programmed.
    ReadOfFreePage(PhysicalPageAddr),
}

impl std::fmt::Display for NandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NandError::OutOfRange(a) => write!(f, "address out of range: {a:?}"),
            NandError::ProgramOnUsedPage(a) => write!(f, "program on non-free page: {a:?}"),
            NandError::ReadOfFreePage(a) => write!(f, "read of never-programmed page: {a:?}"),
        }
    }
}

impl std::error::Error for NandError {}

/// A functional NAND flash array.
#[derive(Debug, Clone)]
pub struct FlashArray {
    geometry: Geometry,
    timing: NandTiming,
    /// States of pages that are not in the default `Free` state, keyed by
    /// flat page index. Full-size devices have hundreds of millions of pages,
    /// so the state store is sparse.
    states: HashMap<u64, PageState>,
    /// Materialized page contents (only for pages written with data).
    contents: HashMap<u64, Vec<u8>>,
    /// Per-block erase counts (wear), indexed by flat block index.
    erase_counts: HashMap<u64, u64>,
    /// Per-block read counts since last erase (read-disturb accounting).
    read_counts: HashMap<u64, u64>,
}

impl FlashArray {
    /// Creates an erased flash array.
    pub fn new(geometry: Geometry, timing: NandTiming) -> FlashArray {
        FlashArray {
            geometry,
            timing,
            states: HashMap::new(),
            contents: HashMap::new(),
            erase_counts: HashMap::new(),
            read_counts: HashMap::new(),
        }
    }

    fn state(&self, idx: u64) -> PageState {
        self.states.get(&idx).copied().unwrap_or(PageState::Free)
    }

    /// The array geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The array timing.
    pub fn timing(&self) -> &NandTiming {
        &self.timing
    }

    /// State of a page.
    pub fn page_state(&self, addr: PhysicalPageAddr) -> Result<PageState, NandError> {
        if !self.geometry.contains(addr) {
            return Err(NandError::OutOfRange(addr));
        }
        Ok(self.state(self.geometry.page_index(addr)))
    }

    /// Programs a page, optionally storing its contents.
    ///
    /// Returns the program latency (tPROG).
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range or the page is not free.
    pub fn program_page(
        &mut self,
        addr: PhysicalPageAddr,
        data: Option<Vec<u8>>,
    ) -> Result<SimDuration, NandError> {
        if !self.geometry.contains(addr) {
            return Err(NandError::OutOfRange(addr));
        }
        let idx = self.geometry.page_index(addr);
        if self.state(idx) != PageState::Free {
            return Err(NandError::ProgramOnUsedPage(addr));
        }
        self.states.insert(idx, PageState::Valid);
        if let Some(d) = data {
            self.contents.insert(idx, d);
        }
        Ok(self.timing.t_prog)
    }

    /// Reads a page.
    ///
    /// Returns the read latency (tR) and the stored contents if the page was
    /// materialized.
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range or the page was never programmed.
    pub fn read_page(
        &mut self,
        addr: PhysicalPageAddr,
    ) -> Result<(SimDuration, Option<&[u8]>), NandError> {
        if !self.geometry.contains(addr) {
            return Err(NandError::OutOfRange(addr));
        }
        let idx = self.geometry.page_index(addr);
        if self.state(idx) == PageState::Free {
            return Err(NandError::ReadOfFreePage(addr));
        }
        let block_idx = idx / self.geometry.pages_per_block as u64;
        *self.read_counts.entry(block_idx).or_insert(0) += 1;
        Ok((
            self.timing.t_read,
            self.contents.get(&idx).map(|v| v.as_slice()),
        ))
    }

    /// Marks a valid page invalid (out-of-place update or trim).
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range.
    pub fn invalidate_page(&mut self, addr: PhysicalPageAddr) -> Result<(), NandError> {
        if !self.geometry.contains(addr) {
            return Err(NandError::OutOfRange(addr));
        }
        let idx = self.geometry.page_index(addr);
        if self.state(idx) == PageState::Valid {
            self.states.insert(idx, PageState::Invalid);
        }
        Ok(())
    }

    /// Erases a block, freeing all of its pages.
    ///
    /// Returns the erase latency.
    ///
    /// # Errors
    ///
    /// Fails if the block address is out of range.
    pub fn erase_block(&mut self, block: PhysicalBlockAddr) -> Result<SimDuration, NandError> {
        let first_page = block.page(0);
        if !self.geometry.contains(first_page) {
            return Err(NandError::OutOfRange(first_page));
        }
        let start = self.geometry.page_index(first_page);
        for p in 0..self.geometry.pages_per_block as u64 {
            self.states.remove(&(start + p));
            self.contents.remove(&(start + p));
        }
        let block_idx = start / self.geometry.pages_per_block as u64;
        *self.erase_counts.entry(block_idx).or_insert(0) += 1;
        self.read_counts.insert(block_idx, 0);
        Ok(self.timing.t_erase)
    }

    /// Number of valid pages in the array.
    pub fn valid_pages(&self) -> u64 {
        self.states
            .values()
            .filter(|s| **s == PageState::Valid)
            .count() as u64
    }

    /// Number of invalid pages awaiting garbage collection.
    pub fn invalid_pages(&self) -> u64 {
        self.states
            .values()
            .filter(|s| **s == PageState::Invalid)
            .count() as u64
    }

    /// Number of free pages.
    pub fn free_pages(&self) -> u64 {
        self.geometry.total_pages() - self.states.len() as u64
    }

    /// Total erase operations performed (wear proxy).
    pub fn total_erases(&self) -> u64 {
        self.erase_counts.values().sum()
    }

    /// Read count of a block since its last erase (read-disturb proxy, the
    /// per-block access count MegIS FTL must keep during ISP, §4.5).
    pub fn block_read_count(&self, block: PhysicalBlockAddr) -> u64 {
        let idx = self.geometry.page_index(block.page(0)) / self.geometry.pages_per_block as u64;
        self.read_counts.get(&idx).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::ByteSize;

    fn array() -> FlashArray {
        FlashArray::new(
            Geometry {
                channels: 2,
                dies_per_channel: 2,
                planes_per_die: 2,
                blocks_per_plane: 4,
                pages_per_block: 8,
                page_size: ByteSize::from_kib(16),
            },
            NandTiming::default(),
        )
    }

    fn addr(channel: u32, page: u32) -> PhysicalPageAddr {
        PhysicalPageAddr {
            channel,
            die: 0,
            plane: 0,
            block: 0,
            page,
        }
    }

    #[test]
    fn program_then_read_returns_data_and_latency() {
        let mut a = array();
        let t = a.program_page(addr(0, 0), Some(vec![7u8; 16])).unwrap();
        assert!((t.as_micros() - 700.0).abs() < 1e-9);
        let (tr, data) = a.read_page(addr(0, 0)).unwrap();
        assert!((tr.as_micros() - 52.5).abs() < 1e-9);
        assert_eq!(data, Some(&[7u8; 16][..]));
    }

    #[test]
    fn program_without_data_reads_back_none() {
        let mut a = array();
        a.program_page(addr(0, 1), None).unwrap();
        let (_, data) = a.read_page(addr(0, 1)).unwrap();
        assert!(data.is_none());
    }

    #[test]
    fn double_program_is_rejected() {
        let mut a = array();
        a.program_page(addr(0, 0), None).unwrap();
        assert!(matches!(
            a.program_page(addr(0, 0), None),
            Err(NandError::ProgramOnUsedPage(_))
        ));
    }

    #[test]
    fn read_of_free_page_is_rejected() {
        let mut a = array();
        assert!(matches!(
            a.read_page(addr(1, 3)),
            Err(NandError::ReadOfFreePage(_))
        ));
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut a = array();
        let bad = PhysicalPageAddr {
            channel: 9,
            die: 0,
            plane: 0,
            block: 0,
            page: 0,
        };
        assert!(matches!(
            a.program_page(bad, None),
            Err(NandError::OutOfRange(_))
        ));
    }

    #[test]
    fn erase_frees_pages_and_counts_wear() {
        let mut a = array();
        for p in 0..8 {
            a.program_page(addr(0, p), None).unwrap();
        }
        assert_eq!(a.valid_pages(), 8);
        let blk = addr(0, 0).block_addr();
        let t = a.erase_block(blk).unwrap();
        assert!(t.as_millis() > 1.0);
        assert_eq!(a.valid_pages(), 0);
        assert_eq!(a.total_erases(), 1);
        // Page can be programmed again after erase.
        a.program_page(addr(0, 0), None).unwrap();
    }

    #[test]
    fn invalidate_and_counts() {
        let mut a = array();
        a.program_page(addr(0, 0), None).unwrap();
        a.program_page(addr(0, 1), None).unwrap();
        a.invalidate_page(addr(0, 0)).unwrap();
        assert_eq!(a.valid_pages(), 1);
        assert_eq!(a.invalid_pages(), 1);
        assert!(a.free_pages() > 0);
    }

    #[test]
    fn read_disturb_counter_tracks_reads_and_resets_on_erase() {
        let mut a = array();
        a.program_page(addr(0, 0), None).unwrap();
        let blk = addr(0, 0).block_addr();
        for _ in 0..5 {
            a.read_page(addr(0, 0)).unwrap();
        }
        assert_eq!(a.block_read_count(blk), 5);
        a.erase_block(blk).unwrap();
        assert_eq!(a.block_read_count(blk), 0);
    }
}
