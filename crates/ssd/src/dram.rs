//! SSD-internal DRAM model.
//!
//! Modern SSDs carry low-power DRAM (LPDDR4 in both Table 1 devices) that is
//! mostly occupied by L2P mapping metadata. MegIS's ISP steps compete for the
//! remaining capacity and, critically, for its limited bandwidth: the paper
//! notes that streaming the database from all flash channels at full internal
//! bandwidth would exceed the internal DRAM bandwidth, which is why MegIS
//! computes directly on the flash data stream instead of staging it in DRAM
//! (§4.3.1).

use crate::config::InternalDramConfig;
use crate::timing::{ByteSize, SimDuration};

/// Errors returned by DRAM allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// The requested allocation does not fit in the remaining capacity.
    OutOfCapacity {
        /// Bytes requested by the failed allocation.
        requested: ByteSize,
        /// Bytes still available.
        available: ByteSize,
    },
}

impl std::fmt::Display for DramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramError::OutOfCapacity {
                requested,
                available,
            } => write!(
                f,
                "internal DRAM allocation of {requested} exceeds available {available}"
            ),
        }
    }
}

impl std::error::Error for DramError {}

/// The SSD-internal DRAM with capacity tracking and transfer timing.
#[derive(Debug, Clone)]
pub struct InternalDram {
    config: InternalDramConfig,
    used: ByteSize,
}

impl InternalDram {
    /// Creates an empty DRAM of the given configuration.
    pub fn new(config: InternalDramConfig) -> InternalDram {
        InternalDram {
            config,
            used: ByteSize::ZERO,
        }
    }

    /// The DRAM configuration.
    pub fn config(&self) -> &InternalDramConfig {
        &self.config
    }

    /// Total capacity.
    pub fn capacity(&self) -> ByteSize {
        self.config.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> ByteSize {
        self.config.capacity.saturating_sub(self.used)
    }

    /// Reserves `size` bytes.
    ///
    /// # Errors
    ///
    /// Fails if the allocation does not fit.
    pub fn allocate(&mut self, size: ByteSize) -> Result<(), DramError> {
        if size.as_bytes() > self.available().as_bytes() {
            return Err(DramError::OutOfCapacity {
                requested: size,
                available: self.available(),
            });
        }
        self.used += size;
        Ok(())
    }

    /// Releases `size` bytes (saturating at zero).
    pub fn free(&mut self, size: ByteSize) {
        self.used = self.used.saturating_sub(size);
    }

    /// Releases all allocations.
    pub fn reset(&mut self) {
        self.used = ByteSize::ZERO;
    }

    /// Time to move `size` bytes through the DRAM at full bandwidth.
    pub fn transfer_time(&self, size: ByteSize) -> SimDuration {
        size.time_at(self.config.bandwidth)
    }

    /// Sustainable throughput (bytes/s) left over when `reserved_bandwidth`
    /// bytes/s are already being consumed by other agents (e.g. fetching query
    /// k-mers while the intersection output is written back).
    pub fn remaining_bandwidth(&self, reserved_bandwidth: f64) -> f64 {
        (self.config.bandwidth - reserved_bandwidth).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_track_usage() {
        let mut d = InternalDram::new(InternalDramConfig::default());
        assert_eq!(d.capacity().as_gb(), 4.0);
        d.allocate(ByteSize::from_gb(1.0)).unwrap();
        assert_eq!(d.used().as_gb(), 1.0);
        d.free(ByteSize::from_gb(0.5));
        assert_eq!(d.used().as_gb(), 0.5);
        d.reset();
        assert_eq!(d.used(), ByteSize::ZERO);
    }

    #[test]
    fn over_allocation_is_rejected() {
        let mut d = InternalDram::new(InternalDramConfig::default());
        let err = d.allocate(ByteSize::from_gb(5.0)).unwrap_err();
        assert!(matches!(err, DramError::OutOfCapacity { .. }));
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn transfer_time_uses_bandwidth() {
        let d = InternalDram::new(InternalDramConfig {
            capacity: ByteSize::from_gb(4.0),
            bandwidth: 8.5e9,
        });
        let t = d.transfer_time(ByteSize::from_gb(8.5));
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn internal_bandwidth_smaller_than_high_end_internal_flash_bandwidth() {
        // The paper's argument: 19.2 GB/s of flash streaming cannot be staged
        // through the internal DRAM.
        let d = InternalDram::new(InternalDramConfig::default());
        assert!(d.config().bandwidth < 19.2e9);
    }

    #[test]
    fn remaining_bandwidth_saturates_at_zero() {
        let d = InternalDram::new(InternalDramConfig::default());
        assert_eq!(d.remaining_bandwidth(9e9), 0.0);
        assert!(d.remaining_bandwidth(2e9) > 6e9);
    }
}
