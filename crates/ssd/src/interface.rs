//! Host–SSD interface transfer model (SATA3 and PCIe Gen4).

use crate::config::InterfaceKind;
use crate::timing::{ByteSize, SimDuration};

/// The host interface of an SSD, with per-command overhead and bandwidth
/// limits for sequential and random transfers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostInterface {
    kind: InterfaceKind,
    /// Fixed protocol overhead per command (NVMe/AHCI submission, completion,
    /// interrupt handling).
    command_overhead: SimDuration,
}

impl HostInterface {
    /// Creates an interface of the given kind with a default per-command
    /// overhead (10 µs for SATA/AHCI, 5 µs for NVMe).
    pub fn new(kind: InterfaceKind) -> HostInterface {
        let command_overhead = match kind {
            InterfaceKind::Sata3 => SimDuration::from_micros(10.0),
            InterfaceKind::PcieGen4x4 => SimDuration::from_micros(5.0),
        };
        HostInterface {
            kind,
            command_overhead,
        }
    }

    /// The interface kind.
    pub fn kind(&self) -> InterfaceKind {
        self.kind
    }

    /// Per-command protocol overhead.
    pub fn command_overhead(&self) -> SimDuration {
        self.command_overhead
    }

    /// Time to read `size` bytes sequentially over the interface
    /// (one large command stream; protocol overhead amortized away).
    pub fn sequential_read_time(&self, size: ByteSize) -> SimDuration {
        size.time_at(self.kind.sequential_read_bandwidth())
    }

    /// Time to write `size` bytes sequentially over the interface.
    pub fn sequential_write_time(&self, size: ByteSize) -> SimDuration {
        size.time_at(self.kind.sequential_write_bandwidth())
    }

    /// Time to serve `requests` random reads of `request_size` each over the
    /// interface at its sustained random-read throughput.
    pub fn random_read_time(&self, requests: u64, request_size: ByteSize) -> SimDuration {
        let total = ByteSize::from_bytes(requests * request_size.as_bytes());
        total.time_at(self.kind.random_read_bandwidth())
    }

    /// Time to send a single small command (e.g. MegIS_Init / MegIS_Step) and
    /// receive its completion.
    pub fn command_round_trip(&self) -> SimDuration {
        self.command_overhead * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_read_times_match_table1() {
        let sata = HostInterface::new(InterfaceKind::Sata3);
        let nvme = HostInterface::new(InterfaceKind::PcieGen4x4);
        // 293 GB Kraken2 database load times.
        let db = ByteSize::from_gb(293.0);
        let t_sata = sata.sequential_read_time(db).as_secs();
        let t_nvme = nvme.sequential_read_time(db).as_secs();
        assert!(
            (t_sata - 523.2).abs() < 1.0,
            "SATA load ≈ 523 s, got {t_sata}"
        );
        assert!(
            (t_nvme - 41.9).abs() < 0.5,
            "NVMe load ≈ 42 s, got {t_nvme}"
        );
        assert!(t_sata / t_nvme > 10.0, "order-of-magnitude gap per §3.2");
    }

    #[test]
    fn random_reads_are_much_slower_than_sequential() {
        let sata = HostInterface::new(InterfaceKind::Sata3);
        let size = ByteSize::from_gb(10.0);
        let seq = sata.sequential_read_time(size);
        let rand = sata.random_read_time(size.as_bytes() / 4096, ByteSize::from_kib(4));
        assert!(rand.as_secs() > seq.as_secs());
    }

    #[test]
    fn command_overhead_differs_by_protocol() {
        let sata = HostInterface::new(InterfaceKind::Sata3);
        let nvme = HostInterface::new(InterfaceKind::PcieGen4x4);
        assert!(sata.command_round_trip() > nvme.command_round_trip());
    }
}
