//! Benchmark harness for the MegIS reproduction.
//!
//! Each figure and table of the paper's evaluation (§3 and §6) has a
//! corresponding function in [`experiments`] that evaluates the models of the
//! workspace at paper scale and renders the same rows/series the paper
//! reports. One binary per experiment wraps each function (`cargo run -p
//! megis-bench --bin fig12_presence_speedup`, …), and `all_experiments` runs
//! the full suite. Criterion micro-benchmarks over the functional kernels and
//! the figure models live under `benches/`.

// The whole workspace is safe Rust ([workspace.lints] forbids it too);
// this attribute keeps the guarantee visible at the crate root.
#![forbid(unsafe_code)]
pub mod experiments;
pub mod report;

pub use report::Report;

/// Resolves the value of a `--flag <value>` / `--flag=<value>` pair in an
/// argument list. Used by the bench binaries for `--out` (and
/// `--trace-out`), so CI and local runs can redirect the JSON records
/// instead of clobbering the committed `BENCH_*.json` baselines in the
/// working directory.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        if arg == flag {
            return args.next().cloned();
        }
        if let Some(value) = arg.strip_prefix(&format!("{flag}=")) {
            return Some(value.to_string());
        }
    }
    None
}

/// The output path for a bench binary's JSON record: the `--out` argument
/// if given, the hardcoded committed-baseline default otherwise.
pub fn out_path(default: &str) -> String {
    let args: Vec<String> = std::env::args().skip(1).collect();
    flag_value(&args, "--out").unwrap_or_else(|| default.to_string())
}

#[cfg(test)]
mod tests {
    use super::flag_value;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_value_supports_both_spellings_and_absence() {
        assert_eq!(
            flag_value(&args(&["--out", "/tmp/x.json"]), "--out"),
            Some("/tmp/x.json".to_string())
        );
        assert_eq!(
            flag_value(&args(&["--out=/tmp/y.json"]), "--out"),
            Some("/tmp/y.json".to_string())
        );
        assert_eq!(flag_value(&args(&["--other", "z"]), "--out"), None);
        assert_eq!(flag_value(&args(&[]), "--out"), None);
        assert_eq!(
            flag_value(&args(&["--out", "a", "--trace-out", "b"]), "--trace-out"),
            Some("b".to_string())
        );
        // A dangling flag with no value resolves to nothing rather than
        // panicking.
        assert_eq!(flag_value(&args(&["--out"]), "--out"), None);
    }
}
