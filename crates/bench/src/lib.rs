//! Benchmark harness for the MegIS reproduction.
//!
//! Each figure and table of the paper's evaluation (§3 and §6) has a
//! corresponding function in [`experiments`] that evaluates the models of the
//! workspace at paper scale and renders the same rows/series the paper
//! reports. One binary per experiment wraps each function (`cargo run -p
//! megis-bench --bin fig12_presence_speedup`, …), and `all_experiments` runs
//! the full suite. Criterion micro-benchmarks over the functional kernels and
//! the figure models live under `benches/`.

pub mod experiments;
pub mod report;

pub use report::Report;
