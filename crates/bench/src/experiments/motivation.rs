//! §3.2 motivational analysis (Fig. 3) and Table 1.

use megis_genomics::sample::Diversity;
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::kraken::KrakenTimingModel;
use megis_tools::metalign::MetalignTimingModel;
use megis_tools::workload::WorkloadSpec;

use crate::report::Report;

/// Fig. 3: throughput of R-Qry and S-Qry under SSD-C / SSD-P / No-I/O, for
/// two database sizes each, normalized to No-I/O.
pub fn fig03_io_overhead() -> String {
    let mut report = Report::new();
    report.title("Figure 3: performance impact of storage I/O (normalized to No-I/O)");
    report.line("Workload: CAMI-L, 100 M reads. Values are throughput normalized to a");
    report.line("hypothetical configuration with zero storage-I/O overhead (No-I/O = 1.0).");

    let base = WorkloadSpec::cami(Diversity::Low);

    // (a) R-Qry (Kraken2-style) with 0.3 TB and 0.6 TB databases.
    report.section("(a) R-Qry (random-access queries)");
    report.table_header(&["DB size", "SSD-C", "SSD-P", "No-I/O"]);
    for scale in [1.0, 2.0] {
        let w = base.with_database_scale(scale);
        let mut norm = Vec::new();
        for system in crate::experiments::reference_systems() {
            let b = KrakenTimingModel.presence_breakdown(&system, &w);
            let with_io = b.total();
            let no_io = with_io.saturating_sub(b.phase("database load (I/O)").unwrap());
            norm.push(no_io / with_io);
        }
        norm.push(1.0);
        report.table_row(&format!("{:.1} TB", w.kraken_db.as_gb() / 1000.0), &norm);
    }

    // (b) S-Qry (streaming queries) with 0.7 TB and 1.4 TB databases.
    report.section("(b) S-Qry (streaming queries)");
    report.table_header(&["DB size", "SSD-C", "SSD-P", "No-I/O"]);
    for scale in [1.0, 2.0] {
        let w = base.with_database_scale(scale);
        let mut norm = Vec::new();
        for system in crate::experiments::reference_systems() {
            let b = MetalignTimingModel::a_opt().presence_breakdown(&system, &w);
            let with_io = b.total();
            // Remove the I/O component: the intersection phase becomes pure
            // merge compute and the sketch-tree load disappears.
            let db_entries = w.metalign_db.as_bytes() / 19;
            let merge_only = system.cpu.stream_merge_time(db_entries + w.selected_kmers);
            let no_io =
                with_io.saturating_sub(b.phase("intersection finding").unwrap()) + merge_only;
            norm.push(no_io / with_io);
        }
        norm.push(1.0);
        report.table_row(&format!("{:.1} TB", w.metalign_db.as_gb() / 1000.0), &norm);
    }

    report.section("Key observations (paper: §3.2)");
    let w = base.clone();
    let sata = SystemConfig::reference(SsdConfig::ssd_c());
    let nvme = SystemConfig::reference(SsdConfig::ssd_p());
    let r_sata = KrakenTimingModel.presence_breakdown(&sata, &w);
    let r_nvme = KrakenTimingModel.presence_breakdown(&nvme, &w);
    let r_no_io = r_sata
        .total()
        .saturating_sub(r_sata.phase("database load (I/O)").unwrap());
    report.line(&format!(
        "R-Qry: No-I/O is {:.1}x faster than SSD-C and {:.1}x faster than SSD-P",
        r_sata.total() / r_no_io,
        r_nvme.total()
            / r_nvme
                .total()
                .saturating_sub(r_nvme.phase("database load (I/O)").unwrap()),
    ));
    let s_sata = MetalignTimingModel::a_opt().presence_breakdown(&sata, &w);
    let s_nvme = MetalignTimingModel::a_opt().presence_breakdown(&nvme, &w);
    report.line(&format!(
        "S-Qry totals: {:.0} s on SSD-C, {:.0} s on SSD-P (paper Fig. 13 annotations: 1694 s / 401 s)",
        s_sata.total().as_secs(),
        s_nvme.total().as_secs()
    ));
    report.finish()
}

/// Table 1: the two SSD configurations.
pub fn table1_ssd_configs() -> String {
    let mut report = Report::new();
    report.title("Table 1: SSD configurations");
    report.table_header(&["", "SSD-C", "SSD-P"]);
    let c = SsdConfig::ssd_c();
    let p = SsdConfig::ssd_p();
    let rows: Vec<(&str, String, String)> = vec![
        (
            "interface",
            c.interface.label().to_string(),
            p.interface.label().to_string(),
        ),
        (
            "seq-read BW",
            format!("{:.0} MB/s", c.external_read_bandwidth() / 1e6),
            format!("{:.0} GB/s", p.external_read_bandwidth() / 1e9),
        ),
        (
            "channels",
            c.geometry.channels.to_string(),
            p.geometry.channels.to_string(),
        ),
        (
            "dies/channel",
            c.geometry.dies_per_channel.to_string(),
            p.geometry.dies_per_channel.to_string(),
        ),
        (
            "planes/die",
            c.geometry.planes_per_die.to_string(),
            p.geometry.planes_per_die.to_string(),
        ),
        (
            "page size",
            format!("{} KiB", c.geometry.page_size.as_bytes() / 1024),
            format!("{} KiB", p.geometry.page_size.as_bytes() / 1024),
        ),
        (
            "channel rate",
            format!("{:.1} GB/s", c.channel_io_rate / 1e9),
            format!("{:.1} GB/s", p.channel_io_rate / 1e9),
        ),
        (
            "internal BW",
            format!("{:.1} GB/s", c.internal_read_bandwidth() / 1e9),
            format!("{:.1} GB/s", p.internal_read_bandwidth() / 1e9),
        ),
        (
            "tR / tPROG",
            format!(
                "{:.1}/{:.0} us",
                c.nand_timing.t_read.as_micros(),
                c.nand_timing.t_prog.as_micros()
            ),
            format!(
                "{:.1}/{:.0} us",
                p.nand_timing.t_read.as_micros(),
                p.nand_timing.t_prog.as_micros()
            ),
        ),
        (
            "internal DRAM",
            format!("{}", ByteSize::from_bytes(c.dram.capacity.as_bytes())),
            format!("{}", ByteSize::from_bytes(p.dram.capacity.as_bytes())),
        ),
        (
            "ctrl cores",
            c.cores.count.to_string(),
            p.cores.count.to_string(),
        ),
    ];
    for (label, a, b) in rows {
        report.table_row_text(&[label, &a, &b]);
    }
    report.finish()
}
