//! Presence/absence identification experiments: Fig. 12 (speedups), Fig. 13
//! (time breakdown), and Fig. 14 (database-size sweep).

use megis::pipeline::MegisTimingModel;
use megis::MegisVariant;
use megis_genomics::sample::Diversity;
use megis_host::system::SystemConfig;
use megis_tools::kraken::KrakenTimingModel;
use megis_tools::metalign::MetalignTimingModel;
use megis_tools::timing::{geometric_mean, Breakdown};
use megis_tools::workload::WorkloadSpec;

use crate::report::Report;

/// The seven configurations of Fig. 12, in figure order.
fn configurations(system: &SystemConfig, workload: &WorkloadSpec) -> Vec<(String, Breakdown)> {
    vec![
        (
            "P-Opt".to_string(),
            KrakenTimingModel.presence_breakdown(system, workload),
        ),
        (
            "A-Opt".to_string(),
            MetalignTimingModel::a_opt().presence_breakdown(system, workload),
        ),
        (
            "A-Opt+KSS".to_string(),
            MetalignTimingModel::a_opt_with_kss().presence_breakdown(system, workload),
        ),
        (
            "Ext-MS".to_string(),
            MegisTimingModel::new(MegisVariant::OutsideSsd).presence_breakdown(system, workload),
        ),
        (
            "MS-NOL".to_string(),
            MegisTimingModel::new(MegisVariant::NoOverlap).presence_breakdown(system, workload),
        ),
        (
            "MS-CC".to_string(),
            MegisTimingModel::new(MegisVariant::ControllerCores)
                .presence_breakdown(system, workload),
        ),
        (
            "MS".to_string(),
            MegisTimingModel::full().presence_breakdown(system, workload),
        ),
    ]
}

/// Fig. 12: speedup over P-Opt for all seven configurations, three CAMI
/// read sets, and both SSDs.
pub fn fig12_presence_speedup() -> String {
    let mut report = Report::new();
    report.title("Figure 12: presence/absence speedup over P-Opt (7 configurations)");
    for system in crate::experiments::reference_systems() {
        report.section(&system.primary_ssd().name.clone());
        report.table_header(&["config", "CAMI-L", "CAMI-M", "CAMI-H", "GMean"]);
        let workloads = WorkloadSpec::all_cami();
        let p_opt_totals: Vec<f64> = workloads
            .iter()
            .map(|w| {
                KrakenTimingModel
                    .presence_breakdown(&system, w)
                    .total()
                    .as_secs()
            })
            .collect();
        for config_index in 0..7 {
            let mut speedups = Vec::new();
            let mut name = String::new();
            for (w, p_total) in workloads.iter().zip(&p_opt_totals) {
                let (n, b) = &configurations(&system, w)[config_index];
                name = n.clone();
                speedups.push(p_total / b.total().as_secs());
            }
            let gmean = geometric_mean(&speedups);
            speedups.push(gmean);
            report.table_row(&name, &speedups);
        }
    }
    report.line("");
    report.line("Paper: MS is 5.3-6.4x (SSD-C) and 2.7-6.5x (SSD-P) over P-Opt, and");
    report.line("12.4-18.2x / 6.9-20.4x over A-Opt; speedup grows with sample diversity.");
    report.finish()
}

/// Fig. 13: time breakdown for CAMI-L on both SSDs.
pub fn fig13_time_breakdown() -> String {
    let mut report = Report::new();
    report.title("Figure 13: time breakdown for CAMI-L (seconds)");
    let workload = WorkloadSpec::cami(Diversity::Low);
    for system in crate::experiments::reference_systems() {
        report.section(&system.primary_ssd().name.clone());
        for (name, breakdown) in configurations(&system, &workload) {
            report.line(&format!(
                "{name}: total {:.0} s",
                breakdown.total().as_secs()
            ));
            for phase in &breakdown.phases {
                report.line(&format!(
                    "    {:<45} {:>9.1} s",
                    phase.name,
                    phase.duration.as_secs()
                ));
            }
        }
    }
    report.line("");
    report.line("Paper annotations: A-Opt totals ~1694 s (SSD-C) and ~401 s (SSD-P).");
    report.finish()
}

/// Fig. 14: speedup over P-Opt as the database scales 1x/2x/3x (CAMI-M).
pub fn fig14_database_size() -> String {
    let mut report = Report::new();
    report.title("Figure 14: effect of database size (speedup over P-Opt, CAMI-M)");
    let base = WorkloadSpec::cami(Diversity::Medium).with_database_scale(1.0 / 3.0);
    for system in crate::experiments::reference_systems() {
        report.section(&system.primary_ssd().name.clone());
        report.table_header(&["config", "1x", "2x", "3x"]);
        let scales = [1.0, 2.0, 3.0];
        let p_totals: Vec<f64> = scales
            .iter()
            .map(|s| {
                KrakenTimingModel
                    .presence_breakdown(&system, &base.with_database_scale(*s))
                    .total()
                    .as_secs()
            })
            .collect();
        for config_index in [0usize, 1, 2, 4, 6] {
            let mut name = String::new();
            let mut speedups = Vec::new();
            for (scale, p_total) in scales.iter().zip(&p_totals) {
                let w = base.with_database_scale(*scale);
                let (n, b) = &configurations(&system, &w)[config_index];
                name = n.clone();
                speedups.push(p_total / b.total().as_secs());
            }
            report.table_row(&name, &speedups);
        }
    }
    report.line("");
    report.line("Paper: MegIS's speedup grows with database size (up to 5.6x/3.7x over");
    report.line("P-Opt on SSD-C/SSD-P at the 3x point).");
    report.finish()
}
