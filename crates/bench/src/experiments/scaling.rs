//! Scaling experiments: number of SSDs (Fig. 15), host DRAM capacity
//! (Fig. 16), and SSD internal bandwidth (Fig. 17).

use megis::pipeline::MegisTimingModel;
use megis::MegisVariant;
use megis_genomics::sample::Diversity;
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_ssd::timing::ByteSize;
use megis_tools::kraken::KrakenTimingModel;
use megis_tools::metalign::MetalignTimingModel;
use megis_tools::workload::WorkloadSpec;

use crate::report::Report;

fn speedups_over_p_opt(system: &SystemConfig, workload: &WorkloadSpec) -> Vec<(String, f64)> {
    let p_total = KrakenTimingModel
        .presence_breakdown(system, workload)
        .total();
    vec![
        ("P-Opt".to_string(), 1.0),
        (
            "A-Opt".to_string(),
            p_total
                / MetalignTimingModel::a_opt()
                    .presence_breakdown(system, workload)
                    .total(),
        ),
        (
            "A-Opt+KSS".to_string(),
            p_total
                / MetalignTimingModel::a_opt_with_kss()
                    .presence_breakdown(system, workload)
                    .total(),
        ),
        (
            "MS-NOL".to_string(),
            p_total
                / MegisTimingModel::new(MegisVariant::NoOverlap)
                    .presence_breakdown(system, workload)
                    .total(),
        ),
        (
            "MS".to_string(),
            p_total
                / MegisTimingModel::full()
                    .presence_breakdown(system, workload)
                    .total(),
        ),
    ]
}

/// Fig. 15: speedup over P-Opt with 1/2/4/8 SSDs (database partitioned
/// disjointly across devices), CAMI-M.
pub fn fig15_multi_ssd() -> String {
    let mut report = Report::new();
    report.title("Figure 15: effect of the number of SSDs (speedup over P-Opt, CAMI-M)");
    let workload = WorkloadSpec::cami(Diversity::Medium);
    for base in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
        report.section(&base.name.clone());
        report.table_header(&["config", "1x", "2x", "4x", "8x"]);
        let counts = [1usize, 2, 4, 8];
        let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
        for count in counts {
            let system = SystemConfig::reference(base.clone()).with_ssd_count(count);
            for (name, speedup) in speedups_over_p_opt(&system, &workload) {
                match rows.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, values)) => values.push(speedup),
                    None => rows.push((name, vec![speedup])),
                }
            }
        }
        for (name, values) in rows {
            report.table_row(&name, &values);
        }
    }
    report.line("");
    report.line("Paper: speedup peaks around two SSDs and stays high (6.9x/5.2x over eight");
    report.line("SSD-C/SSD-P devices), eventually limited by host-side sorting.");
    report.finish()
}

/// Fig. 16: speedup over P-Opt with 1 TB / 128 GB / 64 GB / 32 GB host DRAM,
/// CAMI-M on both SSDs.
pub fn fig16_dram_capacity() -> String {
    let mut report = Report::new();
    report.title("Figure 16: effect of host DRAM capacity (speedup over P-Opt, CAMI-M)");
    let workload = WorkloadSpec::cami(Diversity::Medium);
    let capacities = [1000.0, 128.0, 64.0, 32.0];
    for base in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
        report.section(&base.name.clone());
        report.table_header(&["config", "1TB", "128GB", "64GB", "32GB"]);
        let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
        for gb in capacities {
            let system =
                SystemConfig::reference(base.clone()).with_dram_capacity(ByteSize::from_gb(gb));
            for (name, speedup) in speedups_over_p_opt(&system, &workload) {
                match rows.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, values)) => values.push(speedup),
                    None => rows.push((name, vec![speedup])),
                }
            }
        }
        for (name, values) in rows {
            report.table_row(&name, &values);
        }
    }
    report.line("");
    report.line("Paper: MegIS's advantage grows as DRAM shrinks (up to 38.5x with 32 GB),");
    report.line("because P-Opt must chunk its database while MegIS needs no large DRAM.");
    report.finish()
}

/// Fig. 17: speedup over A-Opt as the SSD channel count (internal bandwidth)
/// varies, CAMI-M.
pub fn fig17_internal_bandwidth() -> String {
    let mut report = Report::new();
    report.title("Figure 17: effect of SSD internal bandwidth (speedup over A-Opt, CAMI-M)");
    let workload = WorkloadSpec::cami(Diversity::Medium);
    for (base, channels) in [
        (SsdConfig::ssd_c(), vec![4u32, 8, 16]),
        (SsdConfig::ssd_p(), vec![8u32, 16, 32]),
    ] {
        report.section(&base.name.clone());
        let header: Vec<String> = channels.iter().map(|c| format!("{c} ch")).collect();
        let mut cols: Vec<&str> = vec!["config"];
        cols.extend(header.iter().map(String::as_str));
        report.table_header(&cols);
        let mut ms_row = Vec::new();
        let mut cc_row = Vec::new();
        let mut nol_row = Vec::new();
        for ch in &channels {
            let system = SystemConfig::reference(base.clone()).with_ssd_channels(*ch);
            let a_total = MetalignTimingModel::a_opt()
                .presence_breakdown(&system, &workload)
                .total();
            ms_row.push(
                a_total
                    / MegisTimingModel::full()
                        .presence_breakdown(&system, &workload)
                        .total(),
            );
            cc_row.push(
                a_total
                    / MegisTimingModel::new(MegisVariant::ControllerCores)
                        .presence_breakdown(&system, &workload)
                        .total(),
            );
            nol_row.push(
                a_total
                    / MegisTimingModel::new(MegisVariant::NoOverlap)
                        .presence_breakdown(&system, &workload)
                        .total(),
            );
        }
        report.table_row("MS-NOL", &nol_row);
        report.table_row("MS-CC", &cc_row);
        report.table_row("MS", &ms_row);
    }
    report.line("");
    report.line("Paper: MegIS's speedup over A-Opt grows with internal bandwidth");
    report.line("(12.3-41.8x on SSD-C, 8.6-21.6x on SSD-P across the channel sweep).");
    report.finish()
}
