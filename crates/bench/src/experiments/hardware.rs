//! Hardware-side experiments: Table 2 (accelerator area/power) and the KSS
//! data-structure size analysis of §4.3.2 / Fig. 7.

use megis::accel::{AcceleratorModel, LogicUnit};
use megis::kss::KssTables;
use megis_genomics::reference::ReferenceCollection;
use megis_genomics::sketch::{SketchConfig, SketchDatabase};
use megis_ssd::config::SsdConfig;
use megis_tools::ternary::TernarySketchTree;

use crate::report::Report;

/// Table 1 re-export for the binary naming convention.
pub use super::motivation::table1_ssd_configs;

/// Table 2: area and power of MegIS's logic units, plus the comparisons the
/// paper derives from them (32 nm scaling, overhead vs controller cores,
/// power efficiency vs running ISP on the cores).
pub fn table2_area_power() -> String {
    let mut report = Report::new();
    report.title("Table 2: area and power of MegIS's in-storage logic (65 nm, 300 MHz)");
    report.table_header(&["unit", "instances", "area mm^2", "power mW"]);
    let channels = SsdConfig::ssd_c().geometry.channels;
    for unit in LogicUnit::ALL {
        let instances = unit.instances(channels);
        report.table_row_text(&[
            unit.name(),
            &instances.to_string(),
            &format!("{:.6}", unit.area_mm2_65nm()),
            &format!("{:.3}", unit.power_mw()),
        ]);
    }
    let acc = AcceleratorModel::new(channels);
    report.table_row_text(&[
        "TOTAL (8-channel SSD)",
        "-",
        &format!("{:.3}", acc.total_area_mm2_65nm()),
        &format!("{:.3}", acc.total_power_mw()),
    ]);

    report.section("Derived comparisons (paper §6.4)");
    report.line(&format!(
        "area scaled to 32 nm:                {:.4} mm^2  (paper: 0.011 mm^2)",
        acc.total_area_mm2_32nm()
    ));
    report.line(&format!(
        "overhead vs 3x Cortex-R4 cores:      {:.1}%      (paper: 1.7%)",
        acc.area_overhead_vs_cores(3) * 100.0
    ));
    report.line(&format!(
        "power efficiency vs controller cores: {:.1}x      (paper: 26.85x)",
        acc.power_efficiency_vs_cores(0.2056)
    ));
    let p = AcceleratorModel::new(SsdConfig::ssd_p().geometry.channels);
    report.line(&format!(
        "16-channel (SSD-P) accelerator:       {:.3} mm^2, {:.2} mW",
        p.total_area_mm2_65nm(),
        p.total_power_mw()
    ));
    report.finish()
}

/// KSS size analysis (§4.3.2): flat sketch tables vs ternary tree vs KSS,
/// both at paper scale (modeled) and on a synthetic sketch (measured).
pub fn kss_size_analysis() -> String {
    let mut report = Report::new();
    report.title("KSS data-structure size analysis (Fig. 7 / paragraph 4.3.2)");

    report.section("Paper-scale sizes (modeled from the evaluated databases)");
    report.table_header(&["structure", "size GB", "vs KSS"]);
    let flat_gb = 107.0;
    let kss_gb = 14.0;
    let tree_gb = 6.9;
    report.table_row("flat tables", &[flat_gb, flat_gb / kss_gb]);
    report.table_row("KSS", &[kss_gb, 1.0]);
    report.table_row("ternary tree", &[tree_gb, tree_gb / kss_gb]);
    report.line("Paper: KSS is 7.5x smaller than the 107 GB flat structure and 2.1x larger");
    report.line("than the ternary tree, but supports purely streaming access.");

    report.section("Synthetic sketch (functional structures built in this workspace)");
    let refs = ReferenceCollection::synthetic(16, 1500, 7);
    let sketches = SketchDatabase::build(&refs, SketchConfig::small());
    let kss = KssTables::build(&sketches);
    let tree = TernarySketchTree::build(&sketches);
    report.table_header(&["structure", "bytes"]);
    report.table_row("flat tables", &[sketches.flat_table_bytes() as f64]);
    report.table_row("KSS", &[kss.size_bytes().as_bytes() as f64]);
    report.table_row("ternary tree nodes", &[tree.node_count() as f64]);
    report.line(&format!(
        "sketch k-mers: {}   KSS k_max entries: {}   tree pointer-chases per lookup: >= k",
        sketches.total_kmers(),
        kss.kmax_entries()
    ));
    report.line("(At synthetic scale the tree's prefix sharing is limited, so its absolute");
    report.line("size is not meaningful; the paper-scale ratios above use the evaluated");
    report.line("database sizes. The lookup-equivalence of the three structures is verified");
    report.line("by unit and property tests.)");
    report.finish()
}
