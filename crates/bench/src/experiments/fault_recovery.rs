//! Fault recovery smoke: a seeded transient-fault storm must be invisible
//! in results and cheap in wall clock.
//!
//! The `megis-sched` engine carries a fault-injection seam on every shard
//! worker ([`megis_sched::FaultPlan`]) and a retry/failover path in the
//! completer. This experiment runs the same device-bound batch twice —
//! clean, then under a seeded transient plan — and checks the
//! fault-tolerance contract end to end:
//!
//! * every injected fault is recovered by a retry (no failed jobs);
//! * the recovered run's outputs are byte-identical to the clean run's;
//! * the added wall-clock cost of recovery stays proportionate (reported,
//!   not gated — retry latency scales with the injected fault count, which
//!   is a property of the plan, not a regression signal).
//!
//! The `fault_recovery` binary prints this report and writes
//! `BENCH_chaos.json`; CI runs it in release mode, greps the
//! `fault recovery: confirmed` verdict, and uploads the JSON.

use std::time::{Duration, Instant};

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::sample::{CommunityConfig, Diversity, Sample};
use megis_sched::{BatchEngine, BatchReport, EngineConfig, FaultPlan, JobSpec};

use crate::report::Report;

/// Samples per batch.
const SAMPLES: usize = 10;
/// Database shards (simulated SSDs).
const SHARDS: usize = 4;
/// Simulated per-command device service time — the dominant term, so the
/// run is device-bound like the real workload.
const DEVICE: Duration = Duration::from_millis(2);
/// Probability that the fault plan samples a command for a transient
/// failure (per attempt-0 decision; see [`FaultPlan::with_transient_rate`]).
const TRANSIENT_RATE: f64 = 0.05;
/// The plan's deterministic seed: the same storm on every machine.
const SEED: u64 = 2024;

/// Everything the smoke run measured; the binary serializes it as
/// `BENCH_chaos.json`.
#[derive(Debug, Clone)]
pub struct FaultRecoveryMeasurement {
    /// Wall-clock seconds of the clean batch (no fault plan installed).
    pub clean_secs: f64,
    /// Wall-clock seconds of the same batch under the seeded storm.
    pub faulted_secs: f64,
    /// Injected command faults the shard workers reported.
    pub faults: u64,
    /// Commands the completer re-issued (the recoveries).
    pub retries: u64,
    /// Retries routed to a different shard (0 here: no shard death).
    pub failovers: u64,
    /// Jobs that failed in isolation (must be 0 for the verdict).
    pub failed_jobs: usize,
    /// Whether the faulted run's outputs matched the clean run's byte for
    /// byte.
    pub parity: bool,
    /// Jobs per batch.
    pub jobs: usize,
}

impl FaultRecoveryMeasurement {
    /// Relative wall-clock cost of recovery over the clean run (negative
    /// when the faulted run happened to be faster — noise).
    pub fn added(&self) -> f64 {
        self.faulted_secs / self.clean_secs.max(1e-12) - 1.0
    }

    /// The CI verdict: the storm actually fired, every fault was recovered
    /// by a retry, no job failed, and the outputs kept byte parity.
    pub fn confirmed(&self) -> bool {
        self.faults > 0 && self.retries == self.faults && self.failed_jobs == 0 && self.parity
    }

    /// Renders the plain-text report with the greppable verdict line.
    pub fn report(&self) -> String {
        let mut report = Report::new();
        report.title("Fault recovery analysis: seeded transient storm vs the clean run");
        report.line(&format!(
            "{} jobs, {SHARDS} shards, simulated device service {} ms/command; \
             seeded plan: {:.0}% transient rate, seed {SEED}",
            self.jobs,
            DEVICE.as_millis(),
            TRANSIENT_RATE * 100.0,
        ));
        report.line("");
        report.table_header(&["mode", "s/batch"]);
        report.table_row("clean", &[self.clean_secs]);
        report.table_row("faulted", &[self.faulted_secs]);
        report.line("");
        report.line(&format!(
            "injected faults: {} — recovered by {} retries ({} failovers), \
             {} failed jobs; wall-clock cost {:+.2}%",
            self.faults,
            self.retries,
            self.failovers,
            self.failed_jobs,
            self.added() * 100.0,
        ));
        report.line(&format!(
            "result parity with the clean run: {}",
            if self.parity {
                "byte-identical"
            } else {
                "DIVERGED"
            },
        ));
        report.line(&format!(
            "fault recovery: {}",
            if self.confirmed() {
                "confirmed"
            } else {
                "FAILED"
            },
        ));
        report.line("");
        report.line("Each sampled command fails once at the device and is re-issued by the");
        report.line("completer against its retry budget; the slot-accounting invariant keeps the");
        report.line("queue-depth gate closed across the retry, so recovery adds latency only to");
        report.line("the faulted commands — never wedging the pipeline or corrupting a result.");
        report.finish()
    }

    /// Serializes the measurement as the `BENCH_chaos.json` record.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n\
             \x20 \"bench\": \"fault_recovery\",\n\
             \x20 \"jobs\": {},\n\
             \x20 \"seed\": {SEED},\n\
             \x20 \"transient_rate\": {TRANSIENT_RATE},\n\
             \x20 \"clean_us\": {:.3},\n\
             \x20 \"faulted_us\": {:.3},\n\
             \x20 \"added_frac\": {:.6},\n\
             \x20 \"faults\": {},\n\
             \x20 \"retries\": {},\n\
             \x20 \"failovers\": {},\n\
             \x20 \"failed_jobs\": {},\n\
             \x20 \"parity\": {},\n\
             \x20 \"confirmed\": {}\n\
             }}\n",
            self.jobs,
            self.clean_secs * 1e6,
            self.faulted_secs * 1e6,
            self.added(),
            self.faults,
            self.retries,
            self.failovers,
            self.failed_jobs,
            self.parity,
            self.confirmed(),
        )
    }
}

fn device_bound_cohort() -> (MegisAnalyzer, Vec<Sample>) {
    // Same convention as the trace-overhead gate: the simulated device
    // service dominates, so recovery cost shows up as device re-service,
    // not hidden under host compute.
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(60)
        .with_database_species(12);
    let reference_community = base.build(77);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());
    let samples = (0..SAMPLES)
        .map(|i| {
            base.build_cohort_sample(6161, 700 + i as u64)
                .sample()
                .clone()
        })
        .collect();
    (analyzer, samples)
}

fn run_batch(
    analyzer: &MegisAnalyzer,
    samples: &[Sample],
    plan: Option<FaultPlan>,
) -> (f64, BatchReport) {
    let mut config = EngineConfig::new()
        .with_workers(2)
        .with_shards(SHARDS)
        .with_device_latency(DEVICE);
    if let Some(plan) = plan {
        config = config.with_fault_plan(plan);
    }
    let mut engine = BatchEngine::new(analyzer.clone(), config);
    engine
        .submit_all(
            samples
                .iter()
                .enumerate()
                .map(|(i, s)| JobSpec::new(format!("sample-{i}"), s.clone())),
        )
        .expect("admission");
    let start = Instant::now();
    let report = engine.run();
    (start.elapsed().as_secs_f64(), report)
}

/// Runs the smoke and returns the raw measurement.
pub fn fault_recovery_measure() -> FaultRecoveryMeasurement {
    let (analyzer, samples) = device_bound_cohort();

    let (clean_secs, clean) = run_batch(&analyzer, &samples, None);
    let plan = FaultPlan::seeded(SEED).with_transient_rate(TRANSIENT_RATE);
    let (faulted_secs, faulted) = run_batch(&analyzer, &samples, Some(plan));

    // Both reports sort results by job id, so index-wise comparison is the
    // byte-parity check.
    let parity = clean.results.len() == faulted.results.len()
        && clean
            .results
            .iter()
            .zip(&faulted.results)
            .all(|(a, b)| a.output == b.output);

    FaultRecoveryMeasurement {
        clean_secs,
        faulted_secs,
        faults: faulted.shard_stats.iter().map(|s| s.faults).sum(),
        retries: faulted.shard_stats.iter().map(|s| s.retries).sum(),
        failovers: faulted.shard_stats.iter().map(|s| s.failovers).sum(),
        failed_jobs: faulted.failed.len(),
        parity,
        jobs: SAMPLES,
    }
}

/// Fault recovery analysis: runs the smoke and renders the report (what
/// `cargo run -p megis-bench --bin fault_recovery` prints; the binary
/// additionally writes `BENCH_chaos.json`).
pub fn fault_recovery() -> String {
    fault_recovery_measure().report()
}

#[cfg(test)]
mod tests {
    #[test]
    fn fault_recovery_confirms_on_the_committed_seed() {
        let m = super::fault_recovery_measure();
        assert!(m.clean_secs > 0.0 && m.faulted_secs > 0.0);
        assert!(m.faults > 0, "the committed seed must actually inject");
        assert!(
            m.confirmed(),
            "fault recovery smoke failed:\n{}",
            m.report()
        );
        let report = m.report();
        assert!(report.contains("fault recovery: confirmed"));
        let json = m.to_json();
        assert!(json.contains("\"bench\": \"fault_recovery\""));
        assert!(json.contains("\"confirmed\": true"));
    }
}
