//! Cross-sample query coalescing smoke: shared sweeps must amortize
//! per-sample Step 2 device time.
//!
//! The `megis-sched` dispatcher can merge the sorted per-shard query slices
//! of co-resident samples into one multi-member intersect command per shard
//! ([`EngineConfig::with_coalescing_window`]); the shard worker then runs a
//! single galloping sweep over its database range for the whole batch. This
//! experiment runs the same device-bound cohort at 1, 2, 4, and 8
//! co-resident samples, window off and window on, and checks the
//! amortization contract end to end:
//!
//! * outputs stay byte-identical between the coalesced and uncoalesced
//!   runs at every batch size (the tentpole's parity oracle);
//! * with the window on, amortized per-sample Step 2 device time — physical
//!   sweeps × simulated device service, divided by the samples that shared
//!   them — is strictly below the uncoalesced run at every n ≥ 2, and
//!   strictly decreases from 1 to 4 co-resident samples;
//! * the `ShardStats` occupancy counters account for every member slice
//!   exactly once.
//!
//! The sweep count, not the wall clock, carries the verdict: commands are
//! deterministic where wall time is noisy, and the simulated device charge
//! per sweep is a constant, so `sweeps × DEVICE / n` is the exact
//! device-time series the paper-scale model amortizes.
//!
//! The `coalescing_sweep` binary prints this report and writes
//! `BENCH_coalescing.json`; CI runs it in release mode, greps the
//! `query coalescing: confirmed` verdict, and uploads the JSON.

use std::time::{Duration, Instant};

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::sample::{CommunityConfig, Diversity, Sample};
use megis_sched::{BatchEngine, BatchReport, EngineConfig, JobSpec};

use crate::report::Report;

/// Co-resident batch sizes swept (the x axis).
const BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];
/// Database shards (simulated SSDs).
const SHARDS: usize = 4;
/// Simulated per-command device service time — the term a shared sweep
/// amortizes.
const DEVICE: Duration = Duration::from_millis(2);
/// Coalescing window. Generous on purpose: the dispatcher only waits while
/// a group is still filling, and the group cap equals the batch size here,
/// so the wait ends with the last Step 1 — a large window buys determinism
/// on a loaded CI host without costing wall clock.
const WINDOW: Duration = Duration::from_secs(2);
/// Cohort seeds: same community, distinct samples with overlapping k-mer
/// key ranges — the co-residency the dispatcher exploits.
const COHORT_SEED: u64 = 6161;

/// One batch size's paired (window off, window on) measurement.
#[derive(Debug, Clone)]
pub struct CoalescingRow {
    /// Co-resident samples in the batch.
    pub samples: usize,
    /// Physical Step 2 sweeps with per-sample dispatch.
    pub sweeps_off: u64,
    /// Physical Step 2 sweeps with the coalescing window on.
    pub sweeps_on: u64,
    /// Shared (multi-member) sweeps in the coalesced run.
    pub shared_sweeps: u64,
    /// Member slices those shared sweeps served.
    pub shared_members: u64,
    /// Wall-clock seconds of the uncoalesced batch.
    pub off_secs: f64,
    /// Wall-clock seconds of the coalesced batch.
    pub on_secs: f64,
    /// Whether the coalesced outputs matched the uncoalesced run's byte
    /// for byte.
    pub parity: bool,
    /// Whether the occupancy counters conserved member slices: singleton
    /// sweeps carry one slice, shared sweeps their member count, and the
    /// total must equal the uncoalesced sweep count.
    pub slices_conserved: bool,
}

impl CoalescingRow {
    /// Amortized per-sample Step 2 device time (seconds) with per-sample
    /// dispatch: every sample pays its own sweeps.
    pub fn off_per_sample_secs(&self) -> f64 {
        self.sweeps_off as f64 * DEVICE.as_secs_f64() / self.samples as f64
    }

    /// Amortized per-sample Step 2 device time (seconds) with the window
    /// on: one shared sweep's device charge splits across its members.
    pub fn on_per_sample_secs(&self) -> f64 {
        self.sweeps_on as f64 * DEVICE.as_secs_f64() / self.samples as f64
    }

    /// Mean members per physical sweep in the coalesced run.
    pub fn occupancy(&self) -> f64 {
        let slices = (self.sweeps_on - self.shared_sweeps) + self.shared_members;
        slices as f64 / self.sweeps_on.max(1) as f64
    }
}

/// Everything the sweep measured; the binary serializes it as
/// `BENCH_coalescing.json`.
#[derive(Debug, Clone)]
pub struct CoalescingMeasurement {
    /// One row per batch size (1, 2, 4, 8 co-resident samples), in order.
    pub rows: Vec<CoalescingRow>,
}

impl CoalescingMeasurement {
    fn row(&self, samples: usize) -> &CoalescingRow {
        self.rows
            .iter()
            .find(|r| r.samples == samples)
            .expect("swept batch size")
    }

    /// The CI verdict: byte parity and slice conservation at every batch
    /// size, amortized per-sample device time strictly below the
    /// uncoalesced run whenever samples actually co-reside (n ≥ 2), and
    /// strictly decreasing from 1 through 4 co-resident samples.
    pub fn confirmed(&self) -> bool {
        let sound = self
            .rows
            .iter()
            .all(|r| r.parity && r.slices_conserved && r.sweeps_on >= 1);
        let amortizes = self
            .rows
            .iter()
            .filter(|r| r.samples >= 2)
            .all(|r| r.on_per_sample_secs() < r.off_per_sample_secs());
        let monotone = self.row(1).on_per_sample_secs() > self.row(2).on_per_sample_secs()
            && self.row(2).on_per_sample_secs() > self.row(4).on_per_sample_secs();
        sound && amortizes && monotone
    }

    /// Renders the plain-text report with the greppable verdict line.
    pub fn report(&self) -> String {
        let mut report = Report::new();
        report.title("Query coalescing analysis: shared sweeps vs per-sample dispatch");
        report.line(&format!(
            "{SHARDS} shards, simulated device service {} ms/sweep, coalescing \
             window {} s; cohort seed {COHORT_SEED}",
            DEVICE.as_millis(),
            WINDOW.as_secs(),
        ));
        report.line("");
        report.table_header(&[
            "samples",
            "sweeps off",
            "sweeps on",
            "members/sweep",
            "ms/sample off",
            "ms/sample on",
        ]);
        for r in &self.rows {
            report.table_row(
                &r.samples.to_string(),
                &[
                    r.sweeps_off as f64,
                    r.sweeps_on as f64,
                    r.occupancy(),
                    r.off_per_sample_secs() * 1e3,
                    r.on_per_sample_secs() * 1e3,
                ],
            );
        }
        report.line("");
        let parity = self.rows.iter().all(|r| r.parity);
        report.line(&format!(
            "result parity with per-sample dispatch: {}",
            if parity { "byte-identical" } else { "DIVERGED" },
        ));
        report.line(&format!(
            "query coalescing: {}",
            if self.confirmed() {
                "confirmed"
            } else {
                "FAILED"
            },
        ));
        report.line("");
        report.line("One galloping sweep over a shard's database range serves every co-resident");
        report.line("sample's query slice, so the per-sweep device charge divides across the");
        report.line("batch: per-sample Step 2 device time falls as co-residency grows, while the");
        report.line("demultiplexed outputs stay byte-identical to dispatching each sample alone.");
        report.finish()
    }

    /// Serializes the measurement as the `BENCH_coalescing.json` record.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\n\
                     \x20     \"samples\": {},\n\
                     \x20     \"sweeps_off\": {},\n\
                     \x20     \"sweeps_on\": {},\n\
                     \x20     \"shared_sweeps\": {},\n\
                     \x20     \"shared_members\": {},\n\
                     \x20     \"occupancy\": {:.4},\n\
                     \x20     \"off_per_sample_us\": {:.3},\n\
                     \x20     \"on_per_sample_us\": {:.3},\n\
                     \x20     \"off_wall_us\": {:.3},\n\
                     \x20     \"on_wall_us\": {:.3},\n\
                     \x20     \"parity\": {}\n\
                     \x20   }}",
                    r.samples,
                    r.sweeps_off,
                    r.sweeps_on,
                    r.shared_sweeps,
                    r.shared_members,
                    r.occupancy(),
                    r.off_per_sample_secs() * 1e6,
                    r.on_per_sample_secs() * 1e6,
                    r.off_secs * 1e6,
                    r.on_secs * 1e6,
                    r.parity,
                )
            })
            .collect();
        format!(
            "{{\n\
             \x20 \"bench\": \"coalescing_sweep\",\n\
             \x20 \"shards\": {SHARDS},\n\
             \x20 \"device_us_per_sweep\": {:.3},\n\
             \x20 \"rows\": [\n{}\n  ],\n\
             \x20 \"confirmed\": {}\n\
             }}\n",
            DEVICE.as_secs_f64() * 1e6,
            rows.join(",\n"),
            self.confirmed(),
        )
    }
}

fn cohort(n: usize) -> (MegisAnalyzer, Vec<Sample>) {
    // Same convention as the fault-recovery gate: the simulated device
    // service dominates, so the sweep count is the cost that matters.
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(60)
        .with_database_species(12);
    let reference_community = base.build(77);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());
    let samples = (0..n)
        .map(|i| {
            base.build_cohort_sample(COHORT_SEED, 900 + i as u64)
                .sample()
                .clone()
        })
        .collect();
    (analyzer, samples)
}

fn run_batch(
    analyzer: &MegisAnalyzer,
    samples: &[Sample],
    window: Option<Duration>,
) -> (f64, BatchReport) {
    let mut config = EngineConfig::new()
        .with_workers(2)
        .with_shards(SHARDS)
        .with_queue_depth(samples.len())
        .with_device_latency(DEVICE);
    if let Some(window) = window {
        config = config.with_coalescing_window(window);
    }
    let mut engine = BatchEngine::new(analyzer.clone(), config);
    engine
        .submit_all(
            samples
                .iter()
                .enumerate()
                .map(|(i, s)| JobSpec::new(format!("sample-{i}"), s.clone())),
        )
        .expect("admission");
    let start = Instant::now();
    let report = engine.run();
    (start.elapsed().as_secs_f64(), report)
}

fn step2_sweeps(report: &BatchReport) -> u64 {
    report.shard_stats.iter().map(|s| s.jobs).sum()
}

/// Runs the sweep and returns the raw measurement.
pub fn coalescing_sweep_measure() -> CoalescingMeasurement {
    let rows = BATCH_SIZES
        .iter()
        .map(|&n| {
            let (analyzer, samples) = cohort(n);
            let (off_secs, off) = run_batch(&analyzer, &samples, None);
            let (on_secs, on) = run_batch(&analyzer, &samples, Some(WINDOW));
            let parity = off.failed.is_empty()
                && on.failed.is_empty()
                && off.results.len() == on.results.len()
                && off
                    .results
                    .iter()
                    .zip(&on.results)
                    .all(|(a, b)| a.output == b.output);
            let sweeps_off = step2_sweeps(&off);
            let sweeps_on = step2_sweeps(&on);
            let shared_sweeps: u64 = on.shard_stats.iter().map(|s| s.coalesced_commands).sum();
            let shared_members: u64 = on.shard_stats.iter().map(|s| s.coalesced_members).sum();
            let slices_conserved = (sweeps_on - shared_sweeps) + shared_members == sweeps_off;
            CoalescingRow {
                samples: n,
                sweeps_off,
                sweeps_on,
                shared_sweeps,
                shared_members,
                off_secs,
                on_secs,
                parity,
                slices_conserved,
            }
        })
        .collect();
    CoalescingMeasurement { rows }
}

/// Query coalescing analysis: runs the sweep and renders the report (what
/// `cargo run -p megis-bench --bin coalescing_sweep` prints; the binary
/// additionally writes `BENCH_coalescing.json`).
pub fn coalescing_sweep() -> String {
    coalescing_sweep_measure().report()
}

#[cfg(test)]
mod tests {
    #[test]
    fn coalescing_sweep_confirms_on_the_committed_cohort() {
        let m = super::coalescing_sweep_measure();
        assert_eq!(m.rows.len(), super::BATCH_SIZES.len());
        assert!(
            m.confirmed(),
            "query coalescing smoke failed:\n{}",
            m.report()
        );
        let report = m.report();
        assert!(report.contains("query coalescing: confirmed"));
        assert!(report.contains("result parity with per-sample dispatch: byte-identical"));
        let json = m.to_json();
        assert!(json.contains("\"bench\": \"coalescing_sweep\""));
        assert!(json.contains("\"confirmed\": true"));
    }
}
