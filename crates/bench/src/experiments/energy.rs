//! §6.5 energy and data-movement analysis.

use megis::energy::EnergyModel;
use megis::pipeline::MegisTimingModel;
use megis_host::accelerators::PimKmerMatcher;
use megis_host::system::SystemConfig;
use megis_ssd::config::SsdConfig;
use megis_tools::kraken::KrakenTimingModel;
use megis_tools::metalign::MetalignTimingModel;
use megis_tools::pim::PimAcceleratedKraken;
use megis_tools::timing::geometric_mean;
use megis_tools::workload::WorkloadSpec;

use crate::report::Report;

/// Energy consumption and I/O data movement of every tool on both SSDs.
pub fn energy_analysis() -> String {
    let mut report = Report::new();
    report.title("Energy and I/O data movement analysis (paper section 6.5)");

    let mut reduction_vs_p = Vec::new();
    let mut reduction_vs_a = Vec::new();
    let mut reduction_vs_pim = Vec::new();

    for base in [SsdConfig::ssd_c(), SsdConfig::ssd_p()] {
        let system =
            SystemConfig::reference(base.clone()).with_pim_matcher(PimKmerMatcher::default());
        report.section(&format!("{} (presence/absence identification)", base.name));
        report.table_header(&[
            "config",
            "CAMI-L kJ",
            "CAMI-M kJ",
            "CAMI-H kJ",
            "ext. I/O GB",
        ]);

        let workloads = WorkloadSpec::all_cami();
        let mut rows: Vec<(&str, Vec<f64>, f64)> = Vec::new();
        let mut megis_energy = Vec::new();

        for (name, is_megis) in [
            ("P-Opt", false),
            ("A-Opt", false),
            ("PIM P-Opt", false),
            ("MS", true),
        ] {
            let mut energies = Vec::new();
            let mut io_gb = 0.0;
            for w in &workloads {
                let breakdown = match name {
                    "P-Opt" => KrakenTimingModel.presence_breakdown(&system, w),
                    "A-Opt" => MetalignTimingModel::a_opt().presence_breakdown(&system, w),
                    "PIM P-Opt" => PimAcceleratedKraken.presence_breakdown(&system, w),
                    _ => MegisTimingModel::full().presence_breakdown(&system, w),
                };
                let model = if is_megis {
                    EnergyModel::megis()
                } else {
                    EnergyModel::baseline()
                };
                let energy = model.report(&breakdown, &system).total().as_joules() / 1000.0;
                energies.push(energy);
                io_gb = breakdown.external_io.as_gb();
                if is_megis {
                    megis_energy.push(energy);
                }
            }
            rows.push((name, energies, io_gb));
        }

        for (name, energies, io_gb) in &rows {
            let mut values = energies.clone();
            values.push(*io_gb);
            report.table_row(name, &values);
        }

        // Reductions relative to MegIS for this SSD.
        let ms = &rows[3].1;
        for (i, w) in workloads.iter().enumerate() {
            let _ = w;
            reduction_vs_p.push(rows[0].1[i] / ms[i]);
            reduction_vs_a.push(rows[1].1[i] / ms[i]);
            reduction_vs_pim.push(rows[2].1[i] / ms[i]);
        }

        let io_reduction_a = rows[1].2 / rows[3].2;
        let io_reduction_p = rows[0].2 / rows[3].2;
        report.line(&format!(
            "I/O data movement reduction: {io_reduction_a:.1}x vs A-Opt, {io_reduction_p:.1}x vs P-Opt (paper: 71.7x / 30.1x)"
        ));
    }

    report.section("Average energy reductions (geometric mean across SSDs and workloads)");
    report.line(&format!(
        "vs P-Opt:  {:.1}x   (paper: 5.4x average, 9.8x max)",
        geometric_mean(&reduction_vs_p)
    ));
    report.line(&format!(
        "vs A-Opt:  {:.1}x   (paper: 15.2x average, 25.7x max)",
        geometric_mean(&reduction_vs_a)
    ));
    report.line(&format!(
        "vs PIM:    {:.1}x   (paper: 1.9x average, 3.5x max)",
        geometric_mean(&reduction_vs_pim)
    ));
    report.finish()
}
