//! Trace overhead gate: the pipeline tracing subsystem must be ~free when
//! disabled and cheap when enabled.
//!
//! The `megis-sched` engine carries trace record points on every hot path
//! (admission, Step 1, command issue/start/complete, reduce, delivery).
//! The subsystem's contract is that the *disabled* sink — the default —
//! costs a single inlined branch per point, and that even the *enabled*
//! bounded ring stays far from the engine's critical path. This experiment
//! measures both:
//!
//! * a record-point microbenchmark: nanoseconds per
//!   [`megis_sched::TraceSink::record`] call on a disabled and an enabled
//!   sink (the disabled path is the one every untraced run pays);
//! * an engine-level comparison: the same device-bound batch run with
//!   tracing disabled (the no-trace baseline) and enabled, best of several
//!   interleaved trials, with the relative wall-clock overhead gated below
//!   [`OVERHEAD_GATE`].
//!
//! The workload is device-bound by construction (simulated device service
//! dominates, as in the queue-depth sweep), because that is the regime the
//! engine actually runs in — and the regime where a tracing subsystem that
//! contended on the hot path would show up as lost overlap rather than a
//! little extra host CPU.
//!
//! The `trace_overhead` binary prints this report and writes
//! `BENCH_trace_overhead.json`; CI runs it in release mode, greps the
//! `trace overhead: confirmed` verdict, and uploads the JSON.

use std::time::{Duration, Instant};

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::sample::{CommunityConfig, Diversity, Sample};
use megis_sched::{BatchEngine, EngineConfig, JobSpec, TraceEventKind, TraceSink};

use crate::report::Report;

/// Samples per batch.
const SAMPLES: usize = 10;
/// Database shards (simulated SSDs).
const SHARDS: usize = 4;
/// Interleaved trials per mode; the best trial per mode is compared.
const TRIALS: usize = 3;
/// Simulated per-command device service time — the dominant term, so the
/// run is device-bound like the real workload.
const DEVICE: Duration = Duration::from_millis(2);
/// Maximum tolerated relative wall-clock overhead of the traced run over
/// the no-trace baseline.
pub const OVERHEAD_GATE: f64 = 0.02;
/// Record calls per microbenchmark pass.
const MICRO_CALLS: usize = 1_000_000;

/// Everything the gate measured; the binary serializes it as
/// `BENCH_trace_overhead.json`.
#[derive(Debug, Clone)]
pub struct TraceOverheadMeasurement {
    /// Best wall-clock seconds of the batch with tracing disabled (the
    /// no-trace baseline every production run pays).
    pub baseline_secs: f64,
    /// Best wall-clock seconds of the same batch with tracing enabled.
    pub traced_secs: f64,
    /// Nanoseconds per `record` call on a disabled sink.
    pub disabled_ns_per_record: f64,
    /// Nanoseconds per `record` call on an enabled bounded sink.
    pub enabled_ns_per_record: f64,
    /// Events the traced run's ring held at shutdown.
    pub events_recorded: usize,
    /// Events the ring evicted (0 means the whole run fit).
    pub dropped: u64,
    /// Jobs per batch.
    pub jobs: usize,
}

impl TraceOverheadMeasurement {
    /// Relative wall-clock overhead of the traced run over the baseline
    /// (negative when the traced run happened to be faster — noise).
    pub fn overhead(&self) -> f64 {
        self.traced_secs / self.baseline_secs.max(1e-12) - 1.0
    }

    /// The CI verdict: overhead below the gate.
    pub fn confirmed(&self) -> bool {
        self.overhead() < OVERHEAD_GATE
    }

    /// Renders the plain-text report with the greppable verdict line.
    pub fn report(&self) -> String {
        let mut report = Report::new();
        report.title("Trace overhead analysis: pipeline tracing vs the no-trace baseline");
        report.line(&format!(
            "{} jobs, {SHARDS} shards, simulated device service {} ms/command; \
             best of {TRIALS} interleaved trials per mode",
            self.jobs,
            DEVICE.as_millis(),
        ));
        report.line("");
        report.table_header(&["mode", "s/batch", "ns/record"]);
        report.table_row(
            "disabled",
            &[self.baseline_secs, self.disabled_ns_per_record],
        );
        report.table_row("enabled", &[self.traced_secs, self.enabled_ns_per_record]);
        report.line("");
        report.line(&format!(
            "engine overhead with tracing enabled: {:+.2}% ({} events held, {} dropped)",
            self.overhead() * 100.0,
            self.events_recorded,
            self.dropped,
        ));
        report.line(&format!(
            "trace overhead: {} (gate: < {:.0}% of the no-trace baseline)",
            if self.confirmed() {
                "confirmed"
            } else {
                "EXCEEDED"
            },
            OVERHEAD_GATE * 100.0,
        ));
        report.line("");
        report.line("The disabled sink records through one inlined branch — no lock, no clock");
        report.line("read, no allocation — so the instrumentation points cost an untraced engine");
        report.line("nothing. The enabled sink takes a short mutex-guarded ring push per event,");
        report.line("off the device-bound critical path, so even full tracing stays within the");
        report.line("gate on this workload.");
        report.finish()
    }

    /// Serializes the measurement as the `BENCH_trace_overhead.json` record.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n\
             \x20 \"bench\": \"trace_overhead\",\n\
             \x20 \"jobs\": {},\n\
             \x20 \"baseline_us\": {:.3},\n\
             \x20 \"traced_us\": {:.3},\n\
             \x20 \"overhead_frac\": {:.6},\n\
             \x20 \"gate_frac\": {OVERHEAD_GATE},\n\
             \x20 \"confirmed\": {},\n\
             \x20 \"disabled_ns_per_record\": {:.3},\n\
             \x20 \"enabled_ns_per_record\": {:.3},\n\
             \x20 \"events_recorded\": {},\n\
             \x20 \"dropped\": {}\n\
             }}\n",
            self.jobs,
            self.baseline_secs * 1e6,
            self.traced_secs * 1e6,
            self.overhead(),
            self.confirmed(),
            self.disabled_ns_per_record,
            self.enabled_ns_per_record,
            self.events_recorded,
            self.dropped,
        )
    }
}

fn device_bound_cohort() -> (MegisAnalyzer, Vec<Sample>) {
    // Foreign-read samples against a modest database: the per-command
    // simulated device service dominates, host compute stays trivial — the
    // same convention as the queue-depth sweep, so a tracing regression
    // would surface as lost device overlap, not hidden under host work.
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(60)
        .with_database_species(12);
    let reference_community = base.build(77);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());
    let samples = (0..SAMPLES)
        .map(|i| {
            base.build_cohort_sample(6161, 700 + i as u64)
                .sample()
                .clone()
        })
        .collect();
    (analyzer, samples)
}

fn run_batch(analyzer: &MegisAnalyzer, samples: &[Sample], traced: bool) -> (f64, usize, u64) {
    let mut config = EngineConfig::new()
        .with_workers(2)
        .with_shards(SHARDS)
        .with_device_latency(DEVICE);
    if traced {
        config = config.with_tracing();
    }
    let mut engine = BatchEngine::new(analyzer.clone(), config);
    engine
        .submit_all(
            samples
                .iter()
                .enumerate()
                .map(|(i, s)| JobSpec::new(format!("sample-{i}"), s.clone())),
        )
        .expect("admission");
    let start = Instant::now();
    let report = engine.run();
    let secs = start.elapsed().as_secs_f64();
    let (events, dropped) = report
        .trace
        .as_ref()
        .map(|t| (t.events.len(), t.dropped))
        .unwrap_or((0, 0));
    (secs, events, dropped)
}

/// Nanoseconds per `record` call on the given sink.
fn ns_per_record(sink: &TraceSink) -> f64 {
    let start = Instant::now();
    for i in 0..MICRO_CALLS {
        sink.record(i, TraceEventKind::Step1Finished);
    }
    start.elapsed().as_secs_f64() * 1e9 / MICRO_CALLS as f64
}

/// Runs the gate and returns the raw measurement.
pub fn trace_overhead_measure() -> TraceOverheadMeasurement {
    let (analyzer, samples) = device_bound_cohort();

    // Interleave the modes so slow-machine drift (thermal, noisy neighbor)
    // hits both alike; compare the best trial of each.
    let mut baseline_secs = f64::INFINITY;
    let mut traced_secs = f64::INFINITY;
    let mut events_recorded = 0;
    let mut dropped = 0;
    for _ in 0..TRIALS {
        let (secs, _, _) = run_batch(&analyzer, &samples, false);
        baseline_secs = baseline_secs.min(secs);
        let (secs, events, drops) = run_batch(&analyzer, &samples, true);
        if secs < traced_secs {
            traced_secs = secs;
            events_recorded = events;
            dropped = drops;
        }
    }

    let disabled_ns_per_record = ns_per_record(&TraceSink::disabled());
    let enabled_ns_per_record = ns_per_record(&TraceSink::bounded(1 << 16));

    TraceOverheadMeasurement {
        baseline_secs,
        traced_secs,
        disabled_ns_per_record,
        enabled_ns_per_record,
        events_recorded,
        dropped,
        jobs: SAMPLES,
    }
}

/// Trace overhead analysis: runs the gate and renders the report (what
/// `cargo run -p megis-bench --bin trace_overhead` prints; the binary
/// additionally writes `BENCH_trace_overhead.json`).
pub fn trace_overhead() -> String {
    trace_overhead_measure().report()
}

#[cfg(test)]
mod tests {
    #[test]
    fn trace_overhead_measures_both_modes() {
        let m = super::trace_overhead_measure();
        assert!(m.baseline_secs > 0.0 && m.traced_secs > 0.0);
        assert!(
            m.events_recorded > 0,
            "the traced run must actually record events"
        );
        assert_eq!(m.dropped, 0, "the default ring must hold a small batch");
        let report = m.report();
        assert!(report.contains("trace overhead:"));
        let json = m.to_json();
        assert!(json.contains("\"bench\": \"trace_overhead\""));
        // The wall-clock gate is asserted in release only: a device-bound
        // run is insensitive to tracing by construction, but debug-profile
        // functional work shrinks the sleep share enough for scheduler
        // noise to dominate the ratio. The release-mode CI smoke step runs
        // the bin and greps the verdict, so the gate stays enforced where a
        // failure is attributable.
        #[cfg(not(debug_assertions))]
        {
            assert!(
                m.confirmed(),
                "tracing overhead exceeded the gate:\n{report}"
            );
            assert!(
                m.disabled_ns_per_record <= m.enabled_ns_per_record,
                "the disabled record path must not cost more than the enabled one \
                 ({:.1} ns vs {:.1} ns)",
                m.disabled_ns_per_record,
                m.enabled_ns_per_record,
            );
        }
    }
}
