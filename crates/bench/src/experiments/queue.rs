//! Queue-depth sweep: the NVMe-style per-shard command queues of the
//! `megis-sched` in-SSD stage, swept from depth 1 to 8.
//!
//! The engine tags every per-shard intersection command `(sequence, shard)`
//! and allows up to `queue_depth` commands outstanding per simulated SSD, so
//! several samples' intersections are in flight per device (§4.7's inter-
//! and intra-sample overlap, Fig. 15's multi-SSD setup). This experiment
//! makes the depth knob *visible in wall-clock terms*: it configures nonzero
//! simulated submission/completion latencies (the host round trip a deeper
//! queue hides) on a device-bound workload — a large sharded database with
//! light per-sample read sets, so the per-command intersection dominates the
//! host work — and measures throughput and tail latency per depth against
//! the analytic [`megis_sched::QueueModel`] curve.

use std::time::Duration;

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::sample::{CommunityConfig, Diversity, Sample};
use megis_sched::{BatchEngine, EngineConfig, JobSpec, QueueModel};
use megis_ssd::timing::SimDuration;

use crate::report::Report;

/// Samples per batch: enough for steady-state pipelining without making the
/// sweep slow in CI.
const SAMPLES: usize = 16;
/// Database shards (simulated SSDs).
const SHARDS: usize = 4;
/// Trials per depth; the best trial is reported, which suppresses scheduler
/// noise while keeping the structural (deterministic) depth effect.
const TRIALS: usize = 3;
/// Simulated host-side submission cost per command.
const SUBMISSION: Duration = Duration::from_micros(500);
/// Simulated host-side completion-reaping cost per command.
const COMPLETION: Duration = Duration::from_micros(500);
/// Simulated per-command device service time (the shard streaming its
/// database partition — multi-millisecond at paper scale, and deliberately
/// larger than the host round trip here so the sweep runs device-bound).
const DEVICE: Duration = Duration::from_millis(3);

fn device_bound_cohort() -> (MegisAnalyzer, Vec<Sample>) {
    // A device microbenchmark for the stage queue depth actually governs:
    // the in-SSD intersection. Device service is simulated (`DEVICE` slept
    // per command), so the four shards genuinely overlap each other and the
    // host even on a single-core runner, while the samples are drawn from a
    // *different* community — their query k-mers mostly miss the database,
    // so Step 2's taxID retrieval and Step 3's read mapping (which the
    // completer serializes per job, like the paper's coordinator) stay
    // trivial. Queue depth, not host compute, then decides whether the
    // devices stay busy.
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(60)
        .with_database_species(12);
    let reference_community = base.build(77);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());
    let samples = (0..SAMPLES)
        .map(|i| {
            // Seed 5151 builds foreign references: reads that miss the
            // analyzer's database (the paper's "reads from organisms absent
            // from the database" regime).
            base.build_cohort_sample(5151, 400 + i as u64)
                .sample()
                .clone()
        })
        .collect();
    (analyzer, samples)
}

/// One depth's best-trial row of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct QueueDepthRow {
    /// Swept per-shard queue depth.
    pub depth: usize,
    /// Measured batch throughput, samples/s.
    pub throughput: f64,
    /// Measured p99 job latency.
    pub p99: Duration,
    /// Peak in-flight commands on the busiest shard.
    pub peak_inflight: usize,
    /// Mean shard utilization over the batch.
    pub util_avg: f64,
    /// The analytic [`QueueModel`] throughput multiplier for this depth.
    pub modeled_multiplier: f64,
}

/// Everything the sweep measured; the binary serializes it as
/// `BENCH_queue_depth.json`.
#[derive(Debug, Clone)]
pub struct QueueDepthMeasurement {
    /// Best-trial row per swept depth, shallowest first.
    pub rows: Vec<QueueDepthRow>,
    /// Whether every batch output was byte-identical to the sequential
    /// analyzer across all depths and trials.
    pub parity: bool,
    /// Calibrated per-command device service time (depth-1 run).
    pub service: SimDuration,
    /// The priced host round trip per command.
    pub model: QueueModel,
}

impl QueueDepthMeasurement {
    /// The CI verdict: every depth ≥ 2 strictly beats depth 1.
    pub fn scaling_confirmed(&self) -> bool {
        let baseline = self.rows[0].throughput;
        self.rows[1..].iter().all(|r| r.throughput > baseline)
    }

    /// Renders the plain-text report with the greppable verdict lines.
    pub fn report(&self) -> String {
        let mut report = Report::new();
        report.title("Queue-depth sweep: per-shard NVMe-style command queues via megis-sched");
        report.line(&format!(
            "{SAMPLES} samples, {SHARDS} shards, 2 step-1 workers; simulated device service {} ms, \
             submission {} us + completion {} us per command; best of {TRIALS} trials per depth",
            DEVICE.as_millis(),
            SUBMISSION.as_micros(),
            COMPLETION.as_micros(),
        ));
        report.line("");
        report.table_header(&[
            "depth",
            "samples/s",
            "p99 ms",
            "peak QD",
            "util avg",
            "modeled x",
        ]);
        for row in &self.rows {
            report.table_row(
                &row.depth.to_string(),
                &[
                    row.throughput,
                    row.p99.as_secs_f64() * 1e3,
                    row.peak_inflight as f64,
                    row.util_avg,
                    row.modeled_multiplier,
                ],
            );
        }
        report.line("");
        report.line(&format!(
            "parity with sequential analyzer: {}",
            if self.parity { "identical" } else { "DIVERGED" }
        ));
        report.line(&format!(
            "depth scaling: {} (depth-2+ throughput vs depth-1 at {:.1} samples/s)",
            if self.scaling_confirmed() {
                "confirmed"
            } else {
                "NOT OBSERVED"
            },
            self.rows[0].throughput,
        ));
        report.line(&format!(
            "calibrated per-command service time: {:.0} us; modeled saturation depth: \
             1 + round-trip/service = {:.1}",
            self.service.as_micros(),
            1.0 + self.model.round_trip() / self.service.max(SimDuration::from_nanos(1.0)),
        ));
        report.line("");
        report.line("At depth 1 every command's host round trip (submission + completion reaping)");
        report.line(
            "serializes against the device, leaving the shard idle between samples; depth 2+",
        );
        report.line(
            "keeps commands queued on every device so several samples' intersections stay in",
        );
        report
            .line("flight per shard (peak QD > 1) — the paper's inter-sample in-SSD overlap. The");
        report
            .line("modeled column prices the same round trip with QueueModel; at paper scale the");
        report.line("database stream dominates and the modeled curve flattens toward 1x.");
        report.finish()
    }

    /// Serializes the measurement as the `BENCH_queue_depth.json` record.
    pub fn to_json(&self) -> String {
        let series: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"depth\": {}, \"samples_per_s\": {:.3}, \"p99_us\": {:.3}, \
                     \"peak_inflight\": {}, \"util_avg\": {:.4}, \"modeled_x\": {:.4} }}",
                    r.depth,
                    r.throughput,
                    r.p99.as_secs_f64() * 1e6,
                    r.peak_inflight,
                    r.util_avg,
                    r.modeled_multiplier,
                )
            })
            .collect();
        format!(
            "{{\n\
             \x20 \"bench\": \"queue_depth_sweep\",\n\
             \x20 \"samples\": {SAMPLES},\n\
             \x20 \"shards\": {SHARDS},\n\
             \x20 \"parity\": {},\n\
             \x20 \"scaling_confirmed\": {},\n\
             \x20 \"service_us\": {:.3},\n\
             \x20 \"series\": [\n{}\n\x20 ]\n\
             }}\n",
            self.parity,
            self.scaling_confirmed(),
            self.service.as_micros(),
            series.join(",\n"),
        )
    }
}

/// Runs the sweep and returns the raw measurement.
pub fn queue_depth_sweep_measure() -> QueueDepthMeasurement {
    let (analyzer, samples) = device_bound_cohort();
    let expected: Vec<_> = samples.iter().map(|s| analyzer.analyze(s)).collect();

    // Per-command device service time, measured from a calibration run:
    // what the modeled curve prices the depth sweep against.
    let mut service = SimDuration::from_secs(0.0);
    // One latency configuration prices every depth (the model's evaluation
    // methods take the depth to price as an argument).
    let queue_model = QueueModel {
        depth: 8,
        submission_latency: SimDuration::from_secs(SUBMISSION.as_secs_f64()),
        completion_latency: SimDuration::from_secs(COMPLETION.as_secs_f64()),
    };

    let mut rows = Vec::new();
    let mut all_parity = true;
    for depth in [1usize, 2, 4, 8] {
        let mut best: Option<megis_sched::BatchReport> = None;
        for _ in 0..TRIALS {
            let mut engine = BatchEngine::new(
                analyzer.clone(),
                EngineConfig::new()
                    .with_workers(2)
                    .with_shards(SHARDS)
                    .with_queue_depth(depth)
                    .with_command_latencies(SUBMISSION, COMPLETION)
                    .with_device_latency(DEVICE),
            );
            engine
                .submit_all(
                    samples
                        .iter()
                        .enumerate()
                        .map(|(i, s)| JobSpec::new(format!("sample-{i}"), s.clone())),
                )
                .expect("admission");
            let run = engine.run();
            all_parity &= run
                .results
                .iter()
                .zip(&expected)
                .all(|(r, e)| r.output == *e);
            if best
                .as_ref()
                .map(|b| run.throughput > b.throughput)
                .unwrap_or(true)
            {
                best = Some(run);
            }
        }
        let run = best.expect("at least one trial ran");
        if depth == 1 {
            // Calibrate the modeled service time on the depth-1 run: mean
            // measured compute per command across all shards.
            let (busy, jobs) = run
                .shard_stats
                .iter()
                .fold((Duration::ZERO, 0u64), |(b, j), s| (b + s.busy, j + s.jobs));
            service = SimDuration::from_secs(busy.as_secs_f64() / jobs.max(1) as f64);
        }
        let peak = run
            .shard_stats
            .iter()
            .map(|s| s.peak_inflight)
            .max()
            .unwrap_or(0);
        let util = run.shard_utilization();
        rows.push(QueueDepthRow {
            depth,
            throughput: run.throughput,
            p99: run.latency.p99,
            peak_inflight: peak,
            util_avg: util.iter().sum::<f64>() / util.len() as f64,
            modeled_multiplier: queue_model.throughput_multiplier(depth, service),
        });
    }

    QueueDepthMeasurement {
        rows,
        parity: all_parity,
        service,
        model: queue_model,
    }
}

/// Queue-depth sweep (engine path): depth 1 → 8 on one multi-sample batch,
/// measured throughput/p99/peak-queue-occupancy against the modeled
/// utilization curve for the same round trip and service time.
pub fn queue_depth_sweep() -> String {
    queue_depth_sweep_measure().report()
}

#[cfg(test)]
mod tests {
    #[test]
    fn queue_depth_sweep_confirms_scaling_and_parity() {
        let m = super::queue_depth_sweep_measure();
        let report = m.report();
        assert!(report.contains("parity with sequential analyzer: identical"));
        assert!(!report.contains("DIVERGED"));
        let json = m.to_json();
        assert!(json.contains("\"bench\": \"queue_depth_sweep\""));
        assert!(json.contains("\"parity\": true"));
        // The wall-clock scaling verdict only holds when the simulated
        // latencies dominate the functional compute, i.e. in release
        // builds; debug-profile host work swamps the 1 ms round trip. The
        // release-mode CI smoke step runs the bin and greps the verdict, so
        // the property stays enforced where it is meaningful.
        #[cfg(not(debug_assertions))]
        assert!(
            report.contains("depth scaling: confirmed"),
            "depth >= 2 must beat depth 1:\n{report}"
        );
    }
}
