//! Queue-depth sweep: the NVMe-style per-shard command queues of the
//! `megis-sched` in-SSD stage, swept from depth 1 to 8.
//!
//! The engine tags every per-shard intersection command `(sequence, shard)`
//! and allows up to `queue_depth` commands outstanding per simulated SSD, so
//! several samples' intersections are in flight per device (§4.7's inter-
//! and intra-sample overlap, Fig. 15's multi-SSD setup). This experiment
//! makes the depth knob *visible in wall-clock terms*: it configures nonzero
//! simulated submission/completion latencies (the host round trip a deeper
//! queue hides) on a device-bound workload — a large sharded database with
//! light per-sample read sets, so the per-command intersection dominates the
//! host work — and measures throughput and tail latency per depth against
//! the analytic [`megis_sched::QueueModel`] curve.

use std::time::Duration;

use megis::config::MegisConfig;
use megis::MegisAnalyzer;
use megis_genomics::sample::{CommunityConfig, Diversity, Sample};
use megis_sched::{BatchEngine, EngineConfig, JobSpec, QueueModel};
use megis_ssd::timing::SimDuration;

use crate::report::Report;

/// Samples per batch: enough for steady-state pipelining without making the
/// sweep slow in CI.
const SAMPLES: usize = 16;
/// Database shards (simulated SSDs).
const SHARDS: usize = 4;
/// Trials per depth; the best trial is reported, which suppresses scheduler
/// noise while keeping the structural (deterministic) depth effect.
const TRIALS: usize = 3;
/// Simulated host-side submission cost per command.
const SUBMISSION: Duration = Duration::from_micros(500);
/// Simulated host-side completion-reaping cost per command.
const COMPLETION: Duration = Duration::from_micros(500);
/// Simulated per-command device service time (the shard streaming its
/// database partition — multi-millisecond at paper scale, and deliberately
/// larger than the host round trip here so the sweep runs device-bound).
const DEVICE: Duration = Duration::from_millis(3);

fn device_bound_cohort() -> (MegisAnalyzer, Vec<Sample>) {
    // A device microbenchmark for the stage queue depth actually governs:
    // the in-SSD intersection. Device service is simulated (`DEVICE` slept
    // per command), so the four shards genuinely overlap each other and the
    // host even on a single-core runner, while the samples are drawn from a
    // *different* community — their query k-mers mostly miss the database,
    // so Step 2's taxID retrieval and Step 3's read mapping (which the
    // completer serializes per job, like the paper's coordinator) stay
    // trivial. Queue depth, not host compute, then decides whether the
    // devices stay busy.
    let base = CommunityConfig::preset(Diversity::Medium)
        .with_reads(60)
        .with_database_species(12);
    let reference_community = base.build(77);
    let analyzer = MegisAnalyzer::build(reference_community.references(), MegisConfig::small());
    let samples = (0..SAMPLES)
        .map(|i| {
            // Seed 5151 builds foreign references: reads that miss the
            // analyzer's database (the paper's "reads from organisms absent
            // from the database" regime).
            base.build_cohort_sample(5151, 400 + i as u64)
                .sample()
                .clone()
        })
        .collect();
    (analyzer, samples)
}

/// Queue-depth sweep (engine path): depth 1 → 8 on one multi-sample batch,
/// measured throughput/p99/peak-queue-occupancy against the modeled
/// utilization curve for the same round trip and service time.
pub fn queue_depth_sweep() -> String {
    let mut report = Report::new();
    report.title("Queue-depth sweep: per-shard NVMe-style command queues via megis-sched");
    let (analyzer, samples) = device_bound_cohort();
    let expected: Vec<_> = samples.iter().map(|s| analyzer.analyze(s)).collect();
    report.line(&format!(
        "{SAMPLES} samples, {SHARDS} shards, 2 step-1 workers; simulated device service {} ms, \
         submission {} us + completion {} us per command; best of {TRIALS} trials per depth",
        DEVICE.as_millis(),
        SUBMISSION.as_micros(),
        COMPLETION.as_micros(),
    ));
    report.line("");

    // Per-command device service time, measured from a calibration run:
    // what the modeled curve prices the depth sweep against.
    let mut service = SimDuration::from_secs(0.0);
    // One latency configuration prices every depth (the model's evaluation
    // methods take the depth to price as an argument).
    let queue_model = QueueModel {
        depth: 8,
        submission_latency: SimDuration::from_secs(SUBMISSION.as_secs_f64()),
        completion_latency: SimDuration::from_secs(COMPLETION.as_secs_f64()),
    };

    report.table_header(&[
        "depth",
        "samples/s",
        "p99 ms",
        "peak QD",
        "util avg",
        "modeled x",
    ]);
    let mut throughputs = Vec::new();
    let mut all_parity = true;
    for depth in [1usize, 2, 4, 8] {
        let mut best: Option<megis_sched::BatchReport> = None;
        for _ in 0..TRIALS {
            let mut engine = BatchEngine::new(
                analyzer.clone(),
                EngineConfig::new()
                    .with_workers(2)
                    .with_shards(SHARDS)
                    .with_queue_depth(depth)
                    .with_command_latencies(SUBMISSION, COMPLETION)
                    .with_device_latency(DEVICE),
            );
            engine
                .submit_all(
                    samples
                        .iter()
                        .enumerate()
                        .map(|(i, s)| JobSpec::new(format!("sample-{i}"), s.clone())),
                )
                .expect("admission");
            let run = engine.run();
            all_parity &= run
                .results
                .iter()
                .zip(&expected)
                .all(|(r, e)| r.output == *e);
            if best
                .as_ref()
                .map(|b| run.throughput > b.throughput)
                .unwrap_or(true)
            {
                best = Some(run);
            }
        }
        let run = best.expect("at least one trial ran");
        if depth == 1 {
            // Calibrate the modeled service time on the depth-1 run: mean
            // measured compute per command across all shards.
            let (busy, jobs) = run
                .shard_stats
                .iter()
                .fold((Duration::ZERO, 0u64), |(b, j), s| (b + s.busy, j + s.jobs));
            service = SimDuration::from_secs(busy.as_secs_f64() / jobs.max(1) as f64);
        }
        let peak = run
            .shard_stats
            .iter()
            .map(|s| s.peak_inflight)
            .max()
            .unwrap_or(0);
        let util = run.shard_utilization();
        let util_avg = util.iter().sum::<f64>() / util.len() as f64;
        report.table_row(
            &depth.to_string(),
            &[
                run.throughput,
                run.latency.p99.as_secs_f64() * 1e3,
                peak as f64,
                util_avg,
                queue_model.throughput_multiplier(depth, service),
            ],
        );
        throughputs.push((depth, run.throughput));
    }

    let baseline = throughputs[0].1;
    let scaling_confirmed = throughputs[1..].iter().all(|(_, t)| *t > baseline);
    report.line("");
    report.line(&format!(
        "parity with sequential analyzer: {}",
        if all_parity { "identical" } else { "DIVERGED" }
    ));
    report.line(&format!(
        "depth scaling: {} (depth-2+ throughput vs depth-1 at {:.1} samples/s)",
        if scaling_confirmed {
            "confirmed"
        } else {
            "NOT OBSERVED"
        },
        baseline,
    ));
    report.line(&format!(
        "calibrated per-command service time: {:.0} us; modeled saturation depth: \
         1 + round-trip/service = {:.1}",
        service.as_micros(),
        1.0 + queue_model.round_trip() / service.max(SimDuration::from_nanos(1.0)),
    ));
    report.line("");
    report.line("At depth 1 every command's host round trip (submission + completion reaping)");
    report.line("serializes against the device, leaving the shard idle between samples; depth 2+");
    report.line("keeps commands queued on every device so several samples' intersections stay in");
    report.line("flight per shard (peak QD > 1) — the paper's inter-sample in-SSD overlap. The");
    report.line("modeled column prices the same round trip with QueueModel; at paper scale the");
    report.line("database stream dominates and the modeled curve flattens toward 1x.");
    report.finish()
}

#[cfg(test)]
mod tests {
    #[test]
    fn queue_depth_sweep_confirms_scaling_and_parity() {
        let report = super::queue_depth_sweep();
        assert!(report.contains("parity with sequential analyzer: identical"));
        assert!(!report.contains("DIVERGED"));
        // The wall-clock scaling verdict only holds when the simulated
        // latencies dominate the functional compute, i.e. in release
        // builds; debug-profile host work swamps the 1 ms round trip. The
        // release-mode CI smoke step runs the bin and greps the verdict, so
        // the property stays enforced where it is meaningful.
        #[cfg(not(debug_assertions))]
        assert!(
            report.contains("depth scaling: confirmed"),
            "depth >= 2 must beat depth 1:\n{report}"
        );
    }
}
